# Developer entry points.  PYTHONPATH is injected so no editable
# install is required (the image has no network for pip).

PYTEST = PYTHONPATH=src python -m pytest

.PHONY: verify verify-full bench

# Tier-1: the fast suite (pytest.ini excludes `slow`-marked tests).
verify:
	$(PYTEST) -x -q

# Everything, including multi-process `slow` tests; the -m expression
# overrides the pytest.ini filter.
verify-full:
	$(PYTEST) -q -m "slow or not slow"

# Paper-scale benchmark harness.  REPRO_BENCH_JOBS fans trials out
# over worker processes; REPRO_BENCH_CACHE_DIR replays finished trials.
bench:
	$(PYTEST) -q -s benchmarks/bench_e1_mori_weak.py \
		benchmarks/bench_e2_mori_strong.py \
		benchmarks/bench_e3_cooper_frieze.py \
		benchmarks/bench_e6_degree_distribution.py \
		benchmarks/bench_e17_simulation.py

# Developer entry points.  PYTHONPATH is injected so no editable
# install is required (the image has no network for pip).

PYTEST = PYTHONPATH=src python -m pytest

.PHONY: verify verify-full ci bench bench-smoke

# Tier-1: the fast suite (pytest.ini excludes `slow`-marked tests).
verify:
	$(PYTEST) -x -q

# Everything, including multi-process `slow` tests; the -m expression
# overrides the pytest.ini filter.
verify-full:
	$(PYTEST) -q -m "slow or not slow"

# What .github/workflows/ci.yml runs, locally: the tier-1 suite with
# numpy, then again with numpy import-blocked (a shim module shadows
# it) to exercise the stdlib fallbacks and the ensemble engine's
# clean "unavailable" error path.
ci:
	$(PYTEST) -x -q
	@mkdir -p .ci-no-numpy && printf 'raise ImportError("numpy disabled for the no-numpy CI leg")\n' > .ci-no-numpy/numpy.py
	PYTHONPATH=.ci-no-numpy:src python -m pytest -x -q; \
		status=$$?; rm -rf .ci-no-numpy; exit $$status

# Minutes-scale bench point: downsized walk-heavy experiments per
# search engine, plus the ensemble-vs-serial walk-cell speedup at
# n=1e5 (gate >= 3x on the frozen+numpy path).  Writes BENCH_PR4.json
# (schema-checked by tests/test_bench_schema.py);
# `PYTHONPATH=src python benchmarks/bench_smoke.py --pr3` regenerates
# BENCH_PR3.json and `--pr2` BENCH_PR2.json.
bench-smoke:
	PYTHONPATH=src python benchmarks/bench_smoke.py

# Paper-scale benchmark harness.  REPRO_BENCH_JOBS fans trials out
# over worker processes; REPRO_BENCH_CACHE_DIR replays finished trials.
bench:
	$(PYTEST) -q -s benchmarks/bench_e1_mori_weak.py \
		benchmarks/bench_e2_mori_strong.py \
		benchmarks/bench_e3_cooper_frieze.py \
		benchmarks/bench_e6_degree_distribution.py \
		benchmarks/bench_e17_simulation.py

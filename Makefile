# Developer entry points.  PYTHONPATH is injected so no editable
# install is required (the image has no network for pip).

PYTEST = PYTHONPATH=src python -m pytest

.PHONY: verify verify-full ci bench bench-smoke

# Tier-1: the fast suite (pytest.ini excludes `slow`-marked tests).
verify:
	$(PYTEST) -x -q

# Everything, including multi-process `slow` tests; the -m expression
# overrides the pytest.ini filter.
verify-full:
	$(PYTEST) -q -m "slow or not slow"

# What .github/workflows/ci.yml runs, locally: the tier-1 suite with
# numpy, then the registry CLI smoke (the capability matrix plus one
# downsized registry-driven experiment through the real CLI, both
# engines), then the suite again with numpy import-blocked (a shim
# module shadows it) to exercise the stdlib fallbacks and the
# ensemble engine's clean "unavailable" error path.
ci:
	$(PYTEST) -x -q
	PYTHONPATH=src python -m repro list
	PYTHONPATH=src python -m repro run E20 --quick --jobs 2 --backend frozen
	PYTHONPATH=src python -m repro run E20 --quick --jobs 2 --engine ensemble --backend frozen
	@mkdir -p .ci-no-numpy && printf 'raise ImportError("numpy disabled for the no-numpy CI leg")\n' > .ci-no-numpy/numpy.py
	PYTHONPATH=.ci-no-numpy:src python -m pytest -x -q; \
		status=$$?; rm -rf .ci-no-numpy; exit $$status

# Seconds-scale bench point: the registry-enumeration smoke (E1..E20
# capability matrix, pinned against the live registry by
# tests/test_bench_schema.py) plus downsized E20 per engine through
# the registry.  Writes BENCH_PR5.json;
# `PYTHONPATH=src python benchmarks/bench_smoke.py --pr4` regenerates
# BENCH_PR4.json, `--pr3` BENCH_PR3.json and `--pr2` BENCH_PR2.json.
bench-smoke:
	PYTHONPATH=src python benchmarks/bench_smoke.py

# Paper-scale benchmark harness.  REPRO_BENCH_JOBS fans trials out
# over worker processes; REPRO_BENCH_CACHE_DIR replays finished trials.
bench:
	$(PYTEST) -q -s benchmarks/bench_e1_mori_weak.py \
		benchmarks/bench_e2_mori_strong.py \
		benchmarks/bench_e3_cooper_frieze.py \
		benchmarks/bench_e6_degree_distribution.py \
		benchmarks/bench_e17_simulation.py \
		benchmarks/bench_e20_cross_model.py

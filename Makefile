# Developer entry points.  PYTHONPATH is injected so no editable
# install is required (the image has no network for pip).

PYTEST = PYTHONPATH=src python -m pytest

.PHONY: verify verify-full bench bench-smoke

# Tier-1: the fast suite (pytest.ini excludes `slow`-marked tests).
verify:
	$(PYTEST) -x -q

# Everything, including multi-process `slow` tests; the -m expression
# overrides the pytest.ini filter.
verify-full:
	$(PYTEST) -q -m "slow or not slow"

# Minutes-scale bench trajectory point: downsized E17 (both
# construction modes) and E19 per graph backend, plus the scaling-grid
# realisation speedup (trajectory vs independent).  Writes
# BENCH_PR3.json (schema-checked by tests/test_bench_schema.py);
# `PYTHONPATH=src python benchmarks/bench_smoke.py --pr2`
# regenerates BENCH_PR2.json.
bench-smoke:
	PYTHONPATH=src python benchmarks/bench_smoke.py

# Paper-scale benchmark harness.  REPRO_BENCH_JOBS fans trials out
# over worker processes; REPRO_BENCH_CACHE_DIR replays finished trials.
bench:
	$(PYTEST) -q -s benchmarks/bench_e1_mori_weak.py \
		benchmarks/bench_e2_mori_strong.py \
		benchmarks/bench_e3_cooper_frieze.py \
		benchmarks/bench_e6_degree_distribution.py \
		benchmarks/bench_e17_simulation.py

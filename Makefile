# Developer entry points.  PYTHONPATH is injected so no editable
# install is required (the image has no network for pip).

PYTEST = PYTHONPATH=src python -m pytest

.PHONY: verify verify-full ci bench bench-smoke

# Tier-1: the fast suite (pytest.ini excludes `slow`-marked tests).
verify:
	$(PYTEST) -x -q

# Everything, including multi-process `slow` tests; the -m expression
# overrides the pytest.ini filter.
verify-full:
	$(PYTEST) -q -m "slow or not slow"

# What .github/workflows/ci.yml runs, locally: the tier-1 suite with
# numpy, then the registry CLI smoke (the capability matrix plus one
# downsized registry-driven experiment through the real CLI, both
# engines), then the corpus-cache smoke (cold fill, warm replay with
# identical output, verify), then the trial-store smoke (sqlite
# cold fill, warm replay with identical output and a nonzero hit
# tally, stat, a verified migration back to json-files), then the
# churn smoke (a downsized E21 through the dynamic-graph flags, both
# engines), then the serve smoke (a live `repro serve` daemon on a
# small grid answering a concurrent query stream, every answer
# verified bit-identical to the batch path and every shared-memory
# segment verified unlinked on shutdown — once with the serving
# defaults and once pinned to an explicit coalescing window with a
# small batch-max so the batch-max flush path runs), then the suite
# plus the
# generator fallback with numpy import-blocked (a shim module shadows
# it) to exercise the stdlib fallbacks and the clean "unavailable"
# error paths of the ensemble engine and the vectorized generator;
# the serve smoke runs again on the no-numpy leg (the service is pure
# stdlib).
ci:
	$(PYTEST) -x -q
	PYTHONPATH=src python -m repro list
	PYTHONPATH=src python -m repro run E20 --quick --jobs 2 --backend frozen
	PYTHONPATH=src python -m repro run E20 --quick --jobs 2 --engine ensemble --backend frozen
	rm -rf .ci-corpus
	PYTHONPATH=src python -m repro run E17 --quick --set sizes=60,120 --set num_graphs=2 --generator vectorized --corpus-dir .ci-corpus | tee .ci-corpus-cold.log
	grep -q "corpus: 0 hits, 4 misses" .ci-corpus-cold.log
	PYTHONPATH=src python -m repro run E17 --quick --set sizes=60,120 --set num_graphs=2 --generator vectorized --corpus-dir .ci-corpus | tee .ci-corpus-warm.log
	grep -q "corpus: 4 hits, 0 misses" .ci-corpus-warm.log
	grep -v "^corpus:" .ci-corpus-cold.log > .ci-corpus-cold.trimmed
	grep -v "^corpus:" .ci-corpus-warm.log > .ci-corpus-warm.trimmed
	diff .ci-corpus-cold.trimmed .ci-corpus-warm.trimmed
	PYTHONPATH=src python -m repro corpus verify .ci-corpus
	rm -rf .ci-corpus .ci-corpus-cold.log .ci-corpus-warm.log .ci-corpus-cold.trimmed .ci-corpus-warm.trimmed
	rm -rf .ci-store
	PYTHONPATH=src python -m repro run E17 --quick --set sizes=60,120 --set num_graphs=2 --cache-dir .ci-store --store-backend sqlite | tee .ci-store-cold.log
	grep -q "store: 0 hits" .ci-store-cold.log
	PYTHONPATH=src python -m repro run E17 --quick --set sizes=60,120 --set num_graphs=2 --cache-dir .ci-store --store-backend sqlite | tee .ci-store-warm.log
	grep -Eq "store: [1-9][0-9]* hits, 0 misses" .ci-store-warm.log
	grep -v "^store:" .ci-store-cold.log > .ci-store-cold.trimmed
	grep -v "^store:" .ci-store-warm.log > .ci-store-warm.trimmed
	diff .ci-store-cold.trimmed .ci-store-warm.trimmed
	PYTHONPATH=src python -m repro store stat .ci-store
	PYTHONPATH=src python -m repro store migrate .ci-store --from sqlite --to json-files
	rm -rf .ci-store .ci-store-cold.log .ci-store-warm.log .ci-store-cold.trimmed .ci-store-warm.trimmed
	PYTHONPATH=src python -m repro run E21 --quick --churn-rate 0.1 --churn-bias degree --resnapshot-every 5
	PYTHONPATH=src python -m repro run E21 --quick --engine ensemble --backend frozen
	PYTHONPATH=src python -m repro serve --sizes 120 --seeds 3 --smoke
	PYTHONPATH=src python -m repro serve --sizes 120 --seeds 3 --batch-window 5 --batch-max 8 --smoke
	@mkdir -p .ci-no-numpy && printf 'raise ImportError("numpy disabled for the no-numpy CI leg")\n' > .ci-no-numpy/numpy.py
	! PYTHONPATH=.ci-no-numpy:src python -m repro run E17 --quick --set sizes=60 --set num_graphs=1 --generator vectorized 2> .ci-no-numpy/err.log
	grep -q "requires numpy" .ci-no-numpy/err.log
	PYTHONPATH=.ci-no-numpy:src python -m repro run E17 --quick --set sizes=60 --set num_graphs=1 --generator serial
	PYTHONPATH=.ci-no-numpy:src python -m repro serve --sizes 120 --seeds 3 --smoke
	PYTHONPATH=.ci-no-numpy:src python -m repro serve --sizes 120 --seeds 3 --batch-window 5 --batch-max 8 --smoke
	PYTHONPATH=.ci-no-numpy:src python -m pytest -x -q; \
		status=$$?; rm -rf .ci-no-numpy; exit $$status

# Bench point: the serving stack under load — the PR 9 per-query
# path (unbatched dispatch, PR 9 wire behavior) vs the batched
# coalescing dispatcher (gate >= 3x sustained qps on bit-identical
# answers, plus a nodelay-only arm so the wire fix and the coalescing
# win are reported separately), a cache-warm pass (gate: hit-path p50
# below the pool-dispatch p50), and a non-gating open-loop overload
# probe recording batch depth and tail latency.  Writes
# BENCH_PR10.json (pinned by tests/test_bench_schema.py);
# `PYTHONPATH=src python benchmarks/bench_smoke.py --pr9` regenerates
# BENCH_PR9.json, `--pr8` BENCH_PR8.json, `--pr7` BENCH_PR7.json,
# `--pr6` BENCH_PR6.json, `--pr5` BENCH_PR5.json, `--pr4`
# BENCH_PR4.json, `--pr3` BENCH_PR3.json and `--pr2` BENCH_PR2.json.
bench-smoke:
	PYTHONPATH=src python benchmarks/bench_smoke.py

# Paper-scale benchmark harness.  REPRO_BENCH_JOBS fans trials out
# over worker processes; REPRO_BENCH_CACHE_DIR replays finished trials.
bench:
	$(PYTEST) -q -s benchmarks/bench_e1_mori_weak.py \
		benchmarks/bench_e2_mori_strong.py \
		benchmarks/bench_e3_cooper_frieze.py \
		benchmarks/bench_e6_degree_distribution.py \
		benchmarks/bench_e17_simulation.py \
		benchmarks/bench_e20_cross_model.py

"""Unit tests for repro.graphs.cooper_frieze."""

from __future__ import annotations

import pytest

from repro.errors import GraphConstructionError, InvalidParameterError
from repro.graphs.cooper_frieze import (
    CooperFriezeParams,
    cooper_frieze_graph,
)


class TestParams:
    def test_defaults_valid(self):
        params = CooperFriezeParams()
        assert params.alpha == 0.5
        assert params.preferential_by == "indegree"

    def test_alpha_bounds(self):
        with pytest.raises(InvalidParameterError):
            CooperFriezeParams(alpha=0.0)
        with pytest.raises(InvalidParameterError):
            CooperFriezeParams(alpha=1.5)
        CooperFriezeParams(alpha=1.0)  # growth-only is allowed

    def test_beta_gamma_delta_bounds(self):
        for name in ("beta", "gamma", "delta"):
            with pytest.raises(InvalidParameterError):
                CooperFriezeParams(**{name: -0.1})
            with pytest.raises(InvalidParameterError):
                CooperFriezeParams(**{name: 1.1})

    def test_bad_preferential_mode(self):
        with pytest.raises(InvalidParameterError):
            CooperFriezeParams(preferential_by="age")

    def test_bad_distribution_rejected_eagerly(self):
        with pytest.raises(InvalidParameterError):
            CooperFriezeParams(new_edge_distribution=(0.5, 0.4))
        with pytest.raises(InvalidParameterError):
            CooperFriezeParams(old_edge_distribution=(1.2,))

    def test_mean_edges(self):
        params = CooperFriezeParams(
            new_edge_distribution=(0.5, 0.5),
            old_edge_distribution=(0.0, 1.0),
        )
        assert params.mean_new_edges == pytest.approx(1.5)
        assert params.mean_old_edges == pytest.approx(2.0)


class TestConstruction:
    def test_reaches_target_size(self):
        result = cooper_frieze_graph(100, seed=0)
        assert result.n == 100
        assert result.graph.num_vertices == 100

    def test_connected_by_construction(self):
        for seed in range(5):
            result = cooper_frieze_graph(80, seed=seed)
            assert result.graph.is_connected()

    def test_step_accounting(self):
        result = cooper_frieze_graph(50, seed=1)
        assert result.num_new_steps == 49  # initial vertex + 49 NEW steps
        assert result.num_steps >= result.num_new_steps

    def test_alpha_one_is_pure_growth(self):
        params = CooperFriezeParams(alpha=1.0)
        result = cooper_frieze_graph(60, params, seed=2)
        assert result.num_steps == result.num_new_steps == 59

    def test_small_alpha_many_old_steps(self):
        params = CooperFriezeParams(alpha=0.2)
        result = cooper_frieze_graph(50, params, seed=3)
        # Roughly 4 OLD steps per NEW step in expectation.
        assert result.num_steps > 100

    def test_edge_distributions_respected(self):
        params = CooperFriezeParams(
            alpha=1.0, new_edge_distribution=(0.0, 0.0, 1.0)
        )
        result = cooper_frieze_graph(40, params, seed=4)
        # Initial loop + 3 edges for each of the 39 NEW vertices.
        assert result.graph.num_edges == 1 + 3 * 39

    def test_deterministic_with_seed(self):
        g1 = cooper_frieze_graph(60, seed=9).graph
        g2 = cooper_frieze_graph(60, seed=9).graph
        assert g1 == g2

    def test_n_too_small_rejected(self):
        with pytest.raises(InvalidParameterError):
            cooper_frieze_graph(1)

    def test_max_steps_guard(self):
        params = CooperFriezeParams(alpha=0.5)
        with pytest.raises(GraphConstructionError):
            cooper_frieze_graph(1000, params, seed=0, max_steps=5)

    def test_total_degree_mode_runs(self):
        params = CooperFriezeParams(preferential_by="total")
        result = cooper_frieze_graph(80, params, seed=5)
        assert result.graph.is_connected()

    def test_preferential_concentrates_indegree(self):
        # With beta=gamma=0 (always preferential) the indegree maximum
        # should exceed the uniform (beta=gamma=1) case's, on average.
        pref, unif = 0, 0
        for seed in range(10):
            g_pref = cooper_frieze_graph(
                300,
                CooperFriezeParams(alpha=0.7, beta=0.0, gamma=0.0),
                seed=seed,
            ).graph
            g_unif = cooper_frieze_graph(
                300,
                CooperFriezeParams(alpha=0.7, beta=1.0, gamma=1.0),
                seed=seed,
            ).graph
            pref += max(g_pref.in_degree(v) for v in g_pref.vertices())
            unif += max(g_unif.in_degree(v) for v in g_unif.vertices())
        assert pref > unif

    def test_newest_vertex_is_n(self):
        result = cooper_frieze_graph(70, seed=6)
        # Vertex n must have been added by the last NEW step: its
        # out-edges exist, and no edge from an older vertex can point
        # to it before it existed — i.e. every incident edge with head
        # n has a tail that is n itself or was added at/after n's birth
        # step.  Cheap sanity proxy: vertex n exists and has degree >= 1.
        assert result.graph.degree(70) >= 1

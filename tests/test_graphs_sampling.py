"""Unit tests for repro.graphs.sampling."""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.errors import InvalidParameterError
from repro.graphs.sampling import (
    AliasSampler,
    EndpointUrn,
    discrete_distribution_sampler,
)


class TestEndpointUrn:
    def test_empty_urn_rejects_sampling(self):
        with pytest.raises(InvalidParameterError):
            EndpointUrn().sample(random.Random(0))

    def test_single_token_always_sampled(self):
        urn = EndpointUrn()
        urn.add(7)
        rng = random.Random(0)
        assert all(urn.sample(rng) == 7 for _ in range(20))

    def test_add_count(self):
        urn = EndpointUrn()
        urn.add(1, count=3)
        assert urn.total_weight == 3
        assert urn.count(1) == 3

    def test_negative_count_rejected(self):
        with pytest.raises(InvalidParameterError):
            EndpointUrn().add(1, count=-1)

    def test_zero_count_is_noop(self):
        urn = EndpointUrn()
        urn.add(1, count=0)
        assert len(urn) == 0

    def test_proportional_sampling(self):
        urn = EndpointUrn()
        urn.add(1, count=1)
        urn.add(2, count=3)
        rng = random.Random(123)
        counts = Counter(urn.sample(rng) for _ in range(20000))
        ratio = counts[2] / counts[1]
        assert 2.6 < ratio < 3.4  # expect ~3

    def test_len_and_repr(self):
        urn = EndpointUrn()
        urn.add(5, count=4)
        assert len(urn) == 4
        assert "4" in repr(urn)


class TestAliasSampler:
    def test_empty_weights_rejected(self):
        with pytest.raises(InvalidParameterError):
            AliasSampler([])

    def test_negative_weight_rejected(self):
        with pytest.raises(InvalidParameterError):
            AliasSampler([1.0, -0.5])

    def test_all_zero_rejected(self):
        with pytest.raises(InvalidParameterError):
            AliasSampler([0.0, 0.0])

    def test_point_mass(self):
        sampler = AliasSampler([0.0, 1.0, 0.0])
        rng = random.Random(0)
        assert all(sampler.sample(rng) == 1 for _ in range(50))

    def test_uniform_distribution(self):
        sampler = AliasSampler([1.0] * 4)
        rng = random.Random(7)
        counts = Counter(sampler.sample(rng) for _ in range(40000))
        for index in range(4):
            assert 0.23 < counts[index] / 40000 < 0.27

    def test_skewed_distribution(self):
        weights = [1.0, 2.0, 7.0]
        sampler = AliasSampler(weights)
        rng = random.Random(99)
        n = 50000
        counts = Counter(sampler.sample(rng) for _ in range(n))
        total = sum(weights)
        for index, weight in enumerate(weights):
            expected = weight / total
            assert abs(counts[index] / n - expected) < 0.02

    def test_len(self):
        assert len(AliasSampler([1, 2, 3])) == 3

    def test_single_weight(self):
        sampler = AliasSampler([5.0])
        assert sampler.sample(random.Random(0)) == 0


class TestDiscreteDistributionSampler:
    def test_valid_pmf_accepted(self):
        sampler = discrete_distribution_sampler((0.5, 0.5))
        assert len(sampler) == 2

    def test_non_normalized_rejected(self):
        with pytest.raises(InvalidParameterError):
            discrete_distribution_sampler((0.5, 0.6))

    def test_point_mass_pmf(self):
        sampler = discrete_distribution_sampler((1.0,))
        assert sampler.sample(random.Random(0)) == 0

    def test_pmf_sampling_matches(self):
        sampler = discrete_distribution_sampler((0.2, 0.8))
        rng = random.Random(5)
        n = 30000
        counts = Counter(sampler.sample(rng) for _ in range(n))
        assert abs(counts[0] / n - 0.2) < 0.02
        assert abs(counts[1] / n - 0.8) < 0.02

"""Unit tests for repro.graphs.mori (Móri tree and merged m-out graph)."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.errors import InvalidParameterError
from repro.graphs.mori import merged_mori_graph, mori_tree


class TestMoriTree:
    def test_minimal_tree(self):
        tree = mori_tree(2, 0.5, seed=0)
        assert tree.n == 2
        assert tree.graph.num_edges == 1
        assert tree.parents == (0, 0, 1)

    def test_tree_shape(self, small_tree):
        graph = small_tree.graph
        assert graph.num_edges == graph.num_vertices - 1
        assert graph.is_connected()
        assert graph.num_self_loops() == 0

    def test_parents_are_older(self, small_tree):
        for k in range(2, small_tree.n + 1):
            assert 1 <= small_tree.parent(k) < k

    def test_parent_matches_graph_edges(self, small_tree):
        for eid, tail, head in small_tree.graph.edges():
            assert tail == eid + 2  # edge added at time eid + 2
            assert head == small_tree.parents[tail]

    def test_parent_out_of_range_rejected(self, small_tree):
        with pytest.raises(InvalidParameterError):
            small_tree.parent(1)
        with pytest.raises(InvalidParameterError):
            small_tree.parent(small_tree.n + 1)

    def test_n_below_two_rejected(self):
        with pytest.raises(InvalidParameterError):
            mori_tree(1, 0.5)

    def test_p_out_of_range_rejected(self):
        with pytest.raises(InvalidParameterError):
            mori_tree(10, -0.1)
        with pytest.raises(InvalidParameterError):
            mori_tree(10, 1.5)

    def test_deterministic_with_seed(self):
        t1 = mori_tree(50, 0.5, seed=11)
        t2 = mori_tree(50, 0.5, seed=11)
        assert t1.parents == t2.parents

    def test_different_seeds_differ(self):
        t1 = mori_tree(50, 0.5, seed=1)
        t2 = mori_tree(50, 0.5, seed=2)
        assert t1.parents != t2.parents

    def test_p_one_is_star_at_root(self):
        # Pure indegree preference: vertex 2 has weight 0 forever, so
        # every later vertex attaches to vertex 1.
        tree = mori_tree(20, 1.0, seed=3)
        assert all(tree.parents[k] == 1 for k in range(3, 21))

    def test_p_zero_is_uniform_attachment(self):
        # Uniform attachment: P(N_3 = 1) = 1/2; check empirically.
        hits = sum(
            mori_tree(3, 0.0, seed=s).parents[3] == 1
            for s in range(2000)
        )
        assert 0.44 < hits / 2000 < 0.56

    def test_preferential_bias_toward_root(self):
        # At p close to 1 the root (earliest, highest-indegree) vertex
        # should collect far more children than under uniform.
        big_p = mori_tree(500, 0.9, seed=7)
        small_p = mori_tree(500, 0.0, seed=7)
        assert big_p.graph.in_degree(1) > small_p.graph.in_degree(1)

    def test_indegree_at_time(self, small_tree):
        # Indegree of 1 just before time 3 is exactly 1 (from vertex 2).
        assert small_tree.indegree_at_time(1, 3) == 1
        assert small_tree.indegree_at_time(2, 3) == 0
        # Final indegree is consistent with the graph.
        for v in range(1, small_tree.n):
            assert small_tree.indegree_at_time(
                v, small_tree.n + 1
            ) == small_tree.graph.in_degree(v)

    def test_indegree_at_time_validates(self, small_tree):
        with pytest.raises(InvalidParameterError):
            small_tree.indegree_at_time(5, 4)

    def test_satisfies_event(self):
        tree = mori_tree(6, 1.0, seed=0)  # star: all parents are 1
        assert tree.satisfies_event(2, 6)
        assert tree.satisfies_event(1, 6)

    def test_satisfies_event_validates(self, small_tree):
        with pytest.raises(InvalidParameterError):
            small_tree.satisfies_event(0, 5)
        with pytest.raises(InvalidParameterError):
            small_tree.satisfies_event(5, small_tree.n + 1)

    def test_attachment_distribution_time3(self):
        # At t = 3: weight(1) = p*1 + (1-p), weight(2) = (1-p);
        # P(N_3 = 1) = (p + (1-p)) / (p + 2(1-p)) = 1 / (2 - p).
        p = 0.5
        expected = 1.0 / (2.0 - p)
        hits = sum(
            mori_tree(3, p, seed=s).parents[3] == 1 for s in range(4000)
        )
        assert abs(hits / 4000 - expected) < 0.03


class TestMergedMoriGraph:
    def test_m1_is_the_tree(self):
        merged = merged_mori_graph(30, 1, 0.5, seed=5)
        tree = mori_tree(30, 0.5, seed=5)
        assert merged.graph.num_edges == tree.graph.num_edges
        assert [
            merged.graph.edge_endpoints(e)
            for e in range(merged.graph.num_edges)
        ] == [
            tree.graph.edge_endpoints(e)
            for e in range(tree.graph.num_edges)
        ]

    def test_sizes(self, small_merged):
        assert small_merged.n == 20
        assert small_merged.graph.num_vertices == 20
        # Tree on 40 vertices has 39 edges, all survive merging.
        assert small_merged.graph.num_edges == 39

    def test_connected(self, small_merged):
        assert small_merged.graph.is_connected()

    def test_out_degree_is_m(self, small_merged):
        graph = small_merged.graph
        m = small_merged.m
        # Vertex 1 absorbs tree vertex 1 (no out-edge): out-degree m-1.
        assert graph.out_degree(1) == m - 1
        for v in range(2, graph.num_vertices + 1):
            assert graph.out_degree(v) == m

    def test_degree_mass_conserved(self, small_merged):
        tree = small_merged.tree
        graph = small_merged.graph
        assert sum(graph.degree_sequence()) == sum(
            tree.graph.degree_sequence()
        )

    def test_tree_vertex_to_merged(self, small_merged):
        assert small_merged.tree_vertex_to_merged(1) == 1
        assert small_merged.tree_vertex_to_merged(2) == 1
        assert small_merged.tree_vertex_to_merged(3) == 2
        assert small_merged.tree_vertex_to_merged(40) == 20

    def test_tree_vertex_to_merged_validates(self, small_merged):
        with pytest.raises(InvalidParameterError):
            small_merged.tree_vertex_to_merged(0)

    def test_edges_respect_merge_mapping(self, small_merged):
        tree = small_merged.tree
        graph = small_merged.graph
        for eid in range(graph.num_edges):
            tail, head = graph.edge_endpoints(eid)
            tree_tail, tree_head = tree.graph.edge_endpoints(eid)
            assert tail == small_merged.tree_vertex_to_merged(tree_tail)
            assert head == small_merged.tree_vertex_to_merged(tree_head)

    def test_keep_tree_false(self):
        merged = merged_mori_graph(10, 2, 0.5, seed=1, keep_tree=False)
        assert merged.tree is None

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            merged_mori_graph(1, 1, 0.5)
        with pytest.raises(InvalidParameterError):
            merged_mori_graph(10, 0, 0.5)
        with pytest.raises(InvalidParameterError):
            merged_mori_graph(10, 1, 2.0)

    def test_deterministic_with_seed(self):
        g1 = merged_mori_graph(20, 3, 0.25, seed=9)
        g2 = merged_mori_graph(20, 3, 0.25, seed=9)
        assert g1.graph == g2.graph

    def test_self_loops_possible_with_merging(self):
        # With m large, consecutive tree vertices merge together and
        # in-block attachments become self-loops; check they are kept.
        counts = Counter()
        for seed in range(30):
            merged = merged_mori_graph(5, 8, 0.5, seed=seed)
            counts["loops"] += merged.graph.num_self_loops()
        assert counts["loops"] > 0


class TestEdgesPerStepVariant:
    """The paper's other higher-out-degree construction."""

    def test_sizes(self):
        from repro.graphs.mori import mori_edges_per_step_graph

        graph = mori_edges_per_step_graph(50, 3, 0.5, seed=1)
        assert graph.num_vertices == 50
        # m initial parallel edges + m per vertex 3..n.
        assert graph.num_edges == 3 * 49
        assert graph.is_connected()

    def test_out_degrees(self):
        from repro.graphs.mori import mori_edges_per_step_graph

        graph = mori_edges_per_step_graph(30, 2, 0.5, seed=2)
        assert graph.out_degree(1) == 0
        assert all(
            graph.out_degree(v) == 2 for v in range(2, 31)
        )

    def test_m1_matches_tree_distribution(self):
        """At m=1 the variant IS the Mori tree process: attachment
        frequencies at time 3 must match the tree's."""
        from repro.graphs.mori import mori_edges_per_step_graph

        p = 0.5
        expected = 1.0 / (2.0 - p)  # P(N_3 = 1), see tree tests
        hits = 0
        for seed in range(3000):
            graph = mori_edges_per_step_graph(3, 1, p, seed=seed)
            _, head = graph.edge_endpoints(1)
            hits += head == 1
        assert abs(hits / 3000 - expected) < 0.03

    def test_no_self_loops(self):
        from repro.graphs.mori import mori_edges_per_step_graph

        graph = mori_edges_per_step_graph(60, 4, 0.75, seed=3)
        assert graph.num_self_loops() == 0

    def test_deterministic(self):
        from repro.graphs.mori import mori_edges_per_step_graph

        assert mori_edges_per_step_graph(
            40, 2, 0.5, seed=9
        ) == mori_edges_per_step_graph(40, 2, 0.5, seed=9)

    def test_validation(self):
        from repro.graphs.mori import mori_edges_per_step_graph
        from repro.errors import InvalidParameterError
        import pytest as _pytest

        with _pytest.raises(InvalidParameterError):
            mori_edges_per_step_graph(1, 1, 0.5)
        with _pytest.raises(InvalidParameterError):
            mori_edges_per_step_graph(10, 0, 0.5)
        with _pytest.raises(InvalidParameterError):
            mori_edges_per_step_graph(10, 1, -0.1)

    def test_searchable_floor_still_applies(self):
        """Quick sanity: searching the variant is also expensive."""
        from repro.graphs.mori import mori_edges_per_step_graph
        from repro.search.algorithms import HighDegreeWeakSearch
        from repro.search.process import run_search

        graph = mori_edges_per_step_graph(400, 2, 0.5, seed=4)
        result = run_search(
            HighDegreeWeakSearch(), graph, 1, 380, seed=0
        )
        assert result.found
        assert result.requests > 20  # far above the ~6-hop diameter

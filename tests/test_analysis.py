"""Unit tests for the analysis toolkit."""

from __future__ import annotations

import math

import pytest

from repro.analysis.degrees import ccdf, degree_histogram, max_degree, mean_degree
from repro.analysis.diameter import (
    average_distance,
    bfs_distances,
    diameter,
    eccentricity,
    estimate_diameter,
)
from repro.analysis.maxdegree import (
    ba_edge_count,
    max_degree_trajectory,
    mori_edge_count,
)
from repro.analysis.powerlaw_fit import fit_power_law
from repro.analysis.scaling import (
    fit_logarithmic,
    fit_power_scaling,
    prefers_logarithmic,
)
from repro.analysis.stats import bootstrap_ci, mean, mean_ci, sample_std
from repro.errors import AnalysisError, InvalidParameterError
from repro.graphs.base import MultiGraph
from repro.graphs.mori import mori_tree
from repro.graphs.power_law import power_law_degree_sequence


class TestDegrees:
    def test_histogram(self, triangle):
        assert degree_histogram(triangle) == {2: 3}

    def test_histogram_empty_graph(self):
        with pytest.raises(AnalysisError):
            degree_histogram(MultiGraph(0))

    def test_ccdf_starts_at_one(self, path4):
        curve = ccdf(path4)
        assert curve[0][1] == pytest.approx(1.0)
        values = [v for _, v in curve]
        assert values == sorted(values, reverse=True)

    def test_ccdf_values(self, path4):
        # Degrees: 1,2,2,1 -> P(>=1)=1, P(>=2)=0.5.
        curve = dict(ccdf(path4))
        assert curve[1] == pytest.approx(1.0)
        assert curve[2] == pytest.approx(0.5)

    def test_mean_degree(self, triangle):
        assert mean_degree(triangle) == pytest.approx(2.0)

    def test_max_degree(self, loop_graph):
        assert max_degree(loop_graph) == 3


class TestDiameter:
    def test_bfs_distances(self, path4):
        assert bfs_distances(path4, 1)[1:] == [0, 1, 2, 3]

    def test_bfs_unreachable(self):
        graph = MultiGraph(3)
        graph.add_edge(2, 1)
        assert bfs_distances(graph, 1)[3] == -1

    def test_bfs_validates_source(self, path4):
        with pytest.raises(InvalidParameterError):
            bfs_distances(path4, 9)

    def test_eccentricity(self, path4):
        distance, vertex = eccentricity(path4, 1)
        assert distance == 3
        assert vertex == 4

    def test_diameter_path(self, path4):
        assert diameter(path4) == 3

    def test_diameter_triangle(self, triangle):
        assert diameter(triangle) == 1

    def test_diameter_disconnected_raises(self):
        graph = MultiGraph(3)
        graph.add_edge(2, 1)
        with pytest.raises(AnalysisError):
            diameter(graph)

    def test_estimate_matches_exact_on_trees(self):
        for seed in range(5):
            graph = mori_tree(60, 0.5, seed=seed).graph
            estimate = estimate_diameter(graph, num_sweeps=4, seed=seed)
            exact = diameter(graph)
            assert estimate <= exact
            assert estimate >= exact - 1  # sweeps are near-exact on trees

    def test_average_distance_path(self, path4):
        value = average_distance(path4, num_sources=4, seed=0)
        assert 1.0 <= value <= 3.0

    def test_average_distance_validates(self):
        with pytest.raises(AnalysisError):
            average_distance(MultiGraph(1))


class TestMaxDegreeTrajectory:
    def test_mori_edge_count(self):
        assert mori_edge_count(2) == 1
        assert mori_edge_count(10) == 9
        with pytest.raises(InvalidParameterError):
            mori_edge_count(1)

    def test_ba_edge_count(self):
        count = ba_edge_count(2)
        assert count(1) == 1
        assert count(5) == 9
        with pytest.raises(InvalidParameterError):
            ba_edge_count(0)
        with pytest.raises(InvalidParameterError):
            count(0)

    def test_trajectory_monotone(self):
        tree = mori_tree(200, 0.75, seed=1).graph
        checkpoints = [10, 50, 100, 200]
        trajectory = max_degree_trajectory(
            tree, checkpoints, mori_edge_count
        )
        values = [v for _, v in trajectory]
        assert values == sorted(values)
        assert len(trajectory) == 4

    def test_trajectory_final_matches_graph(self):
        tree = mori_tree(100, 0.5, seed=2).graph
        trajectory = max_degree_trajectory(
            tree, [100], mori_edge_count
        )
        assert trajectory[0][1] == max_degree(tree)

    def test_trajectory_validates(self):
        tree = mori_tree(50, 0.5, seed=0).graph
        with pytest.raises(InvalidParameterError):
            max_degree_trajectory(tree, [20, 10], mori_edge_count)
        with pytest.raises(InvalidParameterError):
            max_degree_trajectory(tree, [60], mori_edge_count)

    def test_empty_checkpoints(self):
        tree = mori_tree(50, 0.5, seed=0).graph
        assert max_degree_trajectory(tree, [], mori_edge_count) == []


class TestPowerLawFit:
    def test_recovers_exponent(self):
        degrees = power_law_degree_sequence(
            30000, 2.5, min_degree=1, max_degree=500, seed=0
        )
        fit = fit_power_law(degrees, d_min=1)
        assert abs(fit.exponent - 2.5) < 0.15

    def test_auto_dmin(self):
        degrees = power_law_degree_sequence(
            20000, 2.2, min_degree=2, max_degree=300, seed=1
        )
        fit = fit_power_law(degrees)
        assert abs(fit.exponent - 2.2) < 0.3
        assert fit.num_tail >= 10

    def test_fast_decay_gives_huge_exponent(self):
        # Decay by 10x per degree step is far steeper than any
        # scale-free tail: the fitted exponent must be huge.
        degrees = [5] * 300 + [6] * 30 + [7] * 3
        fit = fit_power_law(degrees, d_min=5)
        assert fit.exponent > 4.0

    def test_too_few_points(self):
        with pytest.raises(AnalysisError):
            fit_power_law([3, 4])

    def test_degenerate_tail(self):
        with pytest.raises(AnalysisError):
            fit_power_law([5] * 100, d_min=5)

    def test_dmin_validation(self):
        with pytest.raises(InvalidParameterError):
            fit_power_law(list(range(1, 100)), d_min=0)

    def test_zero_degrees_ignored(self):
        degrees = [0] * 50 + list(
            power_law_degree_sequence(5000, 2.5, seed=3)
        )
        fit = fit_power_law(degrees, d_min=1)
        assert fit.exponent > 1.5


class TestScalingFits:
    def test_exact_power_law(self):
        xs = [10.0, 100.0, 1000.0]
        ys = [3 * x ** 0.5 for x in xs]
        fit = fit_power_scaling(xs, ys)
        assert fit.exponent == pytest.approx(0.5)
        assert fit.prefactor == pytest.approx(3.0)
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.predict(400.0) == pytest.approx(60.0)

    def test_exact_logarithm(self):
        xs = [math.e, math.e ** 2, math.e ** 3]
        ys = [1 + 2 * math.log(x) for x in xs]
        fit = fit_logarithmic(xs, ys)
        assert fit.coefficient == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(1.0)
        assert fit.predict(math.e ** 4) == pytest.approx(9.0)

    def test_prefers_logarithmic(self):
        xs = [float(2 ** k) for k in range(3, 11)]
        log_ys = [5 * math.log(x) for x in xs]
        power_ys = [x ** 0.8 for x in xs]
        assert prefers_logarithmic(xs, log_ys)
        assert not prefers_logarithmic(xs, power_ys)

    def test_validation(self):
        with pytest.raises(AnalysisError):
            fit_power_scaling([1.0], [1.0])
        with pytest.raises(AnalysisError):
            fit_power_scaling([1.0, 2.0], [1.0])
        with pytest.raises(AnalysisError):
            fit_power_scaling([1.0, -2.0], [1.0, 2.0])
        with pytest.raises(AnalysisError):
            fit_logarithmic([0.0, 2.0], [1.0, 2.0])

    def test_constant_y(self):
        fit = fit_power_scaling([1.0, 2.0, 4.0], [5.0, 5.0, 5.0])
        assert fit.exponent == pytest.approx(0.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_identical_x_rejected(self):
        with pytest.raises(AnalysisError):
            fit_power_scaling([2.0, 2.0], [1.0, 3.0])


class TestStats:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)
        with pytest.raises(AnalysisError):
            mean([])

    def test_sample_std(self):
        assert sample_std([5.0]) == 0.0
        assert sample_std([1.0, 3.0]) == pytest.approx(math.sqrt(2.0))
        with pytest.raises(AnalysisError):
            sample_std([])

    def test_mean_ci_contains_mean(self):
        m, low, high = mean_ci([1.0, 2.0, 3.0, 4.0])
        assert low <= m <= high

    def test_mean_ci_level_validation(self):
        with pytest.raises(InvalidParameterError):
            mean_ci([1.0, 2.0], confidence=0.5)

    def test_bootstrap_contains_point(self):
        values = [float(v) for v in range(1, 30)]
        point, low, high = bootstrap_ci(
            values, mean, num_resamples=200, seed=0
        )
        assert low <= point <= high
        assert point == pytest.approx(15.0)

    def test_bootstrap_validation(self):
        with pytest.raises(AnalysisError):
            bootstrap_ci([], mean)
        with pytest.raises(InvalidParameterError):
            bootstrap_ci([1.0], mean, num_resamples=5)
        with pytest.raises(InvalidParameterError):
            bootstrap_ci([1.0], mean, confidence=1.5)

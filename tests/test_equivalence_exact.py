"""Exact-arithmetic tests for Lemmas 2 and 3 (the paper's core machinery)."""

from __future__ import annotations

import math
from fractions import Fraction

import pytest

from repro.errors import InvalidParameterError
from repro.equivalence.events import (
    equivalence_window,
    estimate_event_probability,
    event_holds,
)
from repro.equivalence.exact import (
    as_fraction,
    ensemble_total_probability,
    enumerate_parent_vectors,
    enumerated_event_probability,
    exact_event_probability,
    lemma3_bound,
    lemma3_window_end,
    tree_probability,
    verify_lemma2,
)


class TestTreeProbability:
    def test_minimal_tree_is_certain(self):
        assert tree_probability((0, 0, 1), 0.5) == 1

    def test_time3_probabilities(self):
        # P(N_3 = 1) = 1/(2-p), P(N_3 = 2) = (1-p)/(2-p).
        p = Fraction(1, 2)
        assert tree_probability((0, 0, 1, 1), p) == Fraction(1, 2) / (
            2 - p
        ) * 2  # 1/(2-p) = 2/3
        assert tree_probability((0, 0, 1, 1), p) == Fraction(2, 3)
        assert tree_probability((0, 0, 1, 2), p) == Fraction(1, 3)

    def test_uniform_case(self):
        # p = 0: every recursive tree on n vertices has prob 1/(n-1)!.
        for parents in enumerate_parent_vectors(5):
            assert tree_probability(parents, 0) == Fraction(
                1, math.factorial(4)
            )

    def test_pure_preferential_star(self):
        # p = 1: the star at the root is the only tree with positive
        # probability.
        star = (0, 0, 1, 1, 1)
        assert tree_probability(star, 1) == 1
        chain = (0, 0, 1, 2, 3)
        assert tree_probability(chain, 1) == 0

    @pytest.mark.parametrize("n", [3, 4, 5, 6])
    @pytest.mark.parametrize("p", [0, Fraction(1, 4), Fraction(1, 2), 1])
    def test_normalization(self, n, p):
        assert ensemble_total_probability(n, p) == 1

    def test_matches_sampler(self):
        # The exact probability of N_3 = 1 must match the Monte-Carlo
        # frequency of the actual generator.
        from repro.graphs.mori import mori_tree

        p = 0.3
        exact = float(tree_probability((0, 0, 1, 1), p))
        hits = sum(
            mori_tree(3, p, seed=s).parents == (0, 0, 1, 1)
            for s in range(4000)
        )
        assert abs(hits / 4000 - exact) < 0.03

    def test_invalid_vector_rejected(self):
        with pytest.raises(InvalidParameterError):
            tree_probability((0, 0, 2), 0.5)

    def test_invalid_p_rejected(self):
        with pytest.raises(InvalidParameterError):
            tree_probability((0, 0, 1), 1.5)

    def test_as_fraction_decimal_semantics(self):
        assert as_fraction(0.3) == Fraction(3, 10)
        assert as_fraction("1/3") == Fraction(1, 3)
        assert as_fraction(1) == 1
        with pytest.raises(InvalidParameterError):
            as_fraction(True)


class TestEnumeration:
    @pytest.mark.parametrize("n,count", [(2, 1), (3, 2), (4, 6), (5, 24)])
    def test_counts_are_factorials(self, n, count):
        assert sum(1 for _ in enumerate_parent_vectors(n)) == count

    def test_all_valid(self):
        from repro.equivalence.permutation import is_valid_parent_vector

        assert all(
            is_valid_parent_vector(parents)
            for parents in enumerate_parent_vectors(6)
        )

    def test_distinct(self):
        vectors = list(enumerate_parent_vectors(6))
        assert len(vectors) == len(set(vectors))

    def test_too_small_rejected(self):
        with pytest.raises(InvalidParameterError):
            list(enumerate_parent_vectors(1))


class TestEventProbability:
    @pytest.mark.parametrize("p", [0, Fraction(1, 4), Fraction(1, 2), 1])
    @pytest.mark.parametrize("a,b", [(2, 3), (3, 5), (2, 5), (4, 6)])
    def test_closed_form_equals_enumeration(self, p, a, b):
        n = max(b, 6)
        assert exact_event_probability(
            a, b, p
        ) == enumerated_event_probability(n, a, b, p)

    def test_trivial_window(self):
        # b = a: empty window, event is certain.
        assert exact_event_probability(5, 5, 0.5) == 1

    def test_monotone_in_a(self):
        # Larger a (with the same b) makes the event easier.
        p = Fraction(1, 2)
        assert exact_event_probability(
            3, 6, p
        ) < exact_event_probability(4, 6, p)

    def test_monotone_in_p(self):
        # Conditional on the event, mass concentrates below a; higher p
        # (more preferential) makes staying below a easier.
        a, b = 10, 13
        values = [
            exact_event_probability(a, b, Fraction(i, 10))
            for i in range(0, 11)
        ]
        assert values == sorted(values)

    def test_p_one_is_certain(self):
        # Pure preferential: all mass already below a, event certain.
        assert exact_event_probability(5, 7, 1) == 1

    def test_lemma3_bound_holds_exactly(self):
        for p in (0, 0.1, 0.25, 0.5, 0.75, 1.0):
            for a in (2, 5, 10, 50, 200, 1000):
                b = lemma3_window_end(a)
                exact = exact_event_probability(a, b, p)
                assert float(exact) >= lemma3_bound(p) - 1e-12, (
                    f"Lemma 3 violated at p={p}, a={a}"
                )

    def test_monte_carlo_agrees(self):
        a, b = 20, lemma3_window_end(20)
        exact = float(exact_event_probability(a, b, 0.5))
        estimate = estimate_event_probability(
            a, b, 0.5, num_samples=4000, seed=0
        )
        assert abs(estimate - exact) < 0.03

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            exact_event_probability(0, 3, 0.5)
        with pytest.raises(InvalidParameterError):
            exact_event_probability(4, 3, 0.5)
        with pytest.raises(InvalidParameterError):
            lemma3_window_end(0)
        with pytest.raises(InvalidParameterError):
            lemma3_bound(1.2)


class TestEventHolds:
    def test_star_always_in_event(self):
        parents = (0, 0, 1, 1, 1, 1, 1)  # star on 6 vertices
        assert event_holds(parents, 1, 6)
        assert event_holds(parents, 3, 6)

    def test_chain_violates(self):
        parents = (0, 0, 1, 2, 3, 4)
        assert not event_holds(parents, 2, 5)
        assert event_holds(parents, 4, 5)  # N_5 = 4 <= 4

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            event_holds((0, 0, 1), 0, 2)
        with pytest.raises(InvalidParameterError):
            event_holds((0, 0, 1), 2, 5)


class TestEquivalenceWindow:
    def test_matches_lemma3(self):
        a, b = equivalence_window(100)
        assert a == 99
        assert b == 99 + math.isqrt(98)

    def test_window_nonempty(self):
        for target in (3, 10, 1000):
            a, b = equivalence_window(target)
            assert a < b or target == 3  # a=2,b=2+isqrt(1)=3 -> nonempty
            assert a + 1 == target

    def test_too_small_rejected(self):
        with pytest.raises(InvalidParameterError):
            equivalence_window(2)


class TestLemma2:
    @pytest.mark.parametrize("p", [0, Fraction(1, 3), Fraction(1, 2), 1])
    def test_holds_small(self, p):
        report = verify_lemma2(6, 3, 5, p)
        assert report.holds
        assert report.max_discrepancy == 0
        assert report.num_trees == 120
        assert report.num_transpositions == 1

    def test_holds_wider_window(self):
        report = verify_lemma2(7, 3, 6, Fraction(2, 5))
        assert report.holds
        assert report.num_transpositions == 3

    def test_holds_with_descendants_beyond_window(self):
        # n > b: vertices 6,7 may attach into the window; equivalence
        # must still hold (their edges get relabeled consistently).
        report = verify_lemma2(7, 2, 4, Fraction(1, 2))
        assert report.holds

    def test_event_probability_consistent(self):
        report = verify_lemma2(6, 3, 5, Fraction(1, 2))
        assert report.event_probability == exact_event_probability(
            3, 5, Fraction(1, 2)
        )

    def test_non_equivalence_without_event(self):
        # Concrete counterexample: swapping vertices 3 and 4 in the
        # chain 3->1, 4->3 gives 3->4 (invalid), so without the event
        # the orbit leaves the tree space — exchangeability fails.
        from repro.equivalence.permutation import (
            apply_permutation_to_parents,
            is_valid_parent_vector,
        )

        chain = (0, 0, 1, 1, 3)  # n=4: N_4 = 3, parent inside the window
        image = apply_permutation_to_parents(chain, {3: 4, 4: 3})
        assert not is_valid_parent_vector(image)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            verify_lemma2(5, 0, 3, 0.5)
        with pytest.raises(InvalidParameterError):
            verify_lemma2(5, 3, 6, 0.5)

"""Tests for the persistent trial-result store (`repro.runner.store`).

Covers the cache round-trip, params-hash stability under dict
reordering, recovery from corrupted cache files, and the core promise:
a warm cache means zero recomputation.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.runner import (
    MISS,
    ResultStore,
    TrialSpec,
    params_hash,
    run_trials,
    trial_ref,
)

#: Incremented by every *execution* of counting_trial (cache hits must
#: leave it untouched).  Reset per-test via the fixture below.
CALLS = []


def counting_trial(*, label: str, seed: int = 0) -> dict:
    CALLS.append((label, seed))
    return {"label": label, "seed": seed, "value": seed * 3 + 1}


@pytest.fixture(autouse=True)
def _reset_calls():
    CALLS.clear()
    yield
    CALLS.clear()


COUNTING = trial_ref(counting_trial)


def _spec(seed: int = 1, label: str = "x") -> TrialSpec:
    return TrialSpec(
        experiment_id="T",
        trial=COUNTING,
        params={"label": label},
        seed=seed,
    )


class TestRoundTrip:
    def test_put_then_get(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = _spec()
        assert store.get(spec) is MISS
        store.put(spec, {"a": 1, "b": [1, 2.5, "s"]})
        assert store.get(spec) == {"a": 1, "b": [1, 2.5, "s"]}
        assert spec in store

    def test_none_is_a_valid_cached_value(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = _spec()
        store.put(spec, None)
        assert store.get(spec) is None
        assert spec in store

    def test_keys_partition_by_experiment_params_and_seed(self, tmp_path):
        store = ResultStore(tmp_path)
        base = _spec(seed=1, label="x")
        store.put(base, "base")
        assert store.get(_spec(seed=2, label="x")) is MISS
        assert store.get(_spec(seed=1, label="y")) is MISS
        other_experiment = TrialSpec(
            "U", COUNTING, {"label": "x"}, seed=1
        )
        assert store.get(other_experiment) is MISS


class TestParamsHash:
    def test_stable_across_dict_ordering(self):
        forward = {"size": 100, "portfolio": "weak", "budget": None}
        backward = {"budget": None, "portfolio": "weak", "size": 100}
        assert params_hash("m:f", forward) == params_hash(
            "m:f", backward
        )

    def test_nested_ordering_and_sequences(self):
        a = {"family": {"model": "mori", "p": 0.5, "m": 1}, "grid": [1, 2]}
        b = {"grid": [1, 2], "family": {"m": 1, "p": 0.5, "model": "mori"}}
        assert params_hash("m:f", a) == params_hash("m:f", b)
        # Tuples and lists serialize identically (both JSON arrays).
        assert params_hash("m:f", {"grid": (1, 2)}) == params_hash(
            "m:f", {"grid": [1, 2]}
        )

    def test_sensitive_to_values_and_trial(self):
        params = {"size": 100}
        assert params_hash("m:f", params) != params_hash(
            "m:f", {"size": 101}
        )
        assert params_hash("m:f", params) != params_hash(
            "m:g", params
        )

    def test_rejects_unserializable_params(self):
        with pytest.raises(TypeError):
            params_hash("m:f", {"fn": object()})


class TestCorruptionRecovery:
    def test_truncated_json_treated_as_miss_and_removed(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = _spec()
        store.put(spec, {"ok": True})
        path = store.path_for(spec)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"value": {"ok": tr')  # torn write
        assert store.get(spec) is MISS
        assert not os.path.exists(path)

    def test_wrong_shape_record_treated_as_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = _spec()
        path = store.path_for(spec)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(["not", "a", "record"], handle)
        assert store.get(spec) is MISS

    def test_corrupted_entry_recomputes_through_runner(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = _spec()
        run_trials([spec], store=store)
        with open(store.path_for(spec), "w") as handle:
            handle.write("garbage")
        outcomes = run_trials([spec], store=store)
        assert outcomes[0].from_cache is False
        assert outcomes[0].value["value"] == spec.seed * 3 + 1
        assert len(CALLS) == 2  # recomputed exactly once


class TestSharedCacheRaces:
    """Two processes sharing one --cache-dir must never eat each other's
    entries: a corrupt read is retried once (a concurrent atomic
    rewrite may have landed in between) and cleanup tolerates the
    entry vanishing or being locked."""

    def test_concurrent_rewrite_between_read_and_discard(
        self, tmp_path, monkeypatch
    ):
        """Writer B replaces the corrupt entry while A is reacting to it.

        Pre-fix, A's ``get`` would unlink B's fresh valid record and
        report MISS; now A re-reads once, returns B's value, and the
        entry survives.
        """
        store = ResultStore(tmp_path)
        spec = _spec()
        path = store.path_for(spec)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"value": {"ok": tr')  # torn write from a crash

        real_load = json.load
        state = {"loads": 0}

        def racing_load(handle):
            state["loads"] += 1
            try:
                return real_load(handle)
            except json.JSONDecodeError:
                # Between A's failed parse and its reaction, writer B's
                # atomic put lands on the same key.
                ResultStore(tmp_path).put(spec, {"from": "writer-b"})
                raise

        monkeypatch.setattr(json, "load", racing_load)
        assert store.get(spec) == {"from": "writer-b"}
        assert state["loads"] == 2  # exactly one re-read
        assert os.path.exists(path)  # B's entry was not unlinked

    def test_entry_vanishing_mid_recovery_is_a_plain_miss(
        self, tmp_path, monkeypatch
    ):
        """Another process removes the corrupt entry first: still MISS."""
        store = ResultStore(tmp_path)
        spec = _spec()
        path = store.path_for(spec)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("garbage")

        real_remove = os.remove

        def concurrent_remove(target):
            real_remove(target)  # the other process won the unlink...
            raise FileNotFoundError(target)  # ...so ours sees ENOENT

        monkeypatch.setattr(os, "remove", concurrent_remove)
        assert store.get(spec) is MISS

    def test_locked_entry_mid_recovery_is_a_plain_miss(
        self, tmp_path, monkeypatch
    ):
        """EPERM from a peer holding the file (Windows rewrite): still MISS."""
        store = ResultStore(tmp_path)
        spec = _spec()
        path = store.path_for(spec)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("garbage")

        def locked_remove(target):
            raise PermissionError(target)

        monkeypatch.setattr(os, "remove", locked_remove)
        assert store.get(spec) is MISS
        # The entry could not be cleaned up, but a later writer can
        # still atomically replace it and be read normally.
        store.put(spec, 42)
        assert store.get(spec) == 42

    def test_put_landing_during_recovery_is_returned_not_unlinked(
        self, tmp_path, monkeypatch
    ):
        """Writer B's atomic put lands *after* both of A's failed
        reads — the exact window the old implementation documented:
        its ``os.remove`` would unlink B's fresh record.  Recovery now
        quarantine-renames first and re-checks: B's record is found
        valid under the quarantine name, restored, and returned.
        """
        store = ResultStore(tmp_path)
        spec = _spec()
        path = store.path_for(spec)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"value": {"ok": tr')  # torn write

        real_load = json.load
        state = {"loads": 0}

        def racing_load(handle):
            state["loads"] += 1
            if state["loads"] <= 2:
                # Both of A's reads see the torn bytes; B's atomic
                # put lands just after the second one, before A
                # reacts.
                if state["loads"] == 2:
                    ResultStore(tmp_path).put(
                        spec, {"from": "writer-b"}
                    )
                return real_load(handle)  # raises JSONDecodeError
            return real_load(handle)  # the quarantine re-check

        monkeypatch.setattr(json, "load", racing_load)
        assert store.get(spec) == {"from": "writer-b"}
        assert state["loads"] == 3
        # B's entry survives at its path; no quarantine debris.
        monkeypatch.undo()
        assert store.get(spec) == {"from": "writer-b"}
        directory = os.path.dirname(path)
        assert [
            name
            for name in os.listdir(directory)
            if "quarantine" in name
        ] == []

    def test_two_process_churn_never_loses_a_committed_put(
        self, tmp_path
    ):
        """The real two-process regression: process B keeps atomically
        rewriting one entry while A's reader keeps hitting it with
        corruption recovery.  A must only ever see MISS or a valid
        value (never an exception), and B's final committed put must
        still be on disk afterwards — pre-fix, A's recovery could
        unlink it.
        """
        import subprocess
        import sys
        import textwrap

        store = ResultStore(tmp_path)
        spec = _spec()
        path = store.path_for(spec)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        script = textwrap.dedent(
            f"""
            import sys
            sys.path.insert(0, {os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")!r})
            sys.path.insert(0, {os.path.dirname(os.path.abspath(__file__))!r})
            from test_result_store import _spec
            from repro.runner import ResultStore
            store = ResultStore({str(tmp_path)!r})
            spec = _spec()
            for round in range(300):
                store.put(spec, {{"round": round}})
            """
        )
        writer = subprocess.Popen([sys.executable, "-c", script])
        try:
            observed = []
            while writer.poll() is None:
                # Keep shoving torn bytes at the entry so A's reads
                # exercise the recovery path against B's rewrites.
                try:
                    with open(path, "a", encoding="utf-8") as handle:
                        handle.write("}{torn")
                except OSError:
                    pass
                observed.append(store.get(spec))
        finally:
            assert writer.wait(timeout=120) == 0
        for value in observed:
            assert value is MISS or (
                isinstance(value, dict) and "round" in value
            )
        # B's last committed put: recovery may classify it torn (A's
        # appends corrupt it), but never unlinks a *valid* record —
        # so after one clean rewrite the entry must stick.
        store.put(spec, {"round": "final"})
        assert store.get(spec) == {"round": "final"}
        assert os.path.exists(path)

    def test_persistently_corrupt_entry_still_removed(self, tmp_path):
        """The re-read is one retry, not a corruption leak: a file that
        stays garbage is discarded exactly as before."""
        store = ResultStore(tmp_path)
        spec = _spec()
        store.put(spec, {"ok": True})
        path = store.path_for(spec)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("garbage")
        assert store.get(spec) is MISS
        assert not os.path.exists(path)


class TestCacheSkipsRecompute:
    def test_second_run_executes_nothing(self, tmp_path):
        store = ResultStore(tmp_path)
        specs = [_spec(seed=s) for s in range(5)]
        first = run_trials(specs, store=store)
        assert len(CALLS) == 5
        assert all(not r.from_cache for r in first)

        second = run_trials(specs, store=store)
        assert len(CALLS) == 5  # no new executions
        assert all(r.from_cache for r in second)
        assert [r.value for r in first] == [r.value for r in second]

    def test_partial_cache_runs_only_misses(self, tmp_path):
        store = ResultStore(tmp_path)
        specs = [_spec(seed=s) for s in range(4)]
        run_trials(specs[:2], store=store)
        CALLS.clear()
        outcomes = run_trials(specs, store=store)
        assert [c[1] for c in CALLS] == [2, 3]
        assert [o.from_cache for o in outcomes] == [
            True, True, False, False,
        ]

    def test_cached_experiment_rerun_executes_no_trials(
        self, tmp_path, monkeypatch
    ):
        """E6 with a warm cache completes without recomputing a trial."""
        from repro.core.experiments import e6_degree_distribution

        cache = str(tmp_path / "cache")
        first = e6_degree_distribution(n=300, seed=6, cache_dir=cache)

        def exploding_execute(self):
            raise AssertionError(
                f"trial recomputed despite warm cache: {self}"
            )

        monkeypatch.setattr(TrialSpec, "execute", exploding_execute)
        second = e6_degree_distribution(n=300, seed=6, cache_dir=cache)
        assert first.derived == second.derived

    def test_different_params_do_not_share_cache(self, tmp_path):
        from repro.core.experiments import e6_degree_distribution

        cache = str(tmp_path / "cache")
        small = e6_degree_distribution(n=300, seed=6, cache_dir=cache)
        larger = e6_degree_distribution(n=400, seed=6, cache_dir=cache)
        assert small.derived != larger.derived

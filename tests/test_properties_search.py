"""Property-based tests for the search layer (oracle honesty, termination)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.mori import merged_mori_graph
from repro.search.algorithms import (
    AgeGreedySearch,
    DegreeBiasedWalkSearch,
    FloodingSearch,
    HighDegreeStrongSearch,
    HighDegreeWeakSearch,
    MixedStrategySearch,
    RandomWalkSearch,
)
from repro.search.oracle import StrongOracle, WeakOracle
from repro.search.process import run_search

seeds = st.integers(min_value=0, max_value=2**32 - 1)
small_n = st.integers(min_value=3, max_value=40)

ALGORITHM_BUILDERS = [
    RandomWalkSearch,
    FloodingSearch,
    HighDegreeWeakSearch,
    lambda: AgeGreedySearch("oldest"),
    lambda: AgeGreedySearch("closest-id"),
    lambda: MixedStrategySearch(0.3),
    HighDegreeStrongSearch,
    lambda: DegreeBiasedWalkSearch(1.0),
]


class TestSearchProperties:
    @given(
        n=small_n,
        m=st.integers(min_value=1, max_value=3),
        graph_seed=seeds,
        algo_seed=seeds,
        algo_index=st.integers(0, len(ALGORITHM_BUILDERS) - 1),
        data=st.data(),
    )
    @settings(max_examples=80, deadline=None)
    def test_terminates_and_respects_budget(
        self, n, m, graph_seed, algo_seed, algo_index, data
    ):
        graph = merged_mori_graph(n, m, 0.5, seed=graph_seed).graph
        target = data.draw(
            st.integers(min_value=1, max_value=n), label="target"
        )
        start = data.draw(
            st.integers(min_value=1, max_value=n), label="start"
        )
        budget = data.draw(
            st.integers(min_value=0, max_value=4 * graph.num_edges),
            label="budget",
        )
        algorithm = ALGORITHM_BUILDERS[algo_index]()
        result = run_search(
            algorithm, graph, start, target, budget=budget, seed=algo_seed
        )
        # Budget is a hard cap.
        assert result.requests <= budget
        # Result metadata is faithful.
        assert result.start == start
        assert result.target == target
        # Connected graph + full budget >= edges: flooding always finds.
        if (
            isinstance(algorithm, FloodingSearch)
            and budget >= graph.num_edges
        ):
            assert result.found

    @given(n=small_n, graph_seed=seeds, algo_seed=seeds)
    @settings(max_examples=50, deadline=None)
    def test_weak_oracle_counts_every_discovery(
        self, n, graph_seed, algo_seed
    ):
        """Discovered vertices never exceed requests + 1 in the weak model."""
        graph = merged_mori_graph(n, 1, 0.5, seed=graph_seed).graph
        oracle = WeakOracle(graph, start=1, target=n)
        algorithm = FloodingSearch()
        import random

        algorithm.run(oracle, random.Random(algo_seed), graph.num_edges)
        assert (
            oracle.knowledge.num_discovered <= oracle.request_count + 1
        )

    @given(n=small_n, graph_seed=seeds)
    @settings(max_examples=50, deadline=None)
    def test_strong_oracle_discovery_bound(self, n, graph_seed):
        """Each strong request discovers at most max-degree new vertices."""
        graph = merged_mori_graph(n, 1, 0.5, seed=graph_seed).graph
        oracle = StrongOracle(graph, start=1, target=n)
        import random

        HighDegreeStrongSearch().run(
            oracle, random.Random(0), graph.num_vertices
        )
        max_deg = max(graph.degree_sequence())
        assert (
            oracle.knowledge.num_discovered
            <= 1 + oracle.request_count * max_deg
        )

    @given(n=small_n, graph_seed=seeds, algo_seed=seeds)
    @settings(max_examples=50, deadline=None)
    def test_found_iff_target_discovered(self, n, graph_seed, algo_seed):
        graph = merged_mori_graph(n, 2, 0.5, seed=graph_seed).graph
        oracle = WeakOracle(graph, start=1, target=n)
        import random

        RandomWalkSearch().run(
            oracle, random.Random(algo_seed), 2 * graph.num_edges
        )
        assert oracle.found == oracle.knowledge.is_discovered(n)

    @given(n=small_n, graph_seed=seeds, algo_seed=seeds)
    @settings(max_examples=30, deadline=None)
    def test_knowledge_inference_is_sound(self, n, graph_seed, algo_seed):
        """Every inferred far endpoint matches the true graph."""
        graph = merged_mori_graph(n, 2, 0.5, seed=graph_seed).graph
        oracle = WeakOracle(graph, start=1, target=n)
        import random

        FloodingSearch().run(
            oracle, random.Random(algo_seed), graph.num_edges
        )
        knowledge = oracle.knowledge
        for v in knowledge.discovered():
            for eid in knowledge.edges_of(v):
                inferred = knowledge.far_endpoint(v, eid)
                if inferred is not None:
                    assert inferred == graph.other_endpoint(eid, v)

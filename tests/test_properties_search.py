"""Property-based tests for the search layer (oracle honesty, termination,
and the walker-ensemble kernel's invariants)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.frozen import HAVE_NUMPY
from repro.graphs.mori import merged_mori_graph
from repro.search.algorithms import (
    AgeGreedySearch,
    DegreeBiasedWalkSearch,
    FloodingSearch,
    HighDegreeStrongSearch,
    HighDegreeWeakSearch,
    MixedStrategySearch,
    RandomWalkSearch,
    RestartingWalkSearch,
    SelfAvoidingWalkSearch,
)
from repro.search.algorithms.base import MOVES_PER_REQUEST
from repro.search.ensemble import run_ensemble
from repro.search.oracle import StrongOracle, WeakOracle
from repro.search.process import run_search

seeds = st.integers(min_value=0, max_value=2**32 - 1)
small_n = st.integers(min_value=3, max_value=40)

needs_numpy = pytest.mark.skipif(
    not HAVE_NUMPY, reason="ensemble engine requires numpy"
)

ALGORITHM_BUILDERS = [
    RandomWalkSearch,
    FloodingSearch,
    HighDegreeWeakSearch,
    lambda: AgeGreedySearch("oldest"),
    lambda: AgeGreedySearch("closest-id"),
    lambda: MixedStrategySearch(0.3),
    HighDegreeStrongSearch,
    lambda: DegreeBiasedWalkSearch(1.0),
]


class TestSearchProperties:
    @given(
        n=small_n,
        m=st.integers(min_value=1, max_value=3),
        graph_seed=seeds,
        algo_seed=seeds,
        algo_index=st.integers(0, len(ALGORITHM_BUILDERS) - 1),
        data=st.data(),
    )
    @settings(max_examples=80, deadline=None)
    def test_terminates_and_respects_budget(
        self, n, m, graph_seed, algo_seed, algo_index, data
    ):
        graph = merged_mori_graph(n, m, 0.5, seed=graph_seed).graph
        target = data.draw(
            st.integers(min_value=1, max_value=n), label="target"
        )
        start = data.draw(
            st.integers(min_value=1, max_value=n), label="start"
        )
        budget = data.draw(
            st.integers(min_value=0, max_value=4 * graph.num_edges),
            label="budget",
        )
        algorithm = ALGORITHM_BUILDERS[algo_index]()
        result = run_search(
            algorithm, graph, start, target, budget=budget, seed=algo_seed
        )
        # Budget is a hard cap.
        assert result.requests <= budget
        # Result metadata is faithful.
        assert result.start == start
        assert result.target == target
        # Connected graph + full budget >= edges: flooding always finds.
        if (
            isinstance(algorithm, FloodingSearch)
            and budget >= graph.num_edges
        ):
            assert result.found

    @given(n=small_n, graph_seed=seeds, algo_seed=seeds)
    @settings(max_examples=50, deadline=None)
    def test_weak_oracle_counts_every_discovery(
        self, n, graph_seed, algo_seed
    ):
        """Discovered vertices never exceed requests + 1 in the weak model."""
        graph = merged_mori_graph(n, 1, 0.5, seed=graph_seed).graph
        oracle = WeakOracle(graph, start=1, target=n)
        algorithm = FloodingSearch()
        import random

        algorithm.run(oracle, random.Random(algo_seed), graph.num_edges)
        assert (
            oracle.knowledge.num_discovered <= oracle.request_count + 1
        )

    @given(n=small_n, graph_seed=seeds)
    @settings(max_examples=50, deadline=None)
    def test_strong_oracle_discovery_bound(self, n, graph_seed):
        """Each strong request discovers at most max-degree new vertices."""
        graph = merged_mori_graph(n, 1, 0.5, seed=graph_seed).graph
        oracle = StrongOracle(graph, start=1, target=n)
        import random

        HighDegreeStrongSearch().run(
            oracle, random.Random(0), graph.num_vertices
        )
        max_deg = max(graph.degree_sequence())
        assert (
            oracle.knowledge.num_discovered
            <= 1 + oracle.request_count * max_deg
        )

    @given(n=small_n, graph_seed=seeds, algo_seed=seeds)
    @settings(max_examples=50, deadline=None)
    def test_found_iff_target_discovered(self, n, graph_seed, algo_seed):
        graph = merged_mori_graph(n, 2, 0.5, seed=graph_seed).graph
        oracle = WeakOracle(graph, start=1, target=n)
        import random

        RandomWalkSearch().run(
            oracle, random.Random(algo_seed), 2 * graph.num_edges
        )
        assert oracle.found == oracle.knowledge.is_discovered(n)

    @given(n=small_n, graph_seed=seeds, algo_seed=seeds)
    @settings(max_examples=30, deadline=None)
    def test_knowledge_inference_is_sound(self, n, graph_seed, algo_seed):
        """Every inferred far endpoint matches the true graph."""
        graph = merged_mori_graph(n, 2, 0.5, seed=graph_seed).graph
        oracle = WeakOracle(graph, start=1, target=n)
        import random

        FloodingSearch().run(
            oracle, random.Random(algo_seed), graph.num_edges
        )
        knowledge = oracle.knowledge
        for v in knowledge.discovered():
            for eid in knowledge.edges_of(v):
                inferred = knowledge.far_endpoint(v, eid)
                if inferred is not None:
                    assert inferred == graph.other_endpoint(eid, v)


@needs_numpy
class TestEnsembleKernelProperties:
    """Invariants of the walker-ensemble kernel itself."""

    @given(n=small_n, graph_seed=seeds, cell_seed=seeds)
    @settings(max_examples=40, deadline=None)
    def test_self_avoiding_never_revisits_a_node_within_a_run(
        self, n, graph_seed, cell_seed
    ):
        """Every self-avoiding request discovers a *fresh* vertex.

        The walk prefers unresolved edges, whose far endpoint is by
        definition undiscovered in that run — so within one run's
        request trace no vertex is ever discovered twice, and the
        start vertex (discovered at time zero) never reappears.
        """
        graph = merged_mori_graph(n, 2, 0.5, seed=graph_seed).graph
        run_seeds = [cell_seed + run for run in range(4)]
        _, traces = run_ensemble(
            SelfAvoidingWalkSearch(),
            graph,
            1,
            n,
            run_seeds,
            budget=2 * graph.num_edges,
            collect_traces=True,
        )
        for trace in traces:
            answers = [answer for (_, _, _, answer) in trace]
            assert len(set(answers)) == len(answers)
            assert 1 not in answers  # the start is known from step 0

    @given(
        n=small_n,
        graph_seed=seeds,
        cell_seed=seeds,
        budget=st.integers(min_value=0, max_value=30),
        restart_prob=st.floats(min_value=0.0, max_value=0.9),
    )
    @settings(max_examples=40, deadline=None)
    def test_restarting_respects_hop_and_request_budgets(
        self, n, graph_seed, cell_seed, budget, restart_prob
    ):
        """Hop guard and request budget are hard caps for every run."""
        graph = merged_mori_graph(n, 1, 0.5, seed=graph_seed).graph
        run_seeds = [cell_seed + run for run in range(4)]
        results = run_ensemble(
            RestartingWalkSearch(restart_prob=restart_prob),
            graph,
            1,
            n,
            run_seeds,
            budget=budget,
        )
        max_moves = MOVES_PER_REQUEST * max(budget, 1)
        for result in results:
            assert result.requests <= budget
            assert result.extra["hops"] <= max_moves
            assert result.extra["restarts"] <= result.extra["hops"]

    @given(
        n=small_n,
        graph_seed=seeds,
        cell_seed=seeds,
        order=st.permutations(list(range(5))),
    )
    @settings(max_examples=40, deadline=None)
    def test_run_order_permutation_never_changes_a_run(
        self, n, graph_seed, cell_seed, order
    ):
        """Runs are independent: permuting a cell permutes its results.

        The kernel may schedule runs in lock step or per run; either
        way a run's outcome is a function of its own seed only, so
        submitting the ensemble in any order returns the same
        per-seed results (and traces), merely reordered.
        """
        graph = merged_mori_graph(n, 2, 0.5, seed=graph_seed).graph
        run_seeds = [cell_seed + run for run in range(5)]
        for algorithm_builder in (
            RandomWalkSearch,
            SelfAvoidingWalkSearch,
            lambda: DegreeBiasedWalkSearch(beta=1.0),
        ):
            baseline, base_traces = run_ensemble(
                algorithm_builder(), graph, 1, n, run_seeds,
                budget=25, collect_traces=True,
            )
            permuted, permuted_traces = run_ensemble(
                algorithm_builder(), graph, 1, n,
                [run_seeds[position] for position in order],
                budget=25, collect_traces=True,
            )
            for new_position, position in enumerate(order):
                assert permuted[new_position] == baseline[position]
                assert (
                    permuted_traces[new_position]
                    == base_traces[position]
                )

"""Unit tests for percolation search and Kleinberg greedy routing."""

from __future__ import annotations

import pytest

from repro.errors import InvalidParameterError
from repro.graphs.base import MultiGraph
from repro.graphs.configuration import power_law_configuration_graph
from repro.graphs.components import induced_subgraph, largest_component
from repro.graphs.kleinberg import kleinberg_grid
from repro.search.algorithms.kleinberg_greedy import greedy_route
from repro.search.algorithms.percolation import (
    percolation_query,
    replicate_content,
)


@pytest.fixture(scope="module")
def giant():
    full = power_law_configuration_graph(800, 2.3, min_degree=2, seed=2)
    return induced_subgraph(full, largest_component(full)).graph


class TestReplication:
    def test_owner_always_holds(self, giant):
        holders = replicate_content(
            giant, owner=1, num_replicas=0, walk_length=3, seed=0
        )
        assert holders == frozenset({1})

    def test_replicas_spread(self, giant):
        holders = replicate_content(
            giant, owner=1, num_replicas=50, walk_length=4, seed=1
        )
        assert len(holders) > 10
        assert 1 in holders

    def test_zero_walk_length_stays_home(self, giant):
        holders = replicate_content(
            giant, owner=5, num_replicas=10, walk_length=0, seed=0
        )
        assert holders == frozenset({5})

    def test_validation(self, giant):
        with pytest.raises(InvalidParameterError):
            replicate_content(giant, owner=0, num_replicas=1, walk_length=1)
        with pytest.raises(InvalidParameterError):
            replicate_content(giant, owner=1, num_replicas=-1, walk_length=1)
        with pytest.raises(InvalidParameterError):
            replicate_content(giant, owner=1, num_replicas=1, walk_length=-1)


class TestPercolationQuery:
    def test_source_holding_succeeds_free(self, giant):
        outcome = percolation_query(
            giant, source=3, holders=frozenset({3}), broadcast_probability=0.0,
            seed=0,
        )
        assert outcome.found
        assert outcome.messages == 0

    def test_zero_probability_reaches_nobody(self, giant):
        outcome = percolation_query(
            giant, source=3, holders=frozenset({4}), broadcast_probability=0.0,
            seed=0,
        )
        assert not outcome.found
        assert outcome.vertices_reached == 1

    def test_probability_one_floods_component(self, giant):
        outcome = percolation_query(
            giant,
            source=1,
            holders=frozenset({giant.num_vertices}),
            broadcast_probability=1.0,
            seed=0,
        )
        assert outcome.found
        assert outcome.vertices_reached == giant.num_vertices
        assert outcome.messages == giant.num_vertices - 1

    def test_messages_bounded_by_edges(self, giant):
        outcome = percolation_query(
            giant, source=1, holders=frozenset({2}),
            broadcast_probability=0.3, seed=5,
        )
        assert outcome.messages <= giant.num_edges

    def test_more_replicas_help(self, giant):
        few_hits = 0
        many_hits = 0
        for seed in range(20):
            few = replicate_content(
                giant, owner=7, num_replicas=1, walk_length=3, seed=seed
            )
            many = replicate_content(
                giant, owner=7, num_replicas=60, walk_length=3, seed=seed
            )
            few_hits += percolation_query(
                giant, 1, few, 0.15, seed=seed
            ).found
            many_hits += percolation_query(
                giant, 1, many, 0.15, seed=seed
            ).found
        assert many_hits >= few_hits

    def test_validation(self, giant):
        with pytest.raises(InvalidParameterError):
            percolation_query(giant, 0, frozenset({1}), 0.5)
        with pytest.raises(InvalidParameterError):
            percolation_query(giant, 1, frozenset({1}), 1.5)


class TestGreedyRouting:
    def test_routes_to_self(self):
        grid = kleinberg_grid(5, q=0)
        assert greedy_route(grid, 3, 3).hops == 0

    def test_routes_on_pure_lattice(self):
        grid = kleinberg_grid(8, q=0)
        source = grid.vertex_at(0, 0)
        target = grid.vertex_at(3, 3)
        result = greedy_route(grid, source, target)
        assert result.delivered
        # Pure lattice: greedy walks exactly the L1 distance.
        assert result.hops == grid.distance(source, target)

    def test_long_range_contacts_never_hurt(self):
        base = kleinberg_grid(10, q=0)
        augmented = kleinberg_grid(10, r=2.0, q=3, seed=1)
        source = base.vertex_at(0, 0)
        target = base.vertex_at(5, 5)
        plain = greedy_route(base, source, target).hops
        fancy = greedy_route(augmented, source, target).hops
        assert fancy <= plain

    def test_always_delivers(self):
        grid = kleinberg_grid(9, r=2.0, q=1, seed=3)
        for seed_pair in [(1, 40), (17, 60), (5, 81)]:
            result = greedy_route(grid, seed_pair[0], seed_pair[1])
            assert result.delivered

    def test_validation(self):
        grid = kleinberg_grid(4, q=0)
        with pytest.raises(InvalidParameterError):
            greedy_route(grid, 0, 1)
        with pytest.raises(InvalidParameterError):
            greedy_route(grid, 1, 99)

"""Unit tests for BA, power-law sequences, configuration, and Kleinberg models."""

from __future__ import annotations

import math
from collections import Counter

import pytest

from repro.errors import GraphConstructionError, InvalidParameterError
from repro.graphs.barabasi_albert import barabasi_albert_graph
from repro.graphs.configuration import (
    configuration_model_graph,
    power_law_configuration_graph,
)
from repro.graphs.kleinberg import kleinberg_grid
from repro.graphs.power_law import (
    is_graphical,
    power_law_degree_sequence,
    power_law_mean,
    power_law_pmf,
    power_law_weights,
)


class TestBarabasiAlbert:
    def test_sizes(self):
        graph = barabasi_albert_graph(100, 2, seed=0)
        assert graph.num_vertices == 100
        # Initial loop + 2 edges per vertex 2..100.
        assert graph.num_edges == 1 + 2 * 99

    def test_connected(self):
        assert barabasi_albert_graph(200, 1, seed=1).is_connected()

    def test_rich_get_richer(self):
        graph = barabasi_albert_graph(2000, 1, seed=2)
        degrees = sorted(graph.degree_sequence(), reverse=True)
        # The maximum degree should dwarf the median in a PA graph.
        assert degrees[0] > 10 * degrees[len(degrees) // 2]

    def test_parameter_validation(self):
        with pytest.raises(InvalidParameterError):
            barabasi_albert_graph(1, 1)
        with pytest.raises(InvalidParameterError):
            barabasi_albert_graph(10, 0)

    def test_deterministic(self):
        assert barabasi_albert_graph(50, 2, seed=3) == (
            barabasi_albert_graph(50, 2, seed=3)
        )


class TestPowerLawSequence:
    def test_weights_shape(self):
        weights = power_law_weights(2.0, 1, 4)
        assert weights == pytest.approx([1.0, 0.25, 1 / 9, 1 / 16])

    def test_pmf_normalized(self):
        pmf = power_law_pmf(2.5, 1, 100)
        assert sum(pmf) == pytest.approx(1.0)

    def test_mean_matches_pmf(self):
        mean = power_law_mean(3.0, 1, 10)
        pmf = power_law_pmf(3.0, 1, 10)
        assert mean == pytest.approx(
            sum(d * q for d, q in zip(range(1, 11), pmf))
        )

    def test_sequence_even_sum(self):
        for seed in range(20):
            degrees = power_law_degree_sequence(101, 2.5, seed=seed)
            assert sum(degrees) % 2 == 0

    def test_sequence_respects_bounds(self):
        degrees = power_law_degree_sequence(
            500, 2.5, min_degree=2, max_degree=30, seed=0
        )
        assert min(degrees) >= 2
        assert max(degrees) <= 31  # +1 allowed via parity fix

    def test_empirical_distribution(self):
        degrees = power_law_degree_sequence(
            50000, 2.5, min_degree=1, max_degree=1000, seed=1
        )
        counts = Counter(degrees)
        pmf = power_law_pmf(2.5, 1, 1000)
        assert abs(counts[1] / 50000 - pmf[0]) < 0.01
        assert abs(counts[2] / 50000 - pmf[1]) < 0.01

    def test_parameter_validation(self):
        with pytest.raises(InvalidParameterError):
            power_law_degree_sequence(0, 2.5)
        with pytest.raises(InvalidParameterError):
            power_law_weights(-1.0, 1, 5)
        with pytest.raises(InvalidParameterError):
            power_law_weights(2.5, 0, 5)
        with pytest.raises(InvalidParameterError):
            power_law_weights(2.5, 5, 4)

    def test_is_graphical(self):
        assert is_graphical([1, 1])
        assert is_graphical([2, 2, 2])
        assert not is_graphical([1, 1, 1])  # odd sum
        assert is_graphical([3, 1, 1, 1, 0, 0])  # star plus isolated
        assert is_graphical([])
        assert not is_graphical([-1, 1])
        assert not is_graphical([5, 1, 1, 1])  # degree 5 needs 5 others


class TestConfigurationModel:
    def test_degrees_exact(self):
        degrees = [3, 2, 2, 1]
        graph = configuration_model_graph(degrees, seed=0)
        assert graph.degree_sequence() == degrees

    def test_odd_sum_rejected(self):
        with pytest.raises(InvalidParameterError):
            configuration_model_graph([1, 1, 1])

    def test_negative_degree_rejected(self):
        with pytest.raises(InvalidParameterError):
            configuration_model_graph([2, -1, 1])

    def test_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            configuration_model_graph([])

    def test_simple_mode(self):
        graph = configuration_model_graph(
            [2, 2, 2, 2], seed=3, simple=True
        )
        seen = set()
        for _, tail, head in graph.edges():
            assert tail != head
            key = (min(tail, head), max(tail, head))
            assert key not in seen
            seen.add(key)

    def test_simple_mode_gives_up(self):
        # Degree sequence [4, 4] can only be realised with multi-edges.
        with pytest.raises(GraphConstructionError):
            configuration_model_graph(
                [4, 4], seed=0, simple=True, max_attempts=5
            )

    def test_power_law_convenience(self):
        graph = power_law_configuration_graph(300, 2.5, seed=4)
        assert graph.num_vertices == 300
        assert sum(graph.degree_sequence()) % 2 == 0

    def test_deterministic(self):
        g1 = power_law_configuration_graph(100, 2.5, seed=5)
        g2 = power_law_configuration_graph(100, 2.5, seed=5)
        assert g1 == g2


class TestKleinbergGrid:
    def test_sizes(self):
        grid = kleinberg_grid(5, r=2.0, q=1, seed=0)
        assert grid.n == 25
        # 2 lattice edges per vertex + 1 long-range contact each.
        assert grid.graph.num_edges == 2 * 25 + 25

    def test_no_long_range(self):
        grid = kleinberg_grid(4, r=2.0, q=0, seed=0)
        assert grid.graph.num_edges == 2 * 16

    def test_coordinates_roundtrip(self):
        grid = kleinberg_grid(6, q=0)
        for v in range(1, grid.n + 1):
            row, column = grid.coordinates(v)
            assert grid.vertex_at(row, column) == v

    def test_coordinates_validate(self):
        grid = kleinberg_grid(4, q=0)
        with pytest.raises(InvalidParameterError):
            grid.coordinates(0)
        with pytest.raises(InvalidParameterError):
            grid.coordinates(17)

    def test_torus_distance(self):
        grid = kleinberg_grid(5, q=0)
        v = grid.vertex_at(0, 0)
        w = grid.vertex_at(4, 4)
        # Wraps around: distance 1+1, not 4+4.
        assert grid.distance(v, w) == 2
        assert grid.distance(v, v) == 0
        assert grid.distance(v, w) == grid.distance(w, v)

    def test_lattice_neighbors_at_distance_one(self):
        grid = kleinberg_grid(5, q=0)
        for v in range(1, grid.n + 1):
            for w in grid.graph.unique_neighbors(v):
                assert grid.distance(v, w) == 1

    def test_connected(self):
        assert kleinberg_grid(4, r=2.0, q=1, seed=1).graph.is_connected()

    def test_long_range_bias(self):
        # At large r, long-range contacts concentrate at distance 1;
        # at r=0 they are uniform, so mean contact distance is larger.
        near = kleinberg_grid(15, r=6.0, q=1, seed=2)
        far = kleinberg_grid(15, r=0.0, q=1, seed=2)

        def mean_contact_distance(grid):
            total = 0
            count = 0
            # Long-range edges follow the 2*n lattice edges.
            for eid in range(2 * grid.n, grid.graph.num_edges):
                tail, head = grid.graph.edge_endpoints(eid)
                total += grid.distance(tail, head)
                count += 1
            return total / count

        assert mean_contact_distance(near) < mean_contact_distance(far)

    def test_parameter_validation(self):
        with pytest.raises(InvalidParameterError):
            kleinberg_grid(1)
        with pytest.raises(InvalidParameterError):
            kleinberg_grid(4, r=-1.0)
        with pytest.raises(InvalidParameterError):
            kleinberg_grid(4, q=-1)

    def test_deterministic(self):
        g1 = kleinberg_grid(6, r=2.0, q=2, seed=7)
        g2 = kleinberg_grid(6, r=2.0, q=2, seed=7)
        assert g1.graph == g2.graph

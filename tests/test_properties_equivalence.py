"""Property-based tests for the equivalence machinery."""

from __future__ import annotations

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.equivalence.events import event_holds
from repro.equivalence.exact import (
    enumerate_parent_vectors,
    exact_event_probability,
    lemma3_bound,
    lemma3_window_end,
    tree_probability,
)
from repro.equivalence.permutation import (
    apply_permutation_to_graph,
    apply_permutation_to_parents,
    is_valid_parent_vector,
    window_permutations,
)
from repro.graphs.mori import mori_tree

seeds = st.integers(min_value=0, max_value=2**32 - 1)
p_fractions = st.fractions(
    min_value=Fraction(0), max_value=Fraction(1), max_denominator=20
)


class TestPermutationGroupAction:
    @given(
        n=st.integers(min_value=3, max_value=30),
        seed=seeds,
        data=st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_graph_action_composes(self, n, seed, data):
        graph = mori_tree(n, 0.5, seed=seed).graph
        v1 = data.draw(st.integers(2, n), label="v1")
        v2 = data.draw(st.integers(2, n), label="v2")
        if v1 == v2:
            return
        sigma = {v1: v2, v2: v1}
        once = apply_permutation_to_graph(graph, sigma)
        twice = apply_permutation_to_graph(once, sigma)
        assert twice == graph  # involution
        assert sorted(once.degree_sequence()) == sorted(
            graph.degree_sequence()
        )

    @given(n=st.integers(min_value=4, max_value=7), p=p_fractions)
    @settings(max_examples=15, deadline=None)
    def test_event_trees_closed_under_window_permutations(self, n, p):
        """For every tree in E_{a,b}, its whole window orbit stays in
        E_{a,b} and keeps the same probability (Lemma 2, randomized)."""
        a, b = 2, min(4, n)
        window = range(a + 1, b + 1)
        for parents in enumerate_parent_vectors(n):
            if not event_holds(parents, a, b):
                continue
            base = tree_probability(parents, p)
            for sigma in window_permutations(window):
                image = apply_permutation_to_parents(parents, sigma)
                assert is_valid_parent_vector(image)
                assert event_holds(image, a, b)
                assert tree_probability(image, p) == base


class TestProbabilityProperties:
    @given(
        parents_seed=seeds,
        n=st.integers(min_value=2, max_value=40),
        p=p_fractions,
    )
    @settings(max_examples=50, deadline=None)
    def test_sampled_trees_have_positive_probability(
        self, parents_seed, n, p
    ):
        """Any tree the sampler produces at parameter p has p-probability > 0
        (soundness of the exact formula against the generator)."""
        tree = mori_tree(n, float(p), seed=parents_seed)
        probability = tree_probability(tree.parents, p)
        assert 0 <= probability <= 1
        if p < 1:
            # With p < 1 the uniform component gives every recursive
            # tree positive mass.
            assert probability > 0

    @given(
        a=st.integers(min_value=1, max_value=200),
        p=p_fractions,
    )
    @settings(max_examples=100, deadline=None)
    def test_lemma3_bound_universal(self, a, p):
        b = lemma3_window_end(a)
        exact = exact_event_probability(a, b, p)
        assert float(exact) >= lemma3_bound(float(p)) - 1e-12

    @given(
        a=st.integers(min_value=2, max_value=50),
        width=st.integers(min_value=0, max_value=10),
        p=p_fractions,
    )
    @settings(max_examples=80, deadline=None)
    def test_event_probability_decreasing_in_b(self, a, width, p):
        shorter = exact_event_probability(a, a + width, p)
        longer = exact_event_probability(a, a + width + 1, p)
        assert longer <= shorter

    @given(seed=seeds, n=st.integers(min_value=5, max_value=40))
    @settings(max_examples=50, deadline=None)
    def test_event_holds_matches_tree_method(self, seed, n):
        tree = mori_tree(n, 0.5, seed=seed)
        a, b = 3, min(n, 8)
        assert tree.satisfies_event(a, b) == event_holds(
            tree.parents, a, b
        )

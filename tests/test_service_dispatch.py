"""Tests for the batched dispatch layer (`repro.service.dispatch`,
`repro.service.stats`, and the daemon wiring around them).

The serving-optimization invariants: coalesced answers are bit-
identical to the batch path no matter how queries regroup, cache hits
return the same bytes the pool would have, the dispatcher flushes on
both its triggers (window deadline, batch-max), overload sheds with
429 instead of piling threads, a dead worker fails one batch — never
the daemon — and SIGTERM with a non-empty queue still exits clean.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.core.families import MoriFamily
from repro.core.trials import batched_search_trial, family_spec
from repro.graphs.shm import attach_graph
from repro.service import (
    AnswerCache,
    BatchDispatcher,
    LatencyHistogram,
    QueryError,
    SearchService,
    ServiceClient,
    ServiceStats,
    build_grid_entries,
    run_load,
)
from repro.service.client import ServiceHTTPError
from repro.service.core import portfolio_algorithms
from repro.service.loadgen import build_queries, parse_arrival

SIZE = 120
SEED = 3
PORTFOLIO = "adamic"
GRAPH_ID = f"mori-n{SIZE}-s{SEED}"
FAMILY = MoriFamily(p=0.5, m=1)


def _entries(sizes=(SIZE,), seeds=(SEED,)):
    return build_grid_entries(FAMILY, list(sizes), list(seeds))


def _expected(cells, *, size=SIZE, seed=SEED):
    return batched_search_trial(
        family=family_spec(FAMILY),
        size=size,
        portfolio=PORTFOLIO,
        cells=cells,
        seed=seed,
    )


# ----------------------------------------------------------------------
# BatchDispatcher unit tests (fake submit_batch, no daemon)
# ----------------------------------------------------------------------


class _FakePool:
    """Records batches; answers each cell with an echo dict."""

    def __init__(self):
        self.batches = []
        self.lock = threading.Lock()

    def submit(self, graph_id, cells):
        from concurrent.futures import Future

        with self.lock:
            self.batches.append((graph_id, list(cells)))
        done = Future()
        done.set_result([
            {"graph": graph_id, **cell} for cell in cells
        ])
        return done


class TestBatchDispatcher:
    def test_batch_max_flushes_before_window(self):
        pool = _FakePool()
        dispatcher = BatchDispatcher(
            pool.submit, window=30.0, batch_max=4
        )
        try:
            futures = [
                dispatcher.submit("g", {"run_index": index})
                for index in range(4)
            ]
            # The 30s window cannot have elapsed; only batch-max can
            # have flushed this.
            answers = [
                future.result(timeout=5) for future in futures
            ]
            assert [a["run_index"] for a in answers] == [0, 1, 2, 3]
            assert len(pool.batches) == 1
            assert len(pool.batches[0][1]) == 4
        finally:
            dispatcher.close()

    def test_window_flushes_partial_batch(self):
        pool = _FakePool()
        dispatcher = BatchDispatcher(
            pool.submit, window=0.02, batch_max=1000
        )
        try:
            futures = [
                dispatcher.submit("g", {"run_index": index})
                for index in range(3)
            ]
            begin = time.monotonic()
            answers = [
                future.result(timeout=5) for future in futures
            ]
            assert time.monotonic() - begin < 5
            assert [a["run_index"] for a in answers] == [0, 1, 2]
            assert len(pool.batches) == 1
        finally:
            dispatcher.close()

    def test_batches_group_per_graph(self):
        pool = _FakePool()
        dispatcher = BatchDispatcher(
            pool.submit, window=0.02, batch_max=1000
        )
        try:
            futures = [
                dispatcher.submit(graph, {"run_index": index})
                for index, graph in enumerate(["a", "b", "a", "b"])
            ]
            answers = [
                future.result(timeout=5) for future in futures
            ]
            assert [a["graph"] for a in answers] == [
                "a", "b", "a", "b",
            ]
            flushed = {
                graph_id: cells
                for graph_id, cells in pool.batches
            }
            assert set(flushed) == {"a", "b"}
            assert len(flushed["a"]) == 2
            assert len(flushed["b"]) == 2
        finally:
            dispatcher.close()

    def test_oversized_queue_drains_in_batch_max_chunks(self):
        pool = _FakePool()
        stats = ServiceStats()
        dispatcher = BatchDispatcher(
            pool.submit, window=0.01, batch_max=4, stats=stats
        )
        try:
            futures = [
                dispatcher.submit("g", {"run_index": index})
                for index in range(10)
            ]
            for future in futures:
                future.result(timeout=5)
            sizes = sorted(
                len(cells) for _, cells in pool.batches
            )
            assert sum(sizes) == 10
            assert max(sizes) <= 4
            snap = stats.snapshot()
            assert snap["batches"]["queries"] == 10
        finally:
            dispatcher.close()

    def test_full_queue_sheds_with_429(self):
        pool = _FakePool()
        stats = ServiceStats()
        dispatcher = BatchDispatcher(
            pool.submit,
            window=30.0,
            batch_max=1000,
            max_pending=2,
            stats=stats,
        )
        try:
            dispatcher.submit("g", {"run_index": 0})
            dispatcher.submit("g", {"run_index": 1})
            with pytest.raises(QueryError) as info:
                dispatcher.submit("g", {"run_index": 2})
            assert info.value.status == 429
            assert info.value.extra["queue_depth"] == 2
            assert stats.snapshot()["shed"] == 1
        finally:
            dispatcher.close()

    def test_close_fails_queued_queries_with_503(self):
        pool = _FakePool()
        dispatcher = BatchDispatcher(
            pool.submit, window=30.0, batch_max=1000
        )
        future = dispatcher.submit("g", {"run_index": 0})
        dispatcher.close()
        with pytest.raises(QueryError) as info:
            future.result(timeout=5)
        assert info.value.status == 503
        with pytest.raises(QueryError):
            dispatcher.submit("g", {"run_index": 1})
        dispatcher.close()  # idempotent

    def test_batch_failure_isolated_to_its_graph(self):
        from concurrent.futures import Future

        seen_errors = []

        def submit(graph_id, cells):
            done = Future()
            if graph_id == "bad":
                done.set_exception(RuntimeError("worker died"))
            else:
                done.set_result([dict(cell) for cell in cells])
            return done

        stats = ServiceStats()
        dispatcher = BatchDispatcher(
            submit,
            window=0.01,
            batch_max=1000,
            stats=stats,
            on_batch_error=seen_errors.append,
        )
        try:
            doomed = dispatcher.submit("bad", {"run_index": 0})
            fine = dispatcher.submit("good", {"run_index": 1})
            assert fine.result(timeout=5)["run_index"] == 1
            with pytest.raises(QueryError) as info:
                doomed.result(timeout=5)
            assert info.value.status == 503
            assert "worker died" in str(info.value)
            assert len(seen_errors) == 1
            assert isinstance(seen_errors[0], RuntimeError)
            assert stats.snapshot()["batches"]["failed"] == 1
        finally:
            dispatcher.close()


# ----------------------------------------------------------------------
# AnswerCache / LatencyHistogram units
# ----------------------------------------------------------------------


class TestAnswerCache:
    def test_lru_evicts_least_recently_used(self):
        cache = AnswerCache(2)
        cache.put(("a",), {"v": 1})
        cache.put(("b",), {"v": 2})
        assert cache.get(("a",)) == {"v": 1}  # refresh a
        cache.put(("c",), {"v": 3})           # evicts b
        assert cache.get(("b",)) is None
        assert cache.get(("a",)) == {"v": 1}
        assert cache.get(("c",)) == {"v": 3}
        assert len(cache) == 2
        assert cache.info() == {"size": 2, "capacity": 2}

    def test_zero_capacity_disables_storage(self):
        cache = AnswerCache(0)
        cache.put(("a",), {"v": 1})
        assert cache.get(("a",)) is None
        assert len(cache) == 0


class TestLatencyHistogram:
    def test_percentiles_within_bucket_resolution(self):
        histogram = LatencyHistogram()
        for _ in range(90):
            histogram.record(0.010)
        for _ in range(10):
            histogram.record(0.100)
        assert histogram.count == 100
        # Geometric buckets are ~12% wide; p50 must land at ~10ms
        # and p99 at ~100ms within one bucket either way.
        assert 0.010 / 1.25 <= histogram.percentile(0.50) <= 0.010 * 1.25
        assert 0.100 / 1.25 <= histogram.percentile(0.99) <= 0.100 * 1.25
        assert histogram.percentile(0.99) <= 0.100  # clamped to max
        snap = histogram.snapshot()
        assert set(snap) == {
            "count", "mean_ms", "p50_ms", "p90_ms", "p99_ms",
            "max_ms",
        }
        assert snap["max_ms"] == 100.0

    def test_empty_histogram_reports_zeros(self):
        snap = LatencyHistogram().snapshot()
        assert snap["count"] == 0
        assert snap["p99_ms"] == 0.0


class TestParseArrival:
    def test_modes(self):
        assert parse_arrival(None) is None
        assert parse_arrival("closed") is None
        assert parse_arrival("open:150") == 150.0
        for bad in ("open:0", "open:-1", "open:x", "poisson:5"):
            with pytest.raises(SystemExit):
                parse_arrival(bad)


# ----------------------------------------------------------------------
# Integration: coalescing daemon end to end
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def coalescing_service():
    with SearchService(
        _entries(),
        portfolio=PORTFOLIO,
        workers=2,
        batch_window=0.01,
        batch_max=16,
        cache_size=64,
    ) as running:
        yield running


class TestCoalescedServing:
    def test_coalesced_answers_bit_identical_under_load(
        self, coalescing_service
    ):
        service = coalescing_service
        algorithms = list(portfolio_algorithms(PORTFOLIO))
        queries = build_queries(
            service.handle_graphs(), algorithms, 24
        )
        responses, stats = run_load(
            service.host, service.port, queries, clients=8
        )
        cells = [
            {
                "algorithm": query["algorithm"],
                "run_index": query["run_index"],
            }
            for query in queries
        ]
        assert responses == _expected(cells)
        assert stats["queries"] == 24
        snap = service.stats.snapshot()
        batches = snap["batches"]
        assert batches["queries"] >= 24
        assert batches["count"] <= batches["queries"]

    def test_cache_hits_are_identical_and_skip_the_pool(
        self, coalescing_service
    ):
        service = coalescing_service
        with ServiceClient(service.host, service.port) as client:
            cold = client.search(GRAPH_ID, "random-walk", 7)
            before = service.stats.snapshot()
            warm = client.search(GRAPH_ID, "random-walk", 7)
            after = service.stats.snapshot()
        assert warm == cold
        assert warm == _expected(
            [{"algorithm": "random-walk", "run_index": 7}]
        )[0]
        assert (
            after["cache"]["hits"] == before["cache"]["hits"] + 1
        )
        # The hit never touched the dispatcher.
        assert (
            after["batches"]["queries"]
            == before["batches"]["queries"]
        )

    def test_stats_route_shape(self, coalescing_service):
        service = coalescing_service
        with ServiceClient(service.host, service.port) as client:
            client.search(GRAPH_ID, "high-degree-strong", 0)
            snap = client.stats()
        search = snap["routes"]["search"]
        assert search["count"] >= 1
        for key in ("p50_ms", "p90_ms", "p99_ms", "mean_ms"):
            assert key in search
        assert snap["in_flight"] >= 0
        assert snap["engine"] in ("serial", "ensemble")
        assert snap["batch_window_ms"] == pytest.approx(10.0)
        assert "size_distribution" in snap["batches"]
        assert snap["cache"]["capacity"] == 64
        assert snap["queue_depth"] >= 0

    def test_open_loop_load_reports_offered_qps(
        self, coalescing_service
    ):
        service = coalescing_service
        queries = build_queries(
            service.handle_graphs(), ["random-walk"], 8
        )
        responses, stats = run_load(
            service.host, service.port, queries,
            clients=4, arrival=400.0,
        )
        assert len(responses) == 8
        assert stats["offered_qps"] == 400.0
        assert responses == _expected([
            {
                "algorithm": query["algorithm"],
                "run_index": query["run_index"],
            }
            for query in queries
        ])

    def test_duration_mode_cycles_queries(self, coalescing_service):
        service = coalescing_service
        queries = build_queries(
            service.handle_graphs(), ["high-degree-strong"], 2
        )
        responses, stats = run_load(
            service.host, service.port, queries,
            clients=2, duration=0.4,
        )
        assert stats["queries"] == len(responses)
        assert len(responses) >= 2
        expected = _expected([
            {
                "algorithm": query["algorithm"],
                "run_index": query["run_index"],
            }
            for query in queries
        ])
        for index, response in enumerate(responses):
            assert response == expected[index % len(queries)]


class TestRobustness:
    def test_query_timeout_is_structured_503(self):
        # A 10s window with a huge batch-max never flushes before the
        # 50ms timeout: the query deterministically times out while
        # still queued.
        with SearchService(
            _entries(),
            portfolio=PORTFOLIO,
            workers=1,
            batch_window=10.0,
            batch_max=10_000,
            query_timeout=0.05,
            cache_size=0,
        ) as service:
            with ServiceClient(service.host, service.port) as client:
                with pytest.raises(ServiceHTTPError) as info:
                    client.search(GRAPH_ID, "random-walk", 0)
            assert info.value.status == 503
            assert service.stats.snapshot()["timeouts"] == 1

    def test_timeout_error_body_carries_timeout_s(self):
        import http.client

        with SearchService(
            _entries(),
            portfolio=PORTFOLIO,
            workers=1,
            batch_window=10.0,
            batch_max=10_000,
            query_timeout=0.05,
            cache_size=0,
        ) as service:
            conn = http.client.HTTPConnection(
                service.host, service.port, timeout=10
            )
            try:
                conn.request(
                    "POST", "/search",
                    body=json.dumps({
                        "graph": GRAPH_ID,
                        "algorithm": "random-walk",
                    }).encode(),
                    headers={"Content-Type": "application/json"},
                )
                response = conn.getresponse()
                payload = json.loads(response.read())
            finally:
                conn.close()
            assert response.status == 503
            assert payload["timeout_s"] == 0.05

    def test_overload_sheds_with_429(self):
        with SearchService(
            _entries(),
            portfolio=PORTFOLIO,
            workers=1,
            batch_window=10.0,
            batch_max=10_000,
            max_queue=2,
            query_timeout=0.5,
            cache_size=0,
        ) as service:
            statuses = []

            def fire(run_index):
                try:
                    with ServiceClient(
                        service.host, service.port
                    ) as client:
                        client.search(
                            GRAPH_ID, "random-walk", run_index
                        )
                    statuses.append(200)
                except ServiceHTTPError as error:
                    statuses.append(error.status)

            threads = [
                threading.Thread(target=fire, args=(index,))
                for index in range(5)
            ]
            for thread in threads:
                thread.start()
                time.sleep(0.02)  # deterministic queue build-up
            for thread in threads:
                thread.join(timeout=10)
            # Two fit the queue (and later time out at 0.5s); the
            # other three shed immediately with 429.
            assert statuses.count(429) == 3
            assert service.stats.snapshot()["shed"] == 3

    def test_worker_death_fails_one_batch_not_the_daemon(self):
        with SearchService(
            _entries(),
            portfolio=PORTFOLIO,
            workers=1,
            batch_window=0.005,
            cache_size=0,
        ) as service:
            with ServiceClient(service.host, service.port) as client:
                baseline = client.search(GRAPH_ID, "random-walk", 0)
                # Kill every worker while the pool is idle: the next
                # dispatched batch lands on a broken pool and must
                # fail alone, after which the daemon swaps in a fresh
                # pool.
                for pid in list(service._pool._processes):
                    os.kill(pid, signal.SIGKILL)
                outcomes = []
                for attempt in range(10):
                    try:
                        client.search(
                            GRAPH_ID, "random-walk", attempt + 1
                        )
                        outcomes.append("ok")
                    except ServiceHTTPError as error:
                        outcomes.append(error.status)
                # The daemon never died, and it recovered: the tail
                # queries succeed on the respawned pool.
                assert outcomes[-1] == "ok"
                failures = [o for o in outcomes if o != "ok"]
                assert all(status == 503 for status in failures)
                assert client.health()["status"] == "ok"
                # Recovery preserves the determinism contract.
                assert (
                    client.search(GRAPH_ID, "random-walk", 0)
                    == baseline
                )


class TestStoreWriteThrough:
    def test_answers_persist_and_prewarm_a_fresh_daemon(
        self, tmp_path
    ):
        from repro.runner.store import open_store

        store = open_store(tmp_path)
        with SearchService(
            _entries(),
            portfolio=PORTFOLIO,
            workers=1,
            cache_size=8,
            cache_store=store,
        ) as first:
            with ServiceClient(first.host, first.port) as client:
                cold = client.search(GRAPH_ID, "random-walk", 3)
            assert first.stats.snapshot()["cache"]["misses"] == 1
        # A brand-new daemon (empty in-process cache) over the same
        # store serves the persisted answer as a hit.
        with SearchService(
            _entries(),
            portfolio=PORTFOLIO,
            workers=1,
            cache_size=8,
            cache_store=open_store(tmp_path),
        ) as second:
            with ServiceClient(second.host, second.port) as client:
                warm = client.search(GRAPH_ID, "random-walk", 3)
            assert warm == cold
            snap = second.stats.snapshot()
            assert snap["cache"]["hits"] == 1
            assert snap["batches"]["queries"] == 0  # never hit the pool
        assert warm == _expected(
            [{"algorithm": "random-walk", "run_index": 3}]
        )[0]


class TestSigtermWithQueue:
    def test_clean_exit_with_nonempty_dispatch_queue(self, tmp_path):
        port_file = tmp_path / "serve.port"
        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + (
            os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH") else ""
        )
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--sizes", "60", "--seeds", "1",
                "--workers", "1", "--port", "0",
                "--port-file", str(port_file),
                # A 30s window with a huge batch-max parks every
                # query in the dispatch queue until shutdown.
                "--batch-window", "30000",
                "--batch-max", "100000",
                "--query-timeout", "120",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        raw = None
        try:
            deadline = time.monotonic() + 60
            while not port_file.exists():
                assert process.poll() is None, process.stderr.read()
                assert time.monotonic() < deadline
                time.sleep(0.05)
            port = int(port_file.read_text().strip())
            with ServiceClient("127.0.0.1", port) as probe:
                shm_names = [
                    graph["shm"] for graph in probe.graphs()
                ]
            # Park a query in the dispatch queue (unread response).
            raw = socket.create_connection(
                ("127.0.0.1", port), timeout=10
            )
            body = json.dumps({
                "graph": "mori-n60-s1", "algorithm": "random-walk",
            }).encode()
            raw.sendall(
                b"POST /search HTTP/1.1\r\n"
                b"Host: x\r\nContent-Type: application/json\r\n"
                + f"Content-Length: {len(body)}\r\n\r\n".encode()
                + body
            )
            time.sleep(0.3)  # let it enqueue, well inside the window
            process.send_signal(signal.SIGTERM)
            stdout, stderr = process.communicate(timeout=30)
            assert process.returncode == 0, stderr
            assert "shutting down" in stdout
            # The queued query was answered with a 503, not dropped
            # on the floor with the socket left hanging.
            raw.settimeout(10)
            reply = raw.recv(4096)
            assert b"503" in reply
            for name in shm_names:
                with pytest.raises(FileNotFoundError):
                    attach_graph(name)
        finally:
            if raw is not None:
                raw.close()
            if process.poll() is None:
                process.kill()
                process.communicate()

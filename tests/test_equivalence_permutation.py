"""Unit tests for the permutation action (Definition 1)."""

from __future__ import annotations

import pytest

from repro.errors import InvalidParameterError
from repro.graphs.base import MultiGraph
from repro.equivalence.permutation import (
    apply_permutation_to_graph,
    apply_permutation_to_parents,
    is_valid_parent_vector,
    window_permutations,
    window_transpositions,
)


class TestGraphAction:
    def test_identity(self, triangle):
        assert apply_permutation_to_graph(triangle, {}) == triangle

    def test_transposition(self):
        graph = MultiGraph.from_edges(3, [(2, 1), (3, 1)])
        image = apply_permutation_to_graph(graph, {2: 3, 3: 2})
        assert list(image.edges()) == [(0, 3, 1), (1, 2, 1)]

    def test_preserves_counts(self, small_merged):
        graph = small_merged.graph
        image = apply_permutation_to_graph(graph, {5: 6, 6: 5})
        assert image.num_vertices == graph.num_vertices
        assert image.num_edges == graph.num_edges
        assert sorted(image.degree_sequence()) == sorted(
            graph.degree_sequence()
        )

    def test_degree_transport(self, small_merged):
        graph = small_merged.graph
        image = apply_permutation_to_graph(graph, {5: 6, 6: 5})
        assert image.degree(5) == graph.degree(6)
        assert image.degree(6) == graph.degree(5)

    def test_involution(self, small_merged):
        graph = small_merged.graph
        sigma = {3: 7, 7: 3}
        twice = apply_permutation_to_graph(
            apply_permutation_to_graph(graph, sigma), sigma
        )
        assert twice == graph

    def test_invalid_permutation_rejected(self, triangle):
        with pytest.raises(InvalidParameterError):
            apply_permutation_to_graph(triangle, {1: 2})  # not a bijection

    def test_moving_missing_vertex_rejected(self, triangle):
        with pytest.raises(InvalidParameterError):
            apply_permutation_to_graph(triangle, {4: 5, 5: 4})


class TestParentAction:
    def test_identity(self):
        parents = (0, 0, 1, 2, 1)
        assert apply_permutation_to_parents(parents, {}) == parents

    def test_swap_window_vertices(self):
        # Tree: 2->1, 3->1, 4->1.  Swapping 3 and 4 fixes the vector.
        parents = (0, 0, 1, 1, 1)
        image = apply_permutation_to_parents(parents, {3: 4, 4: 3})
        assert image == parents

    def test_swap_moves_parent_pointers(self):
        # Tree: 2->1, 3->2, 4->3.  Swap 3,4: N'_4 = sigma(N_3) = sigma(2)=2,
        # N'_3 = sigma(N_4) = sigma(3) = 4 -> invalid (parent newer).
        parents = (0, 0, 1, 2, 3)
        image = apply_permutation_to_parents(parents, {3: 4, 4: 3})
        assert image == (0, 0, 1, 4, 2)
        assert not is_valid_parent_vector(image)

    def test_children_of_window_relabeled(self):
        # Tree: 2->1, 3->1, 4->1, 5->3.  Swap 3,4: vertex 5's parent
        # becomes 4; vectors stay valid.
        parents = (0, 0, 1, 1, 1, 3)
        image = apply_permutation_to_parents(parents, {3: 4, 4: 3})
        assert image == (0, 0, 1, 1, 1, 4)
        assert is_valid_parent_vector(image)

    def test_root_must_be_fixed(self):
        with pytest.raises(InvalidParameterError):
            apply_permutation_to_parents((0, 0, 1), {1: 2, 2: 1})


class TestValidity:
    def test_valid_vectors(self):
        assert is_valid_parent_vector((0, 0, 1))
        assert is_valid_parent_vector((0, 0, 1, 2, 1))

    def test_invalid_vectors(self):
        assert not is_valid_parent_vector(())
        assert not is_valid_parent_vector((0,))
        assert not is_valid_parent_vector((0, 0, 2))  # parent not older
        assert not is_valid_parent_vector((0, 0, 1, 3))  # self/newer
        assert not is_valid_parent_vector((0, 1, 1))  # slot 1 must be 0
        assert not is_valid_parent_vector((1, 0, 1))  # slot 0 must be 0


class TestWindowEnumeration:
    def test_transpositions_count(self):
        transpositions = list(window_transpositions([4, 5, 6]))
        assert len(transpositions) == 3
        assert {4: 5, 5: 4} in transpositions

    def test_permutations_count(self):
        permutations = list(window_permutations([4, 5, 6]))
        assert len(permutations) == 5  # 3! - identity

    def test_single_vertex_window(self):
        assert list(window_transpositions([7])) == []
        assert list(window_permutations([7])) == []

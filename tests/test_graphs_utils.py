"""Unit tests for merge, components, convert, and io graph utilities."""

from __future__ import annotations

import pytest

from repro.errors import InvalidParameterError, ReproError
from repro.graphs.base import MultiGraph
from repro.graphs.components import (
    connected_components,
    induced_subgraph,
    largest_component,
)
from repro.graphs.convert import from_networkx, to_networkx
from repro.graphs.io import load_edge_list, save_edge_list
from repro.graphs.merge import merge_consecutive, quotient_graph
from repro.graphs.mori import mori_tree


class TestMerge:
    def test_merge_consecutive_pairs(self):
        graph = MultiGraph.from_edges(4, [(2, 1), (3, 2), (4, 3)])
        merged = merge_consecutive(graph, 2)
        assert merged.num_vertices == 2
        assert merged.num_edges == 3
        # Edge (2,1) becomes a self-loop at block 1.
        assert merged.num_self_loops() >= 1

    def test_merge_block_one_is_identity(self, triangle):
        merged = merge_consecutive(triangle, 1)
        assert merged == triangle

    def test_degree_mass_conserved(self):
        tree = mori_tree(24, 0.5, seed=0).graph
        merged = merge_consecutive(tree, 4)
        assert sum(merged.degree_sequence()) == sum(
            tree.degree_sequence()
        )

    def test_merge_validates(self, triangle):
        with pytest.raises(InvalidParameterError):
            merge_consecutive(triangle, 0)
        with pytest.raises(InvalidParameterError):
            merge_consecutive(triangle, 2)  # 3 not divisible by 2

    def test_quotient_graph_custom_blocks(self):
        graph = MultiGraph.from_edges(4, [(2, 1), (3, 2), (4, 3)])
        merged = quotient_graph(graph, [1, 2, 1, 2], 2)
        assert merged.num_vertices == 2
        assert merged.num_edges == 3

    def test_quotient_validates_block_range(self):
        graph = MultiGraph(2)
        with pytest.raises(InvalidParameterError):
            quotient_graph(graph, [1, 3], 2)
        with pytest.raises(InvalidParameterError):
            quotient_graph(graph, [1], 1)
        with pytest.raises(InvalidParameterError):
            quotient_graph(graph, [1, 1], 2)  # block 2 empty
        with pytest.raises(InvalidParameterError):
            quotient_graph(graph, [1, 1], 0)


class TestComponents:
    def test_connected_components_sorted(self):
        graph = MultiGraph(5)
        graph.add_edge(2, 1)
        graph.add_edge(4, 3)
        graph.add_edge(5, 4)
        components = connected_components(graph)
        assert components == [[3, 4, 5], [1, 2]]

    def test_largest_component(self):
        graph = MultiGraph(4)
        graph.add_edge(2, 1)
        assert largest_component(graph) == [1, 2]

    def test_largest_component_empty_graph(self):
        with pytest.raises(InvalidParameterError):
            largest_component(MultiGraph(0))

    def test_induced_subgraph_relabels_in_order(self):
        graph = MultiGraph(5)
        graph.add_edge(3, 2)
        graph.add_edge(5, 3)
        sub = induced_subgraph(graph, [2, 3, 5])
        assert sub.graph.num_vertices == 3
        assert sub.graph.num_edges == 2
        assert sub.to_original[1:] == (2, 3, 5)
        assert sub.to_new == {2: 1, 3: 2, 5: 3}
        # Order preservation: newest original id maps to largest new id.
        assert sub.to_new[5] == 3

    def test_induced_subgraph_drops_external_edges(self):
        graph = MultiGraph(3)
        graph.add_edge(2, 1)
        graph.add_edge(3, 2)
        sub = induced_subgraph(graph, [1, 2])
        assert sub.graph.num_edges == 1

    def test_induced_subgraph_validates(self):
        graph = MultiGraph(2)
        with pytest.raises(InvalidParameterError):
            induced_subgraph(graph, [])
        with pytest.raises(InvalidParameterError):
            induced_subgraph(graph, [3])


class TestConvert:
    def test_roundtrip(self, triangle):
        nx_graph = to_networkx(triangle)
        back = from_networkx(nx_graph)
        assert back == triangle

    def test_to_networkx_preserves_multiplicity(self, parallel_graph):
        nx_graph = to_networkx(parallel_graph)
        assert nx_graph.number_of_edges() == 2

    def test_to_networkx_orientation(self):
        graph = MultiGraph.from_edges(2, [(2, 1)])
        nx_graph = to_networkx(graph)
        assert nx_graph.has_edge(2, 1)
        assert not nx_graph.has_edge(1, 2)

    def test_from_networkx_requires_dense_labels(self):
        import networkx

        bad = networkx.Graph()
        bad.add_edge(0, 1)  # nodes 0,1 instead of 1,2
        with pytest.raises(ReproError):
            from_networkx(bad)

    def test_cross_validate_bfs_with_networkx(self):
        import networkx

        tree = mori_tree(60, 0.5, seed=3).graph
        nx_graph = to_networkx(tree).to_undirected()
        from repro.analysis.diameter import bfs_distances

        ours = bfs_distances(tree, 1)
        theirs = networkx.single_source_shortest_path_length(nx_graph, 1)
        for v in tree.vertices():
            assert ours[v] == theirs[v]


class TestIO:
    def test_roundtrip(self, tmp_path, small_merged):
        path = tmp_path / "graph.edges"
        save_edge_list(small_merged.graph, path)
        loaded = load_edge_list(path)
        assert loaded == small_merged.graph

    def test_roundtrip_with_isolated_vertices(self, tmp_path):
        graph = MultiGraph(5)
        graph.add_edge(2, 1)
        path = tmp_path / "g.edges"
        save_edge_list(graph, path)
        assert load_edge_list(path) == graph

    def test_roundtrip_preserves_edge_ids_loops_and_parallels(
        self, tmp_path
    ):
        """The adversarial pin: ids, loop counts, parallel bundles.

        The format writes one line per edge in edge-id order and the
        loader re-adds in line order, so the round-trip must preserve
        the *labeled* edge list — a permutation of the parallel bundle
        would pass plain isomorphism yet break the incidence-slot
        order the walk oracles read.
        """
        from repro.graphs.frozen import freeze

        graph = MultiGraph(4)
        graph.add_edge(1, 1)  # self-loop first, id 0
        graph.add_edge(2, 1)
        graph.add_edge(2, 1)  # parallel bundle, ids 1-2
        graph.add_edge(1, 2)  # reverse orientation, id 3
        graph.add_edge(3, 3)
        graph.add_edge(3, 3)  # doubled self-loop, ids 4-5
        graph.add_edge(4, 3)
        path = tmp_path / "adversarial.edges"
        save_edge_list(graph, path)
        loaded = load_edge_list(path)
        assert loaded == graph
        assert list(loaded.edges()) == list(graph.edges())
        assert loaded.num_self_loops() == 3
        assert loaded.incident_edges(1) == graph.incident_edges(1)
        assert loaded.incident_edges(3) == graph.incident_edges(3)
        assert hash(freeze(loaded)) == hash(freeze(graph))

    def test_roundtrip_matches_vectorized_snapshot(self, tmp_path):
        """A thawed fastgen snapshot survives the text round-trip."""
        pytest.importorskip("numpy")
        from repro.graphs.fastgen import fast_merged_mori_frozen
        from repro.graphs.frozen import freeze

        snapshot = fast_merged_mori_frozen(60, 2, 0.5, seed=0)
        path = tmp_path / "fast.edges"
        save_edge_list(snapshot.thaw(), path)
        loaded = load_edge_list(path)
        assert freeze(loaded) == snapshot
        assert list(loaded.edges()) == list(snapshot.edges())

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text("nonsense\n")
        with pytest.raises(ReproError):
            load_edge_list(path)

    def test_missing_vertex_line_rejected(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text("# repro edge list v1\n1 2\n")
        with pytest.raises(ReproError):
            load_edge_list(path)

    def test_malformed_edge_rejected(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text(
            "# repro edge list v1\n# vertices: 3\n1 2 3\n"
        )
        with pytest.raises(ReproError):
            load_edge_list(path)

    def test_non_integer_endpoint_rejected(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text(
            "# repro edge list v1\n# vertices: 2\na b\n"
        )
        with pytest.raises(ReproError):
            load_edge_list(path)

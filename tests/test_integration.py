"""Integration tests: full pipelines across modules.

These exercise the same paths the examples and benchmarks use, at small
scale, asserting the *paper-level* claims end to end:

1. the Ω(√n) floor holds against the whole portfolio on both models;
2. the exact Lemma-1 floor never exceeds any measured mean;
3. the navigable/non-navigable contrast is visible in one run.
"""

from __future__ import annotations

import math

import pytest

from repro.analysis.diameter import estimate_diameter
from repro.analysis.scaling import fit_power_scaling
from repro.core.families import (
    CooperFriezeFamily,
    MoriFamily,
    theorem_target_for_size,
)
from repro.core.searchability import (
    constant_factory,
    measure_scaling,
    measure_search_cost,
    omniscient_factory,
)
from repro.equivalence.lower_bound import theorem1_weak_bound
from repro.graphs.kleinberg import kleinberg_grid
from repro.graphs.mori import merged_mori_graph
from repro.search.algorithms import (
    FloodingSearch,
    HighDegreeWeakSearch,
    RandomWalkSearch,
    greedy_route,
    weak_model_portfolio,
)
from repro.search.process import run_search


class TestLowerBoundPipeline:
    def test_portfolio_respects_floor_on_mori(self):
        """Measured mean cost of every weak algorithm >= Lemma-1 floor."""
        family = MoriFamily(p=0.5, m=1)
        size = 400
        factories = {
            algorithm.name: constant_factory(algorithm)
            for algorithm in weak_model_portfolio()
        }
        factories["omniscient"] = omniscient_factory()
        cell = measure_search_cost(
            family, size, factories, num_graphs=6, runs_per_graph=2,
            seed=100,
        )
        floor = theorem1_weak_bound(theorem_target_for_size(size), 0.5)
        for name, summary in cell.summaries.items():
            # Allow Monte-Carlo slack on a theorem about expectations.
            assert summary.mean_requests >= 0.5 * floor, (
                f"{name} beat the theoretical floor: "
                f"{summary.mean_requests} < {floor}"
            )

    def test_scaling_exponents_at_least_half_ish(self):
        family = MoriFamily(p=0.5, m=1)
        factories = {
            "flooding": constant_factory(FloodingSearch()),
            "high-degree": constant_factory(HighDegreeWeakSearch()),
        }
        measurement = measure_scaling(
            family,
            (100, 200, 400, 800),
            factories,
            num_graphs=5,
            runs_per_graph=2,
            seed=101,
        )
        for name in factories:
            exponent = measurement.fitted_exponent(name)
            assert exponent > 0.35, (
                f"{name} fitted exponent {exponent} suspiciously low"
            )

    def test_cooper_frieze_costs_grow(self):
        family = CooperFriezeFamily()
        factories = {"flooding": constant_factory(FloodingSearch())}
        measurement = measure_scaling(
            family,
            (100, 400),
            factories,
            num_graphs=3,
            runs_per_graph=1,
            seed=102,
        )
        means = measurement.mean_requests("flooding")
        assert means[1] > 1.5 * means[0]


class TestContrastPipeline:
    def test_small_world_yet_unsearchable(self):
        """One graph exhibits both headline properties at once."""
        size = 800
        merged = merged_mori_graph(size, 2, 0.5, seed=7)
        graph = merged.graph
        # Diameter logarithmic-ish: well under any polynomial in n.
        diameter_value = estimate_diameter(graph, seed=1)
        assert diameter_value <= 6 * math.log(size)
        # Yet searching for the theorem target costs >> diameter.
        target = theorem_target_for_size(size)
        result = run_search(
            HighDegreeWeakSearch(), graph, 1, target, seed=2
        )
        assert result.found
        assert result.requests > 4 * diameter_value

    def test_kleinberg_is_navigable_where_mori_is_not(self):
        # Comparable sizes: 28^2 = 784 vs 800.
        grid = kleinberg_grid(28, r=2.0, q=1, seed=3)
        hops = greedy_route(
            grid, 1, grid.n - 5
        ).hops
        merged = merged_mori_graph(800, 2, 0.5, seed=3)
        target = theorem_target_for_size(800)
        requests = run_search(
            HighDegreeWeakSearch(), merged.graph, 1, target, seed=4
        ).requests
        # Greedy routing with distance knowledge: tens of hops.
        # Local search on the scale-free graph: hundreds of requests.
        assert hops < 60
        assert requests > hops

    def test_random_walk_is_never_better_than_flooding_asymptotically(
        self,
    ):
        family = MoriFamily(p=0.5, m=1)
        factories = {
            "flooding": constant_factory(FloodingSearch()),
            "random-walk": constant_factory(RandomWalkSearch()),
        }
        measurement = measure_scaling(
            family,
            (200, 800),
            factories,
            num_graphs=5,
            runs_per_graph=2,
            seed=103,
        )
        walk = measurement.mean_requests("random-walk")
        flood = measurement.mean_requests("flooding")
        # At the larger size the walk should not be dramatically
        # cheaper than exhaustive flooding (both are Θ(n)-ish here).
        assert walk[-1] > 0.2 * flood[-1]


class TestReproducibilityPipeline:
    def test_full_measurement_is_seed_deterministic(self):
        family = MoriFamily(p=0.5, m=2)
        factories = {
            "high-degree": constant_factory(HighDegreeWeakSearch())
        }

        def run_once():
            cell = measure_search_cost(
                family, 150, factories, num_graphs=3,
                runs_per_graph=2, seed=42,
            )
            return cell.summaries["high-degree"]

        first = run_once()
        second = run_once()
        assert first.mean_requests == second.mean_requests
        assert first.median_requests == second.median_requests

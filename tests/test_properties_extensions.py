"""Property-based tests for the extension features.

Covers the code added beyond the paper's minimal scope: Cooper–Frieze
step traces, the Adamic ``neighbor_success`` oracle mode, and the
edges-per-step Móri variant.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.cooper_frieze import (
    CooperFriezeParams,
    cooper_frieze_graph,
)
from repro.graphs.mori import merged_mori_graph, mori_edges_per_step_graph
from repro.search.algorithms import FloodingSearch, RandomWalkSearch
from repro.search.oracle import WeakOracle
from repro.search.process import run_search

seeds = st.integers(min_value=0, max_value=2**32 - 1)


class TestTraceProperties:
    @given(
        n=st.integers(min_value=2, max_value=40),
        alpha=st.floats(min_value=0.4, max_value=1.0),
        seed=seeds,
    )
    @settings(max_examples=40, deadline=None)
    def test_trace_is_complete_and_consistent(self, n, alpha, seed):
        cf = cooper_frieze_graph(
            n,
            CooperFriezeParams(alpha=alpha),
            seed=seed,
            record_trace=True,
        )
        # One record per step; NEW records in vertex order.
        assert len(cf.trace) == cf.num_steps
        new_vertices = [
            r.vertex for r in cf.trace if r.kind == "new"
        ]
        assert new_vertices == list(range(2, n + 1))
        # Traced edges tile 1..num_edges (edge 0 is the initial loop).
        traced = [e for r in cf.trace for e in r.edge_ids]
        assert traced == list(range(1, cf.graph.num_edges))
        # Every record's edges have the record's vertex as tail.
        for record in cf.trace:
            for eid in record.edge_ids:
                tail, _ = cf.graph.edge_endpoints(eid)
                assert tail == record.vertex

    @given(
        n=st.integers(min_value=2, max_value=40),
        seed=seeds,
    )
    @settings(max_examples=30, deadline=None)
    def test_trace_does_not_change_the_graph(self, n, seed):
        with_trace = cooper_frieze_graph(
            n, seed=seed, record_trace=True
        )
        without = cooper_frieze_graph(n, seed=seed, record_trace=False)
        assert with_trace.graph == without.graph


class TestNeighborSuccessProperties:
    @given(
        n=st.integers(min_value=4, max_value=40),
        graph_seed=seeds,
        algo_seed=seeds,
    )
    @settings(max_examples=40, deadline=None)
    def test_neighbor_success_never_slower(
        self, n, graph_seed, algo_seed
    ):
        """The relaxed criterion can only stop earlier (deterministic
        request sequence => prefix property)."""
        graph = merged_mori_graph(n, 1, 0.5, seed=graph_seed).graph
        strict = run_search(
            FloodingSearch(), graph, 1, n, seed=algo_seed
        )
        relaxed = run_search(
            FloodingSearch(),
            graph,
            1,
            n,
            seed=algo_seed,
            neighbor_success=True,
        )
        assert relaxed.requests <= strict.requests
        assert relaxed.found

    @given(
        n=st.integers(min_value=4, max_value=30),
        graph_seed=seeds,
    )
    @settings(max_examples=40, deadline=None)
    def test_neighbor_success_zone_is_correct(self, n, graph_seed):
        """Under the relaxed rule, found <=> some discovered vertex is
        the target or adjacent to it."""
        graph = merged_mori_graph(n, 2, 0.5, seed=graph_seed).graph
        target = n
        oracle = WeakOracle(graph, 1, target, neighbor_success=True)
        import random

        RandomWalkSearch().run(
            oracle, random.Random(0), graph.num_edges
        )
        zone = {target} | set(graph.unique_neighbors(target))
        touched = any(
            oracle.knowledge.is_discovered(v) for v in zone
        )
        assert oracle.found == touched


class TestEdgesPerStepProperties:
    @given(
        n=st.integers(min_value=2, max_value=40),
        m=st.integers(min_value=1, max_value=4),
        p=st.floats(min_value=0.0, max_value=1.0),
        seed=seeds,
    )
    @settings(max_examples=40, deadline=None)
    def test_invariants(self, n, m, p, seed):
        graph = mori_edges_per_step_graph(n, m, p, seed=seed)
        assert graph.num_vertices == n
        assert graph.num_edges == m * (n - 1)
        assert graph.is_connected()
        assert graph.num_self_loops() == 0
        # Construction orientation: edges point to older vertices.
        for _, tail, head in graph.edges():
            assert head < tail

"""Tests for the parallel trial-execution engine (`repro.runner`).

The properties that make the runner safe to put under every
experiment: parallel output is bit-identical to serial, per-trial seed
derivation never collides across a grid, results come back in spec
order regardless of completion order, and worker failures surface with
the failing spec attached.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.errors import ExperimentError
from repro.rng import make_rng, stream_seeds, substream
from repro.runner import (
    ResultStore,
    TrialExecutionError,
    TrialSpec,
    resolve_trial,
    run_trials,
    trial_ref,
)


def draw_trial(*, rounds: int, seed: int = 0) -> dict:
    """A tiny pure trial: a few RNG draws, pure in (rounds, seed)."""
    rng = make_rng(seed)
    values = [rng.random() for _ in range(rounds)]
    return {"seed": seed, "first": values[0], "sum": sum(values)}


def slow_when_even_trial(*, index: int, seed: int = 0) -> int:
    """Finishes out of submission order under parallel execution."""
    import time

    if index % 2 == 0:
        time.sleep(0.05)
    return index * 1000 + seed


def failing_trial(*, threshold: int, seed: int = 0) -> int:
    if seed >= threshold:
        raise ValueError(f"seed {seed} over threshold {threshold}")
    return seed


def kill_self_trial(*, victim: int, seed: int = 0) -> int:
    """SIGKILLs its own worker process at ``seed == victim``.

    The innocent bystander at ``victim - 1`` sleeps long enough to
    still be in flight when the worker dies, so a naive executor
    (first poisoned future wins) attributes the death to it.
    """
    if seed == victim:
        os.kill(os.getpid(), signal.SIGKILL)
    if seed == victim - 1:
        time.sleep(0.5)
    return seed


def record_seed_trial(*, seed: int = 0) -> int:
    return seed


DRAW = trial_ref(draw_trial)


def _draw_specs(count: int, base_seed: int = 7) -> list:
    return [
        TrialSpec(
            experiment_id="T",
            trial=DRAW,
            params={"rounds": 5},
            seed=seed,
        )
        for seed in stream_seeds(base_seed, count)
    ]


class TestTrialRef:
    def test_roundtrip(self):
        assert resolve_trial(trial_ref(draw_trial)) is draw_trial

    def test_rejects_nested_functions(self):
        def nested(*, seed=0):
            return seed

        with pytest.raises(ExperimentError):
            trial_ref(nested)

    def test_rejects_malformed_reference(self):
        with pytest.raises(ExperimentError):
            resolve_trial("no-colon")
        with pytest.raises(ExperimentError):
            resolve_trial("nonexistent_module_xyz:fn")


class TestDeterminism:
    def test_parallel_matches_serial(self):
        specs = _draw_specs(8)
        serial = run_trials(specs, jobs=1)
        parallel = run_trials(specs, jobs=4)
        assert [r.value for r in serial] == [r.value for r in parallel]

    def test_results_in_spec_order_despite_completion_order(self):
        specs = [
            TrialSpec("T", trial_ref(slow_when_even_trial),
                      {"index": i}, seed=i)
            for i in range(6)
        ]
        outcomes = run_trials(specs, jobs=3)
        assert [o.value for o in outcomes] == [
            i * 1000 + i for i in range(6)
        ]

    def test_repeated_invocations_identical(self):
        specs = _draw_specs(4)
        first = run_trials(specs, jobs=2)
        second = run_trials(specs, jobs=2)
        assert [r.value for r in first] == [r.value for r in second]


class TestSeedDerivation:
    def test_stream_seeds_never_collide(self):
        seeds = list(stream_seeds(1, 20_000))
        assert len(set(seeds)) == len(seeds)

    def test_grid_substreams_never_collide(self):
        # The experiment pattern: substream(substream(seed, i), j)
        # across a (sizes x graphs) grid, for several base seeds.
        derived = [
            substream(substream(base, i), j)
            for base in range(1, 19)
            for i in range(32)
            for j in range(32)
        ]
        assert len(set(derived)) == len(derived)

    def test_sibling_experiments_get_distinct_seeds(self):
        a = set(stream_seeds(1, 1000))
        b = set(stream_seeds(2, 1000))
        assert not (a & b)


class TestFailures:
    def _failing_specs(self):
        reference = trial_ref(failing_trial)
        return [
            TrialSpec("T", reference, {"threshold": 2}, seed=seed)
            for seed in range(4)
        ]

    def test_serial_failure_carries_spec(self):
        with pytest.raises(TrialExecutionError) as info:
            run_trials(self._failing_specs(), jobs=1)
        assert info.value.spec.seed == 2
        assert info.value.spec.params["threshold"] == 2
        assert "ValueError" in str(info.value)

    def test_parallel_failure_carries_spec(self):
        with pytest.raises(TrialExecutionError) as info:
            run_trials(self._failing_specs(), jobs=2)
        assert info.value.spec.seed >= 2
        assert info.value.spec.trial == trial_ref(failing_trial)

    def test_rejects_nonpositive_jobs(self):
        with pytest.raises(ExperimentError):
            run_trials(_draw_specs(2), jobs=0)


class TestWriteBackOnFailure:
    """Regression: a failure must not discard finished trials.

    ``store.put`` used to run only after the whole batch returned, so
    one bad trial threw away every completed miss and the post-fix
    re-run recomputed all of them.
    """

    def _specs(self, threshold: int, count: int):
        reference = trial_ref(failing_trial)
        return [
            TrialSpec("T", reference, {"threshold": threshold},
                      seed=seed)
            for seed in range(count)
        ]

    def test_serial_failure_keeps_completed_prefix(self, tmp_path):
        store = ResultStore(tmp_path)
        specs = self._specs(threshold=3, count=5)
        with pytest.raises(TrialExecutionError):
            run_trials(specs, jobs=1, store=store)
        # Trials 0..2 completed before trial 3 raised; they must be
        # on disk already.
        for spec in specs[:3]:
            assert spec in store
        rerun = run_trials(specs[:3], jobs=1, store=store)
        assert all(result.from_cache for result in rerun)
        assert [result.value for result in rerun] == [0, 1, 2]

    def test_parallel_failure_keeps_completed_work(self, tmp_path):
        store = ResultStore(tmp_path)
        specs = self._specs(threshold=6, count=8)
        with pytest.raises(TrialExecutionError):
            run_trials(specs, jobs=2, store=store)
        # Completion order is nondeterministic under the pool, but the
        # passing trials vastly outnumber the failing ones and at
        # least one must have finished before the raise propagated.
        written = [spec for spec in specs[:6] if spec in store]
        assert written, "no completed trial was written back"
        rerun = run_trials(written, jobs=1, store=store)
        assert all(result.from_cache for result in rerun)


class TestWorkerDeathAttribution:
    """Regression: a dead worker must be pinned to the right spec.

    ``BrokenProcessPool`` poisons every in-flight future identically,
    and the first poisoned future is usually an innocent bystander
    (the test pins that: the innocent sleeps, so it is in flight when
    the killer dies and *its* future fails first).
    """

    def test_worker_death_names_the_killer(self):
        reference = trial_ref(kill_self_trial)
        specs = [
            TrialSpec("T", reference, {"victim": 5}, seed=seed)
            for seed in range(6)
        ]
        with pytest.raises(TrialExecutionError) as info:
            run_trials(specs, jobs=2)
        assert info.value.spec.seed == 5
        assert "worker process died" in str(info.value)

    def test_innocent_suspects_are_completed_by_probe(self, tmp_path):
        store = ResultStore(tmp_path)
        reference = trial_ref(kill_self_trial)
        specs = [
            TrialSpec("T", reference, {"victim": 5}, seed=seed)
            for seed in range(6)
        ]
        with pytest.raises(TrialExecutionError) as info:
            run_trials(specs, jobs=2, store=store)
        assert info.value.spec.seed == 5
        # The sleeping innocent (seed 4) was in flight when the worker
        # died; the isolated probe completed it and wrote it back.
        assert specs[4] in store


class _RecordingPool:
    """ThreadPool-backed stand-in that records the in-flight watermark.

    Threads keep ``os.kill``-free trials honest while letting the test
    observe submissions without pickling anything.
    """

    max_observed = 0

    def __init__(self, max_workers=None, initializer=None,
                 initargs=()):
        from concurrent.futures import ThreadPoolExecutor

        type(self).max_observed = 0
        self._outstanding = 0
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers,
            initializer=initializer,
            initargs=initargs,
        )

    def submit(self, fn, *args):
        self._outstanding += 1
        type(self).max_observed = max(
            type(self).max_observed, self._outstanding
        )

        def tracked():
            try:
                return fn(*args)
            finally:
                self._outstanding -= 1

        return self._pool.submit(tracked)

    def shutdown(self, wait=True):
        self._pool.shutdown(wait=wait)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.shutdown()
        return False


class TestBoundedSubmission:
    """Submission is windowed; the window never changes any value."""

    def test_window_caps_in_flight_submissions(self, monkeypatch):
        import repro.runner.executor as executor_module

        monkeypatch.setattr(
            executor_module, "ProcessPoolExecutor", _RecordingPool
        )
        specs = _draw_specs(20)
        results = run_trials(specs, jobs=2, max_inflight=3)
        assert _RecordingPool.max_observed <= 3
        serial = run_trials(specs, jobs=1)
        assert [r.value for r in results] == [r.value for r in serial]

    def test_default_window_scales_with_workers(self, monkeypatch):
        import repro.runner.executor as executor_module

        monkeypatch.setattr(
            executor_module, "ProcessPoolExecutor", _RecordingPool
        )
        specs = _draw_specs(40)
        run_trials(specs, jobs=2)
        assert _RecordingPool.max_observed <= 8  # 4 per worker

    def test_windowed_output_bit_identical_with_processes(self):
        specs = _draw_specs(12)
        serial = run_trials(specs, jobs=1)
        windowed = run_trials(specs, jobs=3, max_inflight=2)
        assert [r.value for r in windowed] == [r.value for r in serial]

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ExperimentError):
            run_trials(_draw_specs(2), jobs=2, max_inflight=0)


class TestSearchCostTrialEquivalence:
    """The runner path reproduces the legacy in-process loop exactly."""

    def test_named_portfolio_matches_factory_dict(self):
        from repro.core.families import MoriFamily
        from repro.core.searchability import measure_search_cost
        from repro.core.trials import portfolio_factories

        family = MoriFamily(p=0.5, m=1)
        legacy = measure_search_cost(
            family, 60, portfolio_factories("high-degree"),
            num_graphs=2, runs_per_graph=2, seed=5,
        )
        runner = measure_search_cost(
            family, 60, "high-degree",
            num_graphs=2, runs_per_graph=2, seed=5,
        )
        assert legacy.results == runner.results
        assert legacy.summaries == runner.summaries

    def test_scaling_validates_on_runner_path(self):
        from repro.core.families import MoriFamily
        from repro.core.searchability import measure_scaling

        family = MoriFamily(p=0.5, m=1)
        with pytest.raises(ExperimentError, match="start_rule"):
            measure_scaling(
                family, (60, 120), "high-degree",
                num_graphs=2, runs_per_graph=1, seed=5,
                start_rule="typo",
            )
        with pytest.raises(ExperimentError, match="num_graphs"):
            measure_scaling(
                family, (60, 120), "high-degree",
                num_graphs=0, runs_per_graph=1, seed=5,
            )

    def test_trial_rejects_unknown_start_rule(self):
        from repro.core.trials import search_cost_graph_trial

        with pytest.raises(ExperimentError, match="start_rule"):
            search_cost_graph_trial(
                family={"model": "mori", "p": 0.5, "m": 1},
                size=40,
                portfolio="high-degree",
                runs_per_graph=1,
                start_rule="typo",
                seed=1,
            )

    def test_factory_dict_rejects_jobs(self):
        from repro.core.families import MoriFamily
        from repro.core.searchability import measure_search_cost
        from repro.core.trials import portfolio_factories

        with pytest.raises(ExperimentError):
            measure_search_cost(
                MoriFamily(p=0.5, m=1), 60,
                portfolio_factories("high-degree"),
                num_graphs=2, runs_per_graph=1, seed=5, jobs=2,
            )

    @pytest.mark.slow
    def test_scaling_sweep_parallel_matches_serial(self):
        from repro.core.families import MoriFamily
        from repro.core.searchability import measure_scaling

        family = MoriFamily(p=0.5, m=1)
        kwargs = dict(
            num_graphs=2, runs_per_graph=1, seed=5, experiment_id="T",
        )
        serial = measure_scaling(
            family, (60, 120), "weak-omniscient", jobs=1, **kwargs
        )
        parallel = measure_scaling(
            family, (60, 120), "weak-omniscient", jobs=4, **kwargs
        )
        for size in serial.sizes:
            assert (
                serial.cells[size].summaries
                == parallel.cells[size].summaries
            )
            assert (
                serial.cells[size].results
                == parallel.cells[size].results
            )

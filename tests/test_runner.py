"""Tests for the parallel trial-execution engine (`repro.runner`).

The properties that make the runner safe to put under every
experiment: parallel output is bit-identical to serial, per-trial seed
derivation never collides across a grid, results come back in spec
order regardless of completion order, and worker failures surface with
the failing spec attached.
"""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.rng import make_rng, stream_seeds, substream
from repro.runner import (
    TrialExecutionError,
    TrialSpec,
    resolve_trial,
    run_trials,
    trial_ref,
)


def draw_trial(*, rounds: int, seed: int = 0) -> dict:
    """A tiny pure trial: a few RNG draws, pure in (rounds, seed)."""
    rng = make_rng(seed)
    values = [rng.random() for _ in range(rounds)]
    return {"seed": seed, "first": values[0], "sum": sum(values)}


def slow_when_even_trial(*, index: int, seed: int = 0) -> int:
    """Finishes out of submission order under parallel execution."""
    import time

    if index % 2 == 0:
        time.sleep(0.05)
    return index * 1000 + seed


def failing_trial(*, threshold: int, seed: int = 0) -> int:
    if seed >= threshold:
        raise ValueError(f"seed {seed} over threshold {threshold}")
    return seed


DRAW = trial_ref(draw_trial)


def _draw_specs(count: int, base_seed: int = 7) -> list:
    return [
        TrialSpec(
            experiment_id="T",
            trial=DRAW,
            params={"rounds": 5},
            seed=seed,
        )
        for seed in stream_seeds(base_seed, count)
    ]


class TestTrialRef:
    def test_roundtrip(self):
        assert resolve_trial(trial_ref(draw_trial)) is draw_trial

    def test_rejects_nested_functions(self):
        def nested(*, seed=0):
            return seed

        with pytest.raises(ExperimentError):
            trial_ref(nested)

    def test_rejects_malformed_reference(self):
        with pytest.raises(ExperimentError):
            resolve_trial("no-colon")
        with pytest.raises(ExperimentError):
            resolve_trial("nonexistent_module_xyz:fn")


class TestDeterminism:
    def test_parallel_matches_serial(self):
        specs = _draw_specs(8)
        serial = run_trials(specs, jobs=1)
        parallel = run_trials(specs, jobs=4)
        assert [r.value for r in serial] == [r.value for r in parallel]

    def test_results_in_spec_order_despite_completion_order(self):
        specs = [
            TrialSpec("T", trial_ref(slow_when_even_trial),
                      {"index": i}, seed=i)
            for i in range(6)
        ]
        outcomes = run_trials(specs, jobs=3)
        assert [o.value for o in outcomes] == [
            i * 1000 + i for i in range(6)
        ]

    def test_repeated_invocations_identical(self):
        specs = _draw_specs(4)
        first = run_trials(specs, jobs=2)
        second = run_trials(specs, jobs=2)
        assert [r.value for r in first] == [r.value for r in second]


class TestSeedDerivation:
    def test_stream_seeds_never_collide(self):
        seeds = list(stream_seeds(1, 20_000))
        assert len(set(seeds)) == len(seeds)

    def test_grid_substreams_never_collide(self):
        # The experiment pattern: substream(substream(seed, i), j)
        # across a (sizes x graphs) grid, for several base seeds.
        derived = [
            substream(substream(base, i), j)
            for base in range(1, 19)
            for i in range(32)
            for j in range(32)
        ]
        assert len(set(derived)) == len(derived)

    def test_sibling_experiments_get_distinct_seeds(self):
        a = set(stream_seeds(1, 1000))
        b = set(stream_seeds(2, 1000))
        assert not (a & b)


class TestFailures:
    def _failing_specs(self):
        reference = trial_ref(failing_trial)
        return [
            TrialSpec("T", reference, {"threshold": 2}, seed=seed)
            for seed in range(4)
        ]

    def test_serial_failure_carries_spec(self):
        with pytest.raises(TrialExecutionError) as info:
            run_trials(self._failing_specs(), jobs=1)
        assert info.value.spec.seed == 2
        assert info.value.spec.params["threshold"] == 2
        assert "ValueError" in str(info.value)

    def test_parallel_failure_carries_spec(self):
        with pytest.raises(TrialExecutionError) as info:
            run_trials(self._failing_specs(), jobs=2)
        assert info.value.spec.seed >= 2
        assert info.value.spec.trial == trial_ref(failing_trial)

    def test_rejects_nonpositive_jobs(self):
        with pytest.raises(ExperimentError):
            run_trials(_draw_specs(2), jobs=0)


class TestSearchCostTrialEquivalence:
    """The runner path reproduces the legacy in-process loop exactly."""

    def test_named_portfolio_matches_factory_dict(self):
        from repro.core.families import MoriFamily
        from repro.core.searchability import measure_search_cost
        from repro.core.trials import portfolio_factories

        family = MoriFamily(p=0.5, m=1)
        legacy = measure_search_cost(
            family, 60, portfolio_factories("high-degree"),
            num_graphs=2, runs_per_graph=2, seed=5,
        )
        runner = measure_search_cost(
            family, 60, "high-degree",
            num_graphs=2, runs_per_graph=2, seed=5,
        )
        assert legacy.results == runner.results
        assert legacy.summaries == runner.summaries

    def test_scaling_validates_on_runner_path(self):
        from repro.core.families import MoriFamily
        from repro.core.searchability import measure_scaling

        family = MoriFamily(p=0.5, m=1)
        with pytest.raises(ExperimentError, match="start_rule"):
            measure_scaling(
                family, (60, 120), "high-degree",
                num_graphs=2, runs_per_graph=1, seed=5,
                start_rule="typo",
            )
        with pytest.raises(ExperimentError, match="num_graphs"):
            measure_scaling(
                family, (60, 120), "high-degree",
                num_graphs=0, runs_per_graph=1, seed=5,
            )

    def test_trial_rejects_unknown_start_rule(self):
        from repro.core.trials import search_cost_graph_trial

        with pytest.raises(ExperimentError, match="start_rule"):
            search_cost_graph_trial(
                family={"model": "mori", "p": 0.5, "m": 1},
                size=40,
                portfolio="high-degree",
                runs_per_graph=1,
                start_rule="typo",
                seed=1,
            )

    def test_factory_dict_rejects_jobs(self):
        from repro.core.families import MoriFamily
        from repro.core.searchability import measure_search_cost
        from repro.core.trials import portfolio_factories

        with pytest.raises(ExperimentError):
            measure_search_cost(
                MoriFamily(p=0.5, m=1), 60,
                portfolio_factories("high-degree"),
                num_graphs=2, runs_per_graph=1, seed=5, jobs=2,
            )

    @pytest.mark.slow
    def test_scaling_sweep_parallel_matches_serial(self):
        from repro.core.families import MoriFamily
        from repro.core.searchability import measure_scaling

        family = MoriFamily(p=0.5, m=1)
        kwargs = dict(
            num_graphs=2, runs_per_graph=1, seed=5, experiment_id="T",
        )
        serial = measure_scaling(
            family, (60, 120), "weak-omniscient", jobs=1, **kwargs
        )
        parallel = measure_scaling(
            family, (60, 120), "weak-omniscient", jobs=4, **kwargs
        )
        for size in serial.sizes:
            assert (
                serial.cells[size].summaries
                == parallel.cells[size].summaries
            )
            assert (
                serial.cells[size].results
                == parallel.cells[size].results
            )

"""Determinism and invariance battery for the churn layer.

:class:`~repro.graphs.churn.ChurnProcess` claims a churn trajectory is
a pure function of ``(family, base graph, churn parameters, seed)`` —
independent of ``--jobs`` fan-out, of the search engine, and of the
``resnapshot_every`` compaction cadence (rank-based Fenwick sampling
draws "the j-th survivor", never "id j", so order-preserving
relabeling cannot change a draw).  This battery pins those claims:
golden digests of churned graphs, compaction-invariance across
cadences for every model, family-faithful join arity, serial-vs-
ensemble and jobs=1-vs-jobs=2 equality of whole churn trials, and the
E21/E22 registry surface.  The Fenwick membership tree itself is
checked against a naive reference under random operation sequences.
"""

from __future__ import annotations

import random

import pytest

from repro.core.families import (
    BarabasiAlbertFamily,
    ConfigurationFamily,
    CooperFriezeFamily,
    MoriFamily,
)
from repro.core.trials import (
    churn_search_trial,
    churn_survival_trial,
    family_spec,
)
from repro.errors import InvalidParameterError
from repro.graphs.churn import CHURN_BIASES, ChurnProcess
from repro.graphs.delta import graph_digest
from repro.graphs.frozen import HAVE_NUMPY
from repro.graphs.sampling import FenwickFlags

needs_numpy = pytest.mark.skipif(
    not HAVE_NUMPY, reason="ensemble engine requires numpy"
)

#: (key, family, base size) — every family with a churn join rule.
FAMILIES = (
    ("mori", MoriFamily(p=0.5, m=2), 120),
    ("cooper-frieze", CooperFriezeFamily(), 100),
    ("ba", BarabasiAlbertFamily(m=2), 120),
    ("config", ConfigurationFamily(exponent=2.5), 120),
)


def family_by_key(key: str):
    for name, family, size in FAMILIES:
        if name == key:
            return family, size
    raise AssertionError(key)


class TestFenwickFlags:
    def test_matches_naive_reference_under_random_ops(self):
        rng = random.Random(17)
        tree = FenwickFlags(0)
        flags: list = []
        for _ in range(600):
            action = rng.random()
            if action < 0.4 or not flags:
                flag = rng.random() < 0.7
                tree.append(flag)
                flags.append(flag)
            elif action < 0.6:
                position = rng.randrange(len(flags))
                tree.set(position)
                flags[position] = True
            elif action < 0.8:
                position = rng.randrange(len(flags))
                tree.clear(position)
                flags[position] = False
            else:
                alive = [i for i, f in enumerate(flags) if f]
                assert tree.count == len(alive)
                for rank, position in enumerate(alive):
                    assert tree.select(rank) == position
        alive = [i for i, f in enumerate(flags) if f]
        assert tree.count == len(alive)
        assert [tree.select(r) for r in range(len(alive))] == alive

    def test_initially_set_constructor(self):
        tree = FenwickFlags(5)
        assert tree.count == 5
        assert [tree.select(r) for r in range(5)] == [0, 1, 2, 3, 4]

    def test_set_and_clear_are_idempotent(self):
        tree = FenwickFlags(3)
        tree.clear(1)
        tree.clear(1)
        assert tree.count == 2
        tree.set(1)
        tree.set(1)
        assert tree.count == 3


class TestChurnDeterminism:
    def test_golden_digests(self):
        """The exact churned graph, pinned: any change to the sampling
        order, the join rules, or the rng layering shows up here."""
        family = MoriFamily(p=0.5, m=2)
        base = family.build_frozen(120, seed=5)
        digests = {}
        for bias in CHURN_BIASES:
            process = ChurnProcess(family, base, churn_bias=bias, seed=9)
            digests[bias] = graph_digest(process.run(30).resnapshot())
        assert digests == {
            "uniform": (
                "760b5781dd7e7d58e14dd63f0de94eaa"
                "826aa2deb1d9d003abc8f9d0bf6b0091"
            ),
            "degree": (
                "c48c402b4cc24b1a6f69de1e66fca080"
                "d674a970ca257899188770194bf11d04"
            ),
        }

    def test_replay_is_exact_and_seed_sensitive(self):
        family = BarabasiAlbertFamily(m=2)
        base = family.build_frozen(100, seed=3)

        def digest(seed):
            process = ChurnProcess(
                family, base, churn_bias="uniform", seed=seed
            )
            return graph_digest(process.run(20).resnapshot())

        assert digest(1) == digest(1)
        assert digest(1) != digest(2)

    @pytest.mark.parametrize("key", [name for name, _, _ in FAMILIES])
    @pytest.mark.parametrize("bias", CHURN_BIASES)
    def test_compaction_invariance(self, key, bias):
        """resnapshot_every is purely an execution knob: every cadence
        must land on the identical surviving graph."""
        family, size = family_by_key(key)
        base = family.build_frozen(size, seed=4)
        digests = set()
        for every in (0, 3, 7):
            process = ChurnProcess(
                family,
                base,
                churn_bias=bias,
                resnapshot_every=every,
                seed=6,
            )
            digests.add(graph_digest(process.run(25).resnapshot()))
        assert len(digests) == 1

    def test_decay_compaction_invariance(self):
        family = MoriFamily(p=0.5, m=2)
        base = family.build_frozen(100, seed=8)
        digests = set()
        for every in (0, 4):
            process = ChurnProcess(
                family, base, churn_bias="degree",
                resnapshot_every=every, seed=2,
            )
            digests.add(
                graph_digest(process.run(60, decay=True).resnapshot())
            )
        assert len(digests) == 1


class TestChurnSemantics:
    @pytest.mark.parametrize("key", [name for name, _, _ in FAMILIES])
    def test_join_arity_follows_the_family(self, key):
        """Each join adds the family's own number of attachment edges."""
        family, size = family_by_key(key)
        base = family.build_frozen(size, seed=4)
        process = ChurnProcess(family, base, seed=1)
        expected_new_edges = {
            "mori": lambda: family.m,
            "ba": lambda: family.m,
            "config": lambda: family.min_degree,
        }.get(key)
        for _ in range(10):
            edges_before = process.num_edges
            live_before = process.num_live_vertices
            process.step()
            assert process.num_live_vertices == live_before
            if expected_new_edges is not None:
                # Population-preserving: the leave dropped some edges,
                # the join added exactly the family's arity.
                assert process.graph.degree(
                    process.graph.num_vertices
                ) == expected_new_edges()
            assert process.num_edges <= edges_before + max(
                expected_new_edges() if expected_new_edges else 10, 10
            )

    def test_population_held_by_step_and_shrunk_by_decay(self):
        family = MoriFamily(p=0.5, m=2)
        base = family.build_frozen(80, seed=1)
        process = ChurnProcess(family, base, seed=1)
        assert process.num_live_vertices == 80
        process.run(15)
        assert process.num_live_vertices == 80
        process.run(10, decay=True)
        assert process.num_live_vertices == 70
        assert process.steps_taken == 25

    def test_leave_refuses_last_vertex(self):
        family = MoriFamily(p=0.5, m=1)
        base = family.build_frozen(2, seed=1)
        process = ChurnProcess(family, base, seed=1)
        process.decay_step()
        with pytest.raises(InvalidParameterError):
            process.decay_step()

    def test_invalid_parameters_rejected(self):
        family = MoriFamily(p=0.5, m=1)
        base = family.build_frozen(10, seed=1)
        with pytest.raises(InvalidParameterError):
            ChurnProcess(family, base, churn_bias="oldest")
        with pytest.raises(InvalidParameterError):
            ChurnProcess(family, base, resnapshot_every=-1)
        with pytest.raises(InvalidParameterError):
            ChurnProcess(family, base, seed=1).run(-1)

    def test_many_steps_stay_in_substream_range(self):
        """Step counters beyond the 16-bit run-index field must keep
        drawing (the stream name blocks the counter)."""
        family = MoriFamily(p=0.5, m=1)
        base = family.build_frozen(4, seed=1)
        process = ChurnProcess(family, base, seed=1)
        process._steps_taken = (1 << 16) + 5  # deep into block 1
        process.step()  # must not raise InvalidParameterError
        assert process.steps_taken == (1 << 16) + 6


class TestChurnTrials:
    def trial_kwargs(self, **overrides):
        kwargs = {
            "family": family_spec(MoriFamily(p=0.5, m=2)),
            "size": 100,
            "portfolio": "weak",
            "churn_rate": 0.15,
            "churn_bias": "uniform",
            "runs_per_graph": 2,
            "budget": 300,
            "seed": 12,
        }
        kwargs.update(overrides)
        return kwargs

    def test_trial_shape_and_population(self):
        outcome = churn_search_trial(**self.trial_kwargs())
        assert outcome["steps"] == 15
        assert outcome["live_vertices"] == 100
        assert outcome["start"] != outcome["target"]
        for results in outcome["results"].values():
            assert len(results) == 2

    @needs_numpy
    def test_serial_and_ensemble_engines_identical(self):
        serial = churn_search_trial(**self.trial_kwargs(engine="serial"))
        ensemble = churn_search_trial(
            **self.trial_kwargs(engine="ensemble")
        )
        assert serial == ensemble

    def test_degree_bias_changes_the_trial(self):
        uniform = churn_search_trial(**self.trial_kwargs())
        degree = churn_search_trial(
            **self.trial_kwargs(churn_bias="degree")
        )
        assert uniform != degree

    def test_survival_trial_checkpoints(self):
        outcome = churn_survival_trial(
            family=family_spec(MoriFamily(p=0.5, m=2)),
            size=120,
            remove_fractions=[0.1, 0.5, 0.9],
            churn_bias="uniform",
            seed=7,
        )
        checkpoints = outcome["checkpoints"]
        assert [c["fraction"] for c in checkpoints] == [0.1, 0.5, 0.9]
        lives = [c["live_vertices"] for c in checkpoints]
        assert lives == sorted(lives, reverse=True)
        for checkpoint in checkpoints:
            assert 1 <= checkpoint["giant"] <= checkpoint["live_vertices"]

    def test_survival_trial_rejects_bad_fractions(self):
        from repro.errors import ExperimentError

        spec = family_spec(MoriFamily(p=0.5, m=2))
        with pytest.raises(ExperimentError):
            churn_survival_trial(
                family=spec, size=50, remove_fractions=[0.5, 0.1]
            )
        with pytest.raises(ExperimentError):
            churn_survival_trial(
                family=spec, size=50, remove_fractions=[1.5]
            )

    def test_degree_decay_shatters_faster_than_uniform(self):
        """The paper-level sanity check behind E22: hub-first decay
        collapses the giant component at far smaller removed
        fractions (scale-free robustness/fragility)."""
        spec = family_spec(MoriFamily(p=0.5, m=2))
        giants = {}
        for bias in CHURN_BIASES:
            outcome = churn_survival_trial(
                family=spec,
                size=300,
                remove_fractions=[0.6],
                churn_bias=bias,
                seed=3,
            )
            checkpoint = outcome["checkpoints"][0]
            giants[bias] = (
                checkpoint["giant"] / checkpoint["live_vertices"]
            )
        assert giants["degree"] < giants["uniform"]


class TestChurnExperiments:
    E21_KWARGS = {
        "size": 80,
        "churn_rates": (0.0, 0.2),
        "num_graphs": 2,
        "runs_per_graph": 1,
    }

    def test_e21_and_e22_registered_with_capabilities(self):
        from repro.core.registry import REGISTRY

        assert "E21" in REGISTRY.ids()
        assert "E22" in REGISTRY.ids()
        e21 = REGISTRY.get("E21")
        assert set(e21.capabilities) == {
            "jobs", "cache", "backend", "engine", "generator", "store",
        }
        for name in (
            "churn_rates", "churn_bias", "resnapshot_every",
        ):
            assert name in e21.param_names
        e22 = REGISTRY.get("E22")
        # E22 runs no searches, so it does not declare the engine axis.
        assert "engine" not in e22.capabilities
        assert "remove_fractions" in e22.param_names

    def test_e21_identical_across_jobs(self):
        from repro.core.experiments import e21_churn_search

        solo = e21_churn_search(**self.E21_KWARGS, jobs=1)
        fanned = e21_churn_search(**self.E21_KWARGS, jobs=2)
        assert solo.derived == fanned.derived
        assert solo.tables == fanned.tables

    @needs_numpy
    def test_e21_identical_across_engines(self):
        from repro.core.experiments import e21_churn_search

        serial = e21_churn_search(**self.E21_KWARGS, engine="serial")
        ensemble = e21_churn_search(
            **self.E21_KWARGS, engine="ensemble"
        )
        assert serial.derived == ensemble.derived
        assert serial.tables == ensemble.tables

    def test_e22_derived_surface(self):
        from repro.core.experiments import e22_giant_survival

        result = e22_giant_survival(
            size=80, remove_fractions=(0.2, 0.6), num_graphs=2
        )
        assert "bias_gap@mid" in result.derived
        for bias in CHURN_BIASES:
            for fraction in (0.2, 0.6):
                assert f"giant/{bias}@{fraction:g}" in result.derived

"""Smoke/shape tests for the named experiments and the CLI.

Experiments run on deliberately tiny grids here; the benchmark harness
exercises the paper-scale versions.  Shape assertions target the claims
each experiment exists to check (exponent floors, bound margins) with
tolerances loose enough to be seed-robust at these sizes.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core.experiments import (
    ALL_EXPERIMENTS,
    e1_mori_weak,
    e3_cooper_frieze,
    e4_event_probability,
    e5_max_degree,
    e6_degree_distribution,
    e8_kleinberg,
    e9_diameter_vs_search,
    e10_equivalence_exact,
    e11_lemma1_floor,
    e12_percolation,
    e13_ablation_p,
)


class TestExperimentRegistry:
    def test_all_eighteen_registered(self):
        assert len(ALL_EXPERIMENTS) == 18
        assert set(ALL_EXPERIMENTS) == {
            f"E{i}" for i in range(1, 19)
        }

    def test_all_have_docstrings(self):
        for function in ALL_EXPERIMENTS.values():
            assert function.__doc__


class TestE1:
    def test_shape(self):
        result = e1_mori_weak(
            sizes=(60, 120, 240), num_graphs=2, runs_per_graph=1, seed=1
        )
        assert result.experiment_id == "E1"
        assert result.tables
        # Every algorithm present with a fitted exponent.
        exponents = {
            k: v
            for k, v in result.derived.items()
            if k.startswith("exponent/")
        }
        assert len(exponents) == 9  # 8-member portfolio + omniscient
        assert result.derived["floor@largest"] > 0


class TestE3:
    def test_shape(self):
        result = e3_cooper_frieze(
            sizes=(60, 120), num_graphs=2, runs_per_graph=1, seed=3
        )
        assert result.experiment_id == "E3"
        assert any(
            k.startswith("exponent/") for k in result.derived
        )


class TestE4:
    def test_bound_never_violated(self):
        result = e4_event_probability(
            a_values=(10, 40), p_values=(0.25, 0.75), num_samples=300,
            seed=4,
        )
        # Lemma 3 is a theorem: the exact margin must be non-negative.
        assert result.derived["min_margin_exact_minus_bound"] >= 0


class TestE5:
    def test_exponent_ordering(self):
        result = e5_max_degree(
            n=3000, p_values=(0.25, 0.75), num_trees=3, seed=5
        )
        low = result.derived["mori_exponent/p=0.25"]
        high = result.derived["mori_exponent/p=0.75"]
        # Max-degree growth increases with p.
        assert low < high
        # And BA sits near 1/2.
        assert 0.3 < result.derived["ba_exponent"] < 0.7


class TestE6:
    def test_scale_free_vs_lattice(self):
        result = e6_degree_distribution(n=3000, seed=6)
        ba_exp = result.derived["exponent/ba(m=2)"]
        assert 1.5 < ba_exp < 4.0
        kleinberg_keys = [
            k for k in result.derived if "kleinberg" in k and "exponent" in k
        ]
        assert kleinberg_keys
        # Kleinberg's concentrated degrees produce a huge fitted
        # exponent (no heavy tail).
        assert result.derived[kleinberg_keys[0]] > 4.0


class TestE8:
    def test_navigability_crossover(self):
        result = e8_kleinberg(
            sides=(8, 12, 18), r_values=(0.0, 2.0, 4.0),
            pairs_per_grid=10, seed=8,
        )
        e0 = result.derived["exponent/r=0"]
        e2 = result.derived["exponent/r=2"]
        e4 = result.derived["exponent/r=4"]
        # r=2 grows slowest (poly-log => smallest fitted exponent).
        assert e2 < e0
        assert e2 < e4


class TestE9:
    def test_contrast(self):
        result = e9_diameter_vs_search(
            sizes=(100, 200, 400), num_graphs=2, seed=9
        )
        assert result.derived["diameter_log_r2"] > 0.5
        assert result.derived["search_cost_exponent"] > 0.3


class TestE10:
    def test_exact_lemma2(self):
        result = e10_equivalence_exact(n=6, p_values=(0.5, 1.0))
        assert result.derived["all_windows_hold"] == 1.0


class TestE11:
    def test_floor_respected(self):
        result = e11_lemma1_floor(
            sizes=(100, 200), num_graphs=3, runs_per_graph=1, seed=11
        )
        # Lemma 1 is a theorem; sampled means can fluctuate below the
        # floor only via Monte-Carlo noise, so allow a small slack.
        assert result.derived["min_ratio"] > 0.5


class TestE12:
    def test_replication_helps(self):
        result = e12_percolation(
            n=800,
            replica_counts=(0, 32),
            num_queries=12,
            seed=12,
        )
        assert (
            result.derived["hit_rate/replicas=32"]
            >= result.derived["hit_rate/replicas=0"]
        )


class TestE13:
    def test_runs_across_p(self):
        result = e13_ablation_p(
            sizes=(60, 120), p_values=(0.0, 1.0), num_graphs=2, seed=13
        )
        assert "exponent/p=0" in result.derived
        assert "exponent/p=1" in result.derived


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out
        assert "E14" in out

    def test_unknown_experiment(self, capsys):
        assert main(["run", "E99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_e10_with_json(self, tmp_path, capsys):
        json_path = tmp_path / "e10.json"
        assert main(["run", "e10", "--json", str(json_path)]) == 0
        out = capsys.readouterr().out
        assert "E10" in out
        data = json.loads(json_path.read_text())
        assert data["experiment_id"] == "E10"

    def test_run_e4_quick_with_seed_override(self, capsys):
        assert main(["run", "E4", "--quick", "--seed", "99"]) == 0
        out = capsys.readouterr().out
        assert "seed=99" in out

    def test_quick_overrides_cover_all_experiments(self):
        from repro.cli import QUICK_OVERRIDES

        assert set(QUICK_OVERRIDES) == set(ALL_EXPERIMENTS)

    def test_seed_passthrough_to_runner_dispatched_experiment(
        self, capsys
    ):
        # E17 is dispatched through repro.runner; the seed override
        # must reach it (detected via inspect.signature, so wrapped
        # experiment functions keep working).
        assert main(
            ["run", "E17", "--quick", "--seed", "123", "--jobs", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "seed=123" in out

    def test_seed_detection_survives_wrappers(self, monkeypatch):
        import functools

        from repro import cli
        from repro.core.experiments import e17_simulation_slowdown

        captured = {}

        @functools.wraps(e17_simulation_slowdown)
        def wrapped(**kwargs):
            captured.update(kwargs)
            return e17_simulation_slowdown(**kwargs)

        monkeypatch.setitem(cli.ALL_EXPERIMENTS, "E17", wrapped)
        # functools.wraps copies __wrapped__, not __code__: the old
        # co_varnames peek would have seen only (args, kwargs) here
        # and silently dropped the seed.
        assert cli.main(["run", "E17", "--quick", "--seed", "77"]) == 0
        assert captured["seed"] == 77


class TestE15:
    def test_window_probability_positive(self):
        from repro.core.experiments import e15_cf_equivalence

        result = e15_cf_equivalence(
            sizes=(60, 120), num_samples=100, seed=15
        )
        assert result.derived["min_p_untouched"] > 0.2
        assert result.derived["profile_spread"] >= 0.0


class TestE16:
    def test_evolving_vs_pure(self):
        from repro.core.experiments import e16_neighbor_dependence

        result = e16_neighbor_dependence(n=1500, seed=16)
        for name in (
            "mori(p=0.5, m=2)",
            "cooper-frieze(a=0.75)",
            "ba(m=2)",
        ):
            assert result.derived[f"age_corr/{name}"] < -0.1
        assert abs(result.derived["age_corr/config(k=2.5)"]) < 0.1


class TestE17:
    def test_simulation_inequality(self):
        from repro.core.experiments import e17_simulation_slowdown

        result = e17_simulation_slowdown(
            sizes=(100, 200), num_graphs=2, seed=17
        )
        assert result.derived["worst_ratio"] <= 1.0


class TestCLIPlot:
    def test_plot_flag_renders_ascii(self, capsys):
        from repro.cli import main

        assert main(["run", "E1", "--quick", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "log-log" in out


class TestCLICompare:
    def test_compare_roundtrip_matches(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "e10.json"
        assert main(["run", "E10", "--quick", "--json", str(path)]) == 0
        capsys.readouterr()
        assert main(["compare", str(path), str(path)]) == 0
        assert "MATCH" in capsys.readouterr().out

    def test_compare_flags_divergence(self, tmp_path, capsys):
        import json

        from repro.cli import main

        path_a = tmp_path / "a.json"
        assert main(
            ["run", "E10", "--quick", "--json", str(path_a)]
        ) == 0
        data = json.loads(path_a.read_text())
        data["derived"]["all_windows_hold"] = 0.0
        path_b = tmp_path / "b.json"
        path_b.write_text(json.dumps(data))
        capsys.readouterr()
        assert main(["compare", str(path_a), str(path_b)]) == 1
        out = capsys.readouterr().out
        assert "metric" in out


class TestE18:
    def test_start_rules_all_measured(self):
        from repro.core.experiments import e18_start_rule

        result = e18_start_rule(
            sizes=(60, 120), num_graphs=2, runs_per_graph=1, seed=18
        )
        for rule in ("default", "random", "newest-other"):
            assert f"exponent/start={rule}" in result.derived


class TestCLIRunAll:
    @pytest.mark.slow
    def test_run_all_quick_with_json_dir(self, tmp_path, capsys):
        import os

        json_dir = tmp_path / "records"
        assert (
            main(
                [
                    "run",
                    "all",
                    "--quick",
                    "--json-dir",
                    str(json_dir),
                ]
            )
            == 0
        )
        written = sorted(os.listdir(json_dir))
        assert written == sorted(
            f"e{i}.json" for i in range(1, 19)
        )
        out = capsys.readouterr().out
        for i in range(1, 19):
            assert f"E{i}:" in out

"""Smoke/shape tests for the named experiments and the CLI.

Experiments run on deliberately tiny grids here; the benchmark harness
exercises the paper-scale versions.  Shape assertions target the claims
each experiment exists to check (exponent floors, bound margins) with
tolerances loose enough to be seed-robust at these sizes.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core.experiments import (
    ALL_EXPERIMENTS,
    e1_mori_weak,
    e3_cooper_frieze,
    e4_event_probability,
    e5_max_degree,
    e6_degree_distribution,
    e8_kleinberg,
    e9_diameter_vs_search,
    e10_equivalence_exact,
    e11_lemma1_floor,
    e12_percolation,
    e13_ablation_p,
)


class TestExperimentRegistry:
    def test_all_registered(self):
        assert len(ALL_EXPERIMENTS) == 22
        assert set(ALL_EXPERIMENTS) == {
            f"E{i}" for i in range(1, 23)
        }

    def test_wrappers_cover_the_registry(self):
        from repro.core.registry import REGISTRY

        assert REGISTRY.ids() == [f"E{i}" for i in range(1, 23)]
        assert set(ALL_EXPERIMENTS) == set(REGISTRY.ids())

    def test_all_have_docstrings(self):
        for function in ALL_EXPERIMENTS.values():
            assert function.__doc__


class TestE1:
    def test_shape(self):
        result = e1_mori_weak(
            sizes=(60, 120, 240), num_graphs=2, runs_per_graph=1, seed=1
        )
        assert result.experiment_id == "E1"
        assert result.tables
        # Every algorithm present with a fitted exponent.
        exponents = {
            k: v
            for k, v in result.derived.items()
            if k.startswith("exponent/")
        }
        assert len(exponents) == 9  # 8-member portfolio + omniscient
        assert result.derived["floor@largest"] > 0


class TestE3:
    def test_shape(self):
        result = e3_cooper_frieze(
            sizes=(60, 120), num_graphs=2, runs_per_graph=1, seed=3
        )
        assert result.experiment_id == "E3"
        assert any(
            k.startswith("exponent/") for k in result.derived
        )


class TestE4:
    def test_bound_never_violated(self):
        result = e4_event_probability(
            a_values=(10, 40), p_values=(0.25, 0.75), num_samples=300,
            seed=4,
        )
        # Lemma 3 is a theorem: the exact margin must be non-negative.
        assert result.derived["min_margin_exact_minus_bound"] >= 0


class TestE5:
    def test_exponent_ordering(self):
        result = e5_max_degree(
            n=3000, p_values=(0.25, 0.75), num_trees=3, seed=5
        )
        low = result.derived["mori_exponent/p=0.25"]
        high = result.derived["mori_exponent/p=0.75"]
        # Max-degree growth increases with p.
        assert low < high
        # And BA sits near 1/2.
        assert 0.3 < result.derived["ba_exponent"] < 0.7


class TestE6:
    def test_scale_free_vs_lattice(self):
        result = e6_degree_distribution(n=3000, seed=6)
        ba_exp = result.derived["exponent/ba(m=2)"]
        assert 1.5 < ba_exp < 4.0
        kleinberg_keys = [
            k for k in result.derived if "kleinberg" in k and "exponent" in k
        ]
        assert kleinberg_keys
        # Kleinberg's concentrated degrees produce a huge fitted
        # exponent (no heavy tail).
        assert result.derived[kleinberg_keys[0]] > 4.0


class TestE8:
    def test_navigability_crossover(self):
        result = e8_kleinberg(
            sides=(8, 12, 18), r_values=(0.0, 2.0, 4.0),
            pairs_per_grid=10, seed=8,
        )
        e0 = result.derived["exponent/r=0"]
        e2 = result.derived["exponent/r=2"]
        e4 = result.derived["exponent/r=4"]
        # r=2 grows slowest (poly-log => smallest fitted exponent).
        assert e2 < e0
        assert e2 < e4


class TestE9:
    def test_contrast(self):
        result = e9_diameter_vs_search(
            sizes=(100, 200, 400), num_graphs=2, seed=9
        )
        assert result.derived["diameter_log_r2"] > 0.5
        assert result.derived["search_cost_exponent"] > 0.3


class TestE10:
    def test_exact_lemma2(self):
        result = e10_equivalence_exact(n=6, p_values=(0.5, 1.0))
        assert result.derived["all_windows_hold"] == 1.0


class TestE11:
    def test_floor_respected(self):
        result = e11_lemma1_floor(
            sizes=(100, 200), num_graphs=3, runs_per_graph=1, seed=11
        )
        # Lemma 1 is a theorem; sampled means can fluctuate below the
        # floor only via Monte-Carlo noise, so allow a small slack.
        assert result.derived["min_ratio"] > 0.5


class TestE12:
    def test_replication_helps(self):
        result = e12_percolation(
            n=800,
            replica_counts=(0, 32),
            num_queries=12,
            seed=12,
        )
        assert (
            result.derived["hit_rate/replicas=32"]
            >= result.derived["hit_rate/replicas=0"]
        )


class TestE13:
    def test_runs_across_p(self):
        result = e13_ablation_p(
            sizes=(60, 120), p_values=(0.0, 1.0), num_graphs=2, seed=13
        )
        assert "exponent/p=0" in result.derived
        assert "exponent/p=1" in result.derived


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out
        assert "E14" in out

    def test_unknown_experiment(self, capsys):
        assert main(["run", "E99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_e10_with_json(self, tmp_path, capsys):
        json_path = tmp_path / "e10.json"
        assert main(["run", "e10", "--json", str(json_path)]) == 0
        out = capsys.readouterr().out
        assert "E10" in out
        data = json.loads(json_path.read_text())
        assert data["experiment_id"] == "E10"

    def test_run_e4_quick_with_seed_override(self, capsys):
        assert main(["run", "E4", "--quick", "--seed", "99"]) == 0
        out = capsys.readouterr().out
        assert "seed=99" in out

    def test_quick_overrides_cover_all_experiments(self):
        from repro.cli import QUICK_OVERRIDES

        assert set(QUICK_OVERRIDES) == set(ALL_EXPERIMENTS)

    def test_seed_passthrough_to_runner_dispatched_experiment(
        self, capsys
    ):
        # E17 is dispatched through repro.runner; the seed override
        # must reach it (detected via inspect.signature, so wrapped
        # experiment functions keep working).
        assert main(
            ["run", "E17", "--quick", "--seed", "123", "--jobs", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "seed=123" in out

    def test_ignored_runner_flags_warn_on_non_runner_experiment(
        self, capsys, tmp_path
    ):
        """E4 never consults --jobs/--cache-dir/--backend/--mode; the
        CLI must say so instead of letting the user believe results
        were cached or parallelised."""
        cache = str(tmp_path / "cache")
        assert main(
            [
                "run", "E4", "--quick",
                "--jobs", "4",
                "--cache-dir", cache,
                "--backend", "multigraph",
                "--mode", "trajectory",
            ]
        ) == 0
        err = capsys.readouterr().err
        assert "--jobs 4 has no effect on E4" in err
        assert f"--cache-dir {cache} has no effect on E4" in err
        assert "--backend multigraph has no effect on E4" in err
        assert "--mode trajectory has no effect on E4" in err
        assert err.count("warning:") == 4

    @pytest.mark.parametrize(
        "experiment_id", ("E5", "E8", "E10", "E12", "E15", "E16")
    )
    def test_every_non_runner_experiment_warns(
        self, experiment_id, capsys, tmp_path
    ):
        cache = str(tmp_path / "cache")
        assert main(
            [
                "run", experiment_id, "--quick",
                "--jobs", "2", "--cache-dir", cache,
            ]
        ) == 0
        err = capsys.readouterr().err
        assert f"has no effect on {experiment_id}" in err
        assert err.count("warning:") == 2

    def test_runner_experiment_flags_do_not_warn(
        self, capsys, tmp_path
    ):
        cache = str(tmp_path / "cache")
        assert main(
            [
                "run", "E17", "--quick",
                "--jobs", "2",
                "--cache-dir", cache,
                "--mode", "trajectory",
            ]
        ) == 0
        captured = capsys.readouterr()
        assert "warning:" not in captured.err
        assert "mode=trajectory" in captured.out

    def test_default_flags_never_warn(self, capsys):
        assert main(["run", "E4", "--quick"]) == 0
        assert "warning:" not in capsys.readouterr().err

    def test_runner_experiment_missing_only_one_knob_warns_precisely(
        self, capsys
    ):
        """E1 takes jobs but not mode: --jobs applies silently while
        --mode warns, and the message names the missing parameter
        rather than (wrongly) claiming E1 bypasses the runner."""
        assert main(
            ["run", "E1", "--quick", "--jobs", "2",
             "--mode", "trajectory"]
        ) == 0
        err = capsys.readouterr().err
        assert err.count("warning:") == 1
        assert "--mode trajectory has no effect on E1" in err
        assert "takes no 'mode' parameter" in err
        assert "--jobs" not in err

    def test_mode_passthrough_to_measure_scaling_experiment(
        self, capsys
    ):
        assert main(
            ["run", "E18", "--quick", "--mode", "trajectory"]
        ) == 0
        assert "mode=trajectory" in capsys.readouterr().out

    def test_seed_reaches_the_registered_body(self, monkeypatch):
        """--seed is resolved against the spec's declared params (no
        signature inspection): the body receives the override."""
        from repro import cli
        from repro.core.registry import REGISTRY
        from repro.core import experiments

        captured = {}
        spec = REGISTRY.get("E17")
        original_body = spec.body

        def capturing_body(ctx, **kwargs):
            captured.update(kwargs)
            return original_body(ctx, **kwargs)

        fake = type(REGISTRY)()
        for other in REGISTRY.specs():
            fake.add(other)
        fake.add(
            type(spec)(
                id=spec.id,
                title=spec.title,
                params=spec.params,
                capabilities=spec.capabilities,
                body=capturing_body,
            )
        )
        monkeypatch.setattr(cli, "REGISTRY", fake)
        assert cli.main(["run", "E17", "--quick", "--seed", "77"]) == 0
        assert captured["seed"] == 77


class TestE15:
    def test_window_probability_positive(self):
        from repro.core.experiments import e15_cf_equivalence

        result = e15_cf_equivalence(
            sizes=(60, 120), num_samples=100, seed=15
        )
        assert result.derived["min_p_untouched"] > 0.2
        assert result.derived["profile_spread"] >= 0.0


class TestE16:
    def test_evolving_vs_pure(self):
        from repro.core.experiments import e16_neighbor_dependence

        result = e16_neighbor_dependence(n=1500, seed=16)
        for name in (
            "mori(p=0.5, m=2)",
            "cooper-frieze(a=0.75)",
            "ba(m=2)",
        ):
            assert result.derived[f"age_corr/{name}"] < -0.1
        assert abs(result.derived["age_corr/config(k=2.5)"]) < 0.1


class TestE17:
    def test_simulation_inequality(self):
        from repro.core.experiments import e17_simulation_slowdown

        result = e17_simulation_slowdown(
            sizes=(100, 200), num_graphs=2, seed=17
        )
        assert result.derived["worst_ratio"] <= 1.0

    def test_independent_mode_preserves_grid_order_and_repeats(self):
        """The mode refactor must keep the serial loop's one-row-per-
        grid-position behaviour: repeated sizes are separate cells
        (distinct seed substreams) and the caller's order is kept."""
        from repro.core.experiments import e17_simulation_slowdown

        result = e17_simulation_slowdown(
            sizes=(200, 200, 100), num_graphs=1, seed=17
        )
        assert [row[0] for row in result.tables[0].rows] == [
            200, 200, 100,
        ]


class TestCLIPlot:
    def test_plot_flag_renders_ascii(self, capsys):
        from repro.cli import main

        assert main(["run", "E1", "--quick", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "log-log" in out


class TestCLICompare:
    def test_compare_roundtrip_matches(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "e10.json"
        assert main(["run", "E10", "--quick", "--json", str(path)]) == 0
        capsys.readouterr()
        assert main(["compare", str(path), str(path)]) == 0
        assert "MATCH" in capsys.readouterr().out

    def test_compare_flags_divergence(self, tmp_path, capsys):
        import json

        from repro.cli import main

        path_a = tmp_path / "a.json"
        assert main(
            ["run", "E10", "--quick", "--json", str(path_a)]
        ) == 0
        data = json.loads(path_a.read_text())
        data["derived"]["all_windows_hold"] = 0.0
        path_b = tmp_path / "b.json"
        path_b.write_text(json.dumps(data))
        capsys.readouterr()
        assert main(["compare", str(path_a), str(path_b)]) == 1
        out = capsys.readouterr().out
        assert "metric" in out


class TestE18:
    def test_start_rules_all_measured(self):
        from repro.core.experiments import e18_start_rule

        result = e18_start_rule(
            sizes=(60, 120), num_graphs=2, runs_per_graph=1, seed=18
        )
        for rule in ("default", "random", "newest-other"):
            assert f"exponent/start={rule}" in result.derived

    def test_trajectory_mode_runs_all_rules(self):
        from repro.core.experiments import e18_start_rule

        result = e18_start_rule(
            sizes=(60, 120), num_graphs=2, runs_per_graph=1, seed=18,
            mode="trajectory",
        )
        assert result.params["mode"] == "trajectory"
        for rule in ("default", "random", "newest-other"):
            assert f"exponent/start={rule}" in result.derived


class TestE19:
    def test_shape_and_confidence_bands(self):
        from repro.core.experiments import e19_trajectory_scaling

        result = e19_trajectory_scaling(
            sizes=(100, 200), num_graphs=3, runs_per_graph=1, seed=19
        )
        assert result.experiment_id == "E19"
        assert result.params["mode"] == "trajectory"
        table = result.tables[0]
        assert "ci95 halfwidth" in table.columns
        # One row per (family, size); both families measured.
        families = {row[0] for row in table.rows}
        assert len(families) == 2
        assert len(table.rows) == 4
        for row in table.rows:
            mean_requests = row[2]
            ci_halfwidth = row[3]
            assert mean_requests > 0
            assert ci_halfwidth >= 0
        assert "min_exponent" in result.derived

    def test_unknown_mode_rejected(self):
        from repro.core.experiments import e17_simulation_slowdown
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError):
            e17_simulation_slowdown(
                sizes=(100, 200), num_graphs=1, mode="coupled"
            )

    def test_e19_accepts_only_trajectory_mode(self, capsys):
        """Coupled trajectories are E19's subject: `--mode trajectory`
        composes without a bogus 'flag was ignored' warning, and
        independent mode is rejected with a pointer to E1/E3."""
        from repro.core.experiments import e19_trajectory_scaling
        from repro.errors import ExperimentError

        assert main(
            ["run", "E19", "--quick", "--mode", "trajectory"]
        ) == 0
        assert "warning:" not in capsys.readouterr().err
        with pytest.raises(ExperimentError):
            e19_trajectory_scaling(
                sizes=(100, 200), num_graphs=1, mode="independent"
            )
        # An *explicitly typed* --mode independent must reach E19 and
        # be rejected there — not silently dropped as "the default" —
        # and the CLI turns the rejection into a clean error, not a
        # traceback.
        assert main(
            ["run", "E19", "--quick", "--mode", "independent"]
        ) == 1
        err = capsys.readouterr().err
        assert "error: E19 failed:" in err
        assert "coupled trajectories by definition" in err

    def test_run_all_survives_a_failing_experiment(
        self, capsys, monkeypatch
    ):
        """One experiment rejecting a knob must not abort the sweep."""
        from repro import cli
        from repro.core.registry import REGISTRY, ExperimentSpec, Registry
        from repro.errors import ExperimentError

        def exploding(ctx):
            raise ExperimentError("boom")

        subset = Registry()
        subset.add(
            ExperimentSpec(
                id="E10",
                title="exploding stand-in",
                params=(),
                capabilities={},
                body=exploding,
            )
        )
        subset.add(REGISTRY.get("E17"))
        monkeypatch.setattr(cli, "REGISTRY", subset)
        assert main(["run", "all", "--quick"]) == 1
        captured = capsys.readouterr()
        assert "error: E10 failed: boom" in captured.err
        # Experiments after the failure still ran.
        assert "E17:" in captured.out


class TestCLIRunAll:
    @pytest.mark.slow
    def test_run_all_quick_with_json_dir(self, tmp_path, capsys):
        import os

        json_dir = tmp_path / "records"
        assert (
            main(
                [
                    "run",
                    "all",
                    "--quick",
                    "--json-dir",
                    str(json_dir),
                ]
            )
            == 0
        )
        written = sorted(os.listdir(json_dir))
        assert written == sorted(
            f"e{i}.json" for i in range(1, 23)
        )
        out = capsys.readouterr().out
        for i in range(1, 23):
            assert f"E{i}:" in out

"""Property-based tests for the analysis toolkit."""

from __future__ import annotations

import math
import random

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis.powerlaw_fit import fit_power_law
from repro.analysis.scaling import fit_logarithmic, fit_power_scaling
from repro.analysis.stats import mean, mean_ci, sample_std
from repro.graphs.power_law import power_law_degree_sequence

seeds = st.integers(min_value=0, max_value=2**32 - 1)


class TestScalingFitProperties:
    @given(
        exponent=st.floats(min_value=-2.0, max_value=2.0),
        prefactor=st.floats(min_value=0.1, max_value=100.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_recovers_noiseless_power_law(self, exponent, prefactor):
        xs = [10.0, 50.0, 250.0, 1250.0]
        ys = [prefactor * x ** exponent for x in xs]
        assume(all(y > 0 for y in ys))
        fit = fit_power_scaling(xs, ys)
        assert abs(fit.exponent - exponent) < 1e-6
        assert abs(fit.prefactor - prefactor) / prefactor < 1e-6

    @given(
        coefficient=st.floats(min_value=-10.0, max_value=10.0),
        intercept=st.floats(min_value=-100.0, max_value=100.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_recovers_noiseless_logarithm(self, coefficient, intercept):
        xs = [2.0, 8.0, 64.0, 1024.0]
        ys = [intercept + coefficient * math.log(x) for x in xs]
        fit = fit_logarithmic(xs, ys)
        assert abs(fit.coefficient - coefficient) < 1e-6
        assert abs(fit.intercept - intercept) < 1e-4

    @given(
        exponent=st.floats(min_value=0.2, max_value=1.5),
        noise_seed=seeds,
    )
    @settings(max_examples=30, deadline=None)
    def test_robust_to_small_noise(self, exponent, noise_seed):
        rng = random.Random(noise_seed)
        xs = [float(10 * 2 ** k) for k in range(8)]
        ys = [
            (x ** exponent) * math.exp(rng.gauss(0, 0.05)) for x in xs
        ]
        fit = fit_power_scaling(xs, ys)
        assert abs(fit.exponent - exponent) < 0.15


class TestPowerLawFitProperties:
    @given(
        exponent=st.floats(min_value=2.05, max_value=3.2),
        sample_seed=seeds,
    )
    @settings(max_examples=15, deadline=None)
    def test_mle_recovers_generating_exponent(
        self, exponent, sample_seed
    ):
        degrees = power_law_degree_sequence(
            8000,
            exponent,
            min_degree=1,
            max_degree=300,
            seed=sample_seed,
        )
        fit = fit_power_law(degrees, d_min=1)
        assert abs(fit.exponent - exponent) < 0.25

    @given(sample_seed=seeds)
    @settings(max_examples=20, deadline=None)
    def test_ks_small_for_true_power_law(self, sample_seed):
        degrees = power_law_degree_sequence(
            5000, 2.5, min_degree=1, max_degree=200, seed=sample_seed
        )
        fit = fit_power_law(degrees, d_min=1)
        assert fit.ks_distance < 0.05


class TestStatsProperties:
    @given(
        values=st.lists(
            st.floats(min_value=-1e6, max_value=1e6),
            min_size=2,
            max_size=50,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_ci_contains_mean_and_is_ordered(self, values):
        m, low, high = mean_ci(values)
        assert low <= m <= high
        assert m == mean(values)

    @given(
        values=st.lists(
            st.floats(min_value=-1e3, max_value=1e3),
            min_size=1,
            max_size=50,
        ),
        shift=st.floats(min_value=-100.0, max_value=100.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_std_is_shift_invariant(self, values, shift):
        shifted = [v + shift for v in values]
        assert math.isclose(
            sample_std(values),
            sample_std(shifted),
            rel_tol=1e-6,
            abs_tol=1e-6,
        )

    @given(
        values=st.lists(
            st.floats(min_value=-1e3, max_value=1e3),
            min_size=1,
            max_size=50,
        ),
        scale=st.floats(min_value=0.01, max_value=100.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_std_scales_linearly(self, values, scale):
        scaled = [v * scale for v in values]
        assert math.isclose(
            sample_std(scaled),
            scale * sample_std(values),
            rel_tol=1e-6,
            abs_tol=1e-6,
        )

"""Unit tests for repro.graphs.base.MultiGraph."""

from __future__ import annotations

import pytest

from repro.errors import GraphConstructionError
from repro.graphs.base import MultiGraph


class TestConstruction:
    def test_empty_graph(self):
        graph = MultiGraph()
        assert graph.num_vertices == 0
        assert graph.num_edges == 0
        assert list(graph.vertices()) == []

    def test_initial_vertices_are_isolated(self):
        graph = MultiGraph(3)
        assert graph.num_vertices == 3
        assert all(graph.degree(v) == 0 for v in graph.vertices())

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(GraphConstructionError):
            MultiGraph(-1)

    def test_add_vertex_returns_new_identity(self):
        graph = MultiGraph(2)
        assert graph.add_vertex() == 3
        assert graph.add_vertex() == 4
        assert graph.num_vertices == 4

    def test_add_edge_returns_sequential_ids(self):
        graph = MultiGraph(3)
        assert graph.add_edge(2, 1) == 0
        assert graph.add_edge(3, 1) == 1
        assert graph.num_edges == 2

    def test_add_edge_to_missing_vertex_rejected(self):
        graph = MultiGraph(2)
        with pytest.raises(GraphConstructionError):
            graph.add_edge(1, 3)
        with pytest.raises(GraphConstructionError):
            graph.add_edge(0, 1)

    def test_from_edges(self):
        graph = MultiGraph.from_edges(3, [(2, 1), (3, 2)])
        assert graph.num_edges == 2
        assert graph.edge_endpoints(0) == (2, 1)
        assert graph.edge_endpoints(1) == (3, 2)


class TestDegrees:
    def test_simple_degrees(self, triangle):
        assert [triangle.degree(v) for v in triangle.vertices()] == [
            2,
            2,
            2,
        ]

    def test_self_loop_counts_twice(self, loop_graph):
        assert loop_graph.degree(2) == 3  # edge to 1 plus loop twice
        assert loop_graph.degree(1) == 1

    def test_parallel_edges_count_separately(self, parallel_graph):
        assert parallel_graph.degree(1) == 2
        assert parallel_graph.degree(2) == 2

    def test_in_out_degree_orientation(self):
        graph = MultiGraph.from_edges(3, [(2, 1), (3, 1)])
        assert graph.in_degree(1) == 2
        assert graph.out_degree(1) == 0
        assert graph.out_degree(2) == 1
        assert graph.in_degree(2) == 0

    def test_degree_sum_equals_twice_edges(self, small_merged):
        graph = small_merged.graph
        assert sum(graph.degree_sequence()) == 2 * graph.num_edges

    def test_degree_of_missing_vertex_rejected(self, triangle):
        with pytest.raises(GraphConstructionError):
            triangle.degree(4)


class TestIncidence:
    def test_incident_edges_order(self):
        graph = MultiGraph(3)
        e0 = graph.add_edge(2, 1)
        e1 = graph.add_edge(3, 1)
        assert graph.incident_edges(1) == (e0, e1)

    def test_self_loop_listed_twice(self, loop_graph):
        assert loop_graph.incident_edges(2).count(1) == 2

    def test_other_endpoint(self, triangle):
        assert triangle.other_endpoint(0, 1) == 2
        assert triangle.other_endpoint(0, 2) == 1

    def test_other_endpoint_of_loop_is_self(self, loop_graph):
        assert loop_graph.other_endpoint(1, 2) == 2

    def test_other_endpoint_rejects_non_incident_vertex(self, triangle):
        with pytest.raises(GraphConstructionError):
            triangle.other_endpoint(0, 3)

    def test_edge_endpoints_bad_id_rejected(self, triangle):
        with pytest.raises(GraphConstructionError):
            triangle.edge_endpoints(99)
        with pytest.raises(GraphConstructionError):
            triangle.edge_endpoints(-1)


class TestNeighbors:
    def test_neighbors_multiset(self, parallel_graph):
        assert parallel_graph.neighbors(1) == [2, 2]

    def test_neighbors_with_loop(self, loop_graph):
        assert sorted(loop_graph.neighbors(2)) == [1, 2, 2]

    def test_unique_neighbors(self, loop_graph):
        assert loop_graph.unique_neighbors(2) == [1, 2]

    def test_unique_neighbors_sorted(self):
        graph = MultiGraph.from_edges(4, [(1, 3), (1, 2), (1, 4)])
        assert graph.unique_neighbors(1) == [2, 3, 4]


class TestStructure:
    def test_is_connected_true(self, triangle):
        assert triangle.is_connected()

    def test_is_connected_false(self):
        graph = MultiGraph(3)
        graph.add_edge(2, 1)
        assert not graph.is_connected()

    def test_trivial_graphs_connected(self):
        assert MultiGraph(0).is_connected()
        assert MultiGraph(1).is_connected()

    def test_num_self_loops(self, loop_graph):
        assert loop_graph.num_self_loops() == 1

    def test_copy_is_independent(self, triangle):
        clone = triangle.copy()
        assert clone == triangle
        clone.add_edge(1, 2)
        assert clone != triangle
        assert triangle.num_edges == 3

    def test_equality_is_labeled(self):
        g1 = MultiGraph.from_edges(2, [(2, 1)])
        g2 = MultiGraph.from_edges(2, [(1, 2)])
        assert g1 != g2  # orientation matters for labeled equality

    def test_hash_consistent_with_equality(self, triangle):
        assert hash(triangle) == hash(triangle.copy())

    def test_edges_iteration(self, triangle):
        listed = list(triangle.edges())
        assert listed == [(0, 2, 1), (1, 3, 2), (2, 3, 1)]

    def test_repr_mentions_counts(self, triangle):
        assert "n=3" in repr(triangle)
        assert "m=3" in repr(triangle)

"""Unit tests for the Cooper–Frieze equivalence machinery (Theorem 2)."""

from __future__ import annotations

import pytest

from repro.errors import AnalysisError, InvalidParameterError
from repro.equivalence.cooper_frieze import (
    estimate_untouched_probability,
    untouched_window_event,
    window_parent_degree_profile,
)
from repro.graphs.cooper_frieze import (
    CooperFriezeParams,
    cooper_frieze_graph,
)


@pytest.fixture(scope="module")
def traced_cf():
    return cooper_frieze_graph(
        60, CooperFriezeParams(alpha=0.8), seed=5, record_trace=True
    )


class TestTraceRecording:
    def test_trace_absent_by_default(self):
        cf = cooper_frieze_graph(20, seed=0)
        assert cf.trace is None

    def test_trace_covers_all_steps(self, traced_cf):
        assert len(traced_cf.trace) == traced_cf.num_steps
        new_steps = [r for r in traced_cf.trace if r.kind == "new"]
        assert len(new_steps) == traced_cf.num_new_steps

    def test_trace_edges_partition_the_graph(self, traced_cf):
        traced_edges = [
            eid for record in traced_cf.trace for eid in record.edge_ids
        ]
        # Every edge except the initial self-loop (edge 0) is traced,
        # each exactly once, in insertion order.
        assert traced_edges == list(
            range(1, traced_cf.graph.num_edges)
        )

    def test_new_records_match_vertex_births(self, traced_cf):
        new_vertices = [
            record.vertex
            for record in traced_cf.trace
            if record.kind == "new"
        ]
        assert new_vertices == list(range(2, traced_cf.n + 1))


class TestUntouchedEvent:
    def test_requires_trace(self):
        cf = cooper_frieze_graph(20, seed=0)
        with pytest.raises(InvalidParameterError):
            untouched_window_event(cf, 15, 20)

    def test_bounds_validated(self, traced_cf):
        with pytest.raises(InvalidParameterError):
            untouched_window_event(traced_cf, 0, 10)
        with pytest.raises(InvalidParameterError):
            untouched_window_event(traced_cf, 10, 61)

    def test_trivial_window(self, traced_cf):
        # Empty window (b = a): event vacuously true.
        assert untouched_window_event(traced_cf, 30, 30)

    def test_event_implies_structure(self, traced_cf):
        """Whenever the event holds, the structural conditions hold."""
        n = traced_cf.n
        a, b = n - 5, n
        if untouched_window_event(traced_cf, a, b):
            graph = traced_cf.graph
            for v in range(a + 1, b + 1):
                assert graph.in_degree(v) == 0
                assert graph.out_degree(v) == 1
                (eid,) = [
                    e
                    for e in graph.incident_edges(v)
                    if graph.edge_endpoints(e)[0] == v
                ]
                assert graph.edge_endpoints(eid)[1] <= a

    def test_event_detects_touched_window(self):
        """With alpha small, OLD steps batter the newest vertices, so
        wide windows are essentially never untouched."""
        params = CooperFriezeParams(alpha=0.3)
        hits = 0
        for seed in range(20):
            cf = cooper_frieze_graph(
                40, params, seed=seed, record_trace=True
            )
            hits += untouched_window_event(cf, 20, 40)
        assert hits <= 6  # wide window, many OLD steps: rare event


class TestProbabilityEstimation:
    def test_probability_in_unit_interval(self):
        params = CooperFriezeParams(alpha=0.75)
        probability = estimate_untouched_probability(
            80, 72, 80, params, num_samples=100, seed=1
        )
        assert 0.0 <= probability <= 1.0

    def test_sqrt_window_probability_stays_positive(self):
        """The Theorem 2 premise: for sqrt-width windows the event
        probability does not collapse as n grows."""
        params = CooperFriezeParams(alpha=0.75)
        import math

        values = []
        for n in (64, 144, 256):
            width = math.isqrt(n)
            values.append(
                estimate_untouched_probability(
                    n, n - width, n, params,
                    num_samples=150, seed=n,
                )
            )
        assert all(v > 0.3 for v in values)

    def test_validation(self):
        params = CooperFriezeParams()
        with pytest.raises(InvalidParameterError):
            estimate_untouched_probability(10, 5, 8, params, 0)
        with pytest.raises(InvalidParameterError):
            estimate_untouched_probability(10, 0, 8, params, 10)


class TestParentDegreeProfile:
    def test_profile_shape(self):
        params = CooperFriezeParams(alpha=0.8)
        profile = window_parent_degree_profile(
            50, 45, 50, params, num_samples=300, seed=3
        )
        assert len(profile.mean_parent_degree) == 5
        assert profile.num_event_samples > 0
        assert 0.0 < profile.event_rate <= 1.0
        assert profile.spread >= 0.0

    def test_no_event_raises(self):
        # alpha small + huge window: event essentially impossible.
        params = CooperFriezeParams(alpha=0.3)
        with pytest.raises(AnalysisError):
            window_parent_degree_profile(
                40, 5, 40, params, num_samples=20, seed=4
            )

    def test_validation(self):
        params = CooperFriezeParams()
        with pytest.raises(InvalidParameterError):
            window_parent_degree_profile(10, 0, 5, params, 10)
        with pytest.raises(InvalidParameterError):
            window_parent_degree_profile(10, 5, 8, params, 0)

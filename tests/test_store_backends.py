"""Tests for the pluggable trial-store backends (`repro.runner.store`).

Four batteries:

* the backend contract, parametrized over both backends — round trip,
  key partitioning, the cheap ``__contains__`` probe, ``get_many``
  order (including past the sqlite batching chunk);
* versioned-record semantics — legacy/stale entries are MISS, never
  replayed, and a fresh ``put`` overwrites them;
* crash consistency — kill-mid-write torn entries (truncated JSON,
  a half-committed sqlite transaction from a died process, flipped
  bytes) are always MISS and never an exception, over both backends;
* migration — ``migrate_store`` round-trips values bit-identically in
  both directions, stamps legacy entries, skips stale ones, and the
  ``repro store stat/migrate/compact`` CLI drives it end to end.
"""

from __future__ import annotations

import json
import os
import sqlite3
import stat as stat_module
import subprocess
import sys
import textwrap

import pytest

import repro
from repro.cli import main
from repro.errors import ExperimentError
from repro.runner import (
    MISS,
    RECORD_FORMAT,
    STORE_BACKENDS,
    STORE_BACKEND_VARIABLE,
    ResultStore,
    SqliteResultStore,
    TrialSpec,
    detect_backends,
    migrate_store,
    open_store,
    record_fingerprint,
    resolve_store_backend,
    run_trials,
    store_for,
    store_stats,
    reset_store_stats,
    trial_ref,
)

BACKENDS = sorted(STORE_BACKENDS)


def sample_trial(*, label: str, seed: int = 0) -> dict:
    return {"label": label, "seed": seed, "value": seed * 3 + 1}


SAMPLE = trial_ref(sample_trial)


def _spec(seed: int = 1, label: str = "x") -> TrialSpec:
    return TrialSpec(
        experiment_id="T",
        trial=SAMPLE,
        params={"label": label},
        seed=seed,
    )


@pytest.fixture(params=BACKENDS)
def store(request, tmp_path):
    return open_store(tmp_path, request.param)


class TestBackendContract:
    """Both backends honour the same get/put/contains/get_many contract."""

    def test_round_trip(self, store):
        spec = _spec()
        assert store.get(spec) is MISS
        store.put(spec, {"a": 1, "b": [1, 2.5, "s", None]})
        assert store.get(spec) == {"a": 1, "b": [1, 2.5, "s", None]}
        assert spec in store

    def test_none_is_a_valid_cached_value(self, store):
        spec = _spec()
        store.put(spec, None)
        assert store.get(spec) is None
        assert spec in store

    def test_keys_partition(self, store):
        store.put(_spec(seed=1, label="x"), "base")
        assert store.get(_spec(seed=2, label="x")) is MISS
        assert store.get(_spec(seed=1, label="y")) is MISS
        assert (
            store.get(TrialSpec("U", SAMPLE, {"label": "x"}, 1))
            is MISS
        )

    def test_put_overwrites(self, store):
        spec = _spec()
        store.put(spec, "first")
        store.put(spec, "second")
        assert store.get(spec) == "second"

    def test_huge_seeds_round_trip(self, store):
        # Substream-derived trial seeds are arbitrary-precision ints,
        # far beyond a signed 64-bit column.
        spec = _spec(seed=2**96 + 17)
        store.put(spec, "wide")
        assert store.get(spec) == "wide"
        assert spec in store

    def test_get_many_preserves_order_past_chunking(self, store):
        # 2x the sqlite batching chunk plus change, half of them
        # missing, in interleaved order.
        present = [_spec(seed=s) for s in range(0, 1300, 2)]
        absent = [_spec(seed=s) for s in range(1, 1300, 2)]
        for index, spec in enumerate(present):
            store.put(spec, index)
        interleaved = [
            spec
            for pair in zip(present, absent)
            for spec in pair
        ]
        values = store.get_many(interleaved)
        assert values[0::2] == list(range(len(present)))
        assert all(value is MISS for value in values[1::2])

    def test_get_many_feeds_the_runner_tally(self, store):
        for seed in range(3):
            store.put(_spec(seed=seed), seed)
        reset_store_stats()
        results = run_trials(
            [_spec(seed=s) for s in range(4)], store=store
        )
        assert [r.from_cache for r in results] == [
            True, True, True, False,
        ]
        assert store_stats() == {"hits": 3, "misses": 1}

    def test_contains_is_a_probe_not_a_parse(self, store):
        # A stale entry may probe True; get() still refuses it.  The
        # probe's promise is only that False means miss.
        spec = _spec()
        record = dict(
            store._make_record(spec, "old"),
            fingerprint="0.0.0/elsewhere:fn",
        )
        store.put_record(record)
        assert spec in store
        assert store.get(spec) is MISS
        assert _spec(seed=999) not in store

    def test_stat_counts_entries(self, store):
        for seed in range(4):
            store.put(_spec(seed=seed), seed)
        stats = store.stat()
        assert stats["backend"] == store.kind
        assert stats["entries"] == 4
        assert stats["stale"] == 0
        assert stats["bytes"] > 0
        assert stats["inodes"] >= 1


class TestVersionedRecords:
    """Records carry format + code fingerprint; a mismatch is a MISS."""

    def test_fingerprint_is_version_plus_trial(self):
        assert record_fingerprint(SAMPLE) == (
            f"{repro.__version__}/{SAMPLE}"
        )

    def test_legacy_unversioned_entry_is_a_miss(self, tmp_path):
        # A pre-backend cache tree: structurally fine, but unversioned
        # — exactly the stale-code replay hazard, so never replayed.
        store = ResultStore(tmp_path)
        spec = _spec()
        path = store.path_for(spec)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "experiment_id": "T",
                    "trial": SAMPLE,
                    "params": {"label": "x"},
                    "seed": 1,
                    "value": 42,
                },
                handle,
            )
        assert store.get(spec) is MISS
        # ...but the well-formed file is kept (migrate can stamp it).
        assert os.path.exists(path)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_stale_fingerprint_is_a_miss_until_overwritten(
        self, tmp_path, backend
    ):
        store = open_store(tmp_path, backend)
        spec = _spec()
        store.put_record(
            dict(
                store._make_record(spec, "stale"),
                fingerprint="0.0.0/old_module:old_fn",
            )
        )
        assert store.get(spec) is MISS
        store.put(spec, "fresh")
        assert store.get(spec) == "fresh"

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_format_bump_is_a_miss(self, tmp_path, backend):
        store = open_store(tmp_path, backend)
        spec = _spec()
        store.put_record(
            dict(store._make_record(spec, "v1"), format=RECORD_FORMAT - 1)
        )
        assert store.get(spec) is MISS

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_stat_and_compact_report_stale(self, tmp_path, backend):
        store = open_store(tmp_path, backend)
        store.put(_spec(seed=1), "current")
        store.put_record(
            dict(
                store._make_record(_spec(seed=2), "old"),
                fingerprint="0.0.0/old:fn",
            )
        )
        stats = store.stat()
        assert (stats["entries"], stats["stale"]) == (1, 1)
        assert store.compact()["removed_stale"] == 1
        after = store.stat()
        assert (after["entries"], after["stale"]) == (1, 0)
        assert store.get(_spec(seed=1)) == "current"


class TestBackendSelection:
    def test_resolve_prefers_explicit_over_environment(
        self, monkeypatch
    ):
        monkeypatch.setenv(STORE_BACKEND_VARIABLE, "sqlite")
        assert resolve_store_backend("json-files") == "json-files"
        assert resolve_store_backend(None) == "sqlite"
        monkeypatch.delenv(STORE_BACKEND_VARIABLE)
        assert resolve_store_backend(None) == "json-files"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ExperimentError, match="unknown store"):
            resolve_store_backend("oracle")

    def test_store_for_environment_default(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(STORE_BACKEND_VARIABLE, "sqlite")
        store = store_for(tmp_path)
        assert isinstance(store, SqliteResultStore)
        assert store_for(None) is None

    def test_detect_backends(self, tmp_path):
        assert detect_backends(tmp_path) == []
        open_store(tmp_path, "sqlite").put(_spec(), 1)
        assert detect_backends(tmp_path) == ["sqlite"]
        open_store(tmp_path, "json-files").put(_spec(), 1)
        assert detect_backends(tmp_path) == ["json-files", "sqlite"]


@pytest.mark.skipif(os.name != "posix", reason="umask is POSIX")
class TestPutPermissions:
    def test_put_honours_process_umask(self, tmp_path):
        # mkstemp creates 0600 files; pre-fix the entry kept that
        # mode, making a shared cache dir unreadable to other users.
        previous = os.umask(0o022)
        try:
            store = ResultStore(tmp_path)
            spec = _spec()
            store.put(spec, 1)
            mode = stat_module.S_IMODE(
                os.stat(store.path_for(spec)).st_mode
            )
            assert mode == 0o644
        finally:
            os.umask(previous)


class TestCrashConsistency:
    """Every torn entry is a MISS, never an exception."""

    def test_truncated_json_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = _spec()
        path = store.path_for(spec)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"value": {"ok": tr')
        assert store.get(spec) is MISS

    def test_flipped_byte_in_json_entry_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = _spec()
        store.put(spec, {"ok": True})
        path = store.path_for(spec)
        with open(path, "r+b") as handle:
            handle.seek(2)
            byte = handle.read(1)
            handle.seek(2)
            handle.write(bytes([byte[0] ^ 0xFF]))
        assert store.get(spec) is MISS

    def test_json_writer_killed_mid_write_leaves_a_miss(
        self, tmp_path
    ):
        # A crashed legacy writer (no atomic replace) dies mid-write:
        # the torn bytes at the entry path read as a MISS, and the
        # killed atomic writer's orphan temp file is invisible to
        # reads and swept by compact.
        store = ResultStore(tmp_path)
        spec = _spec()
        path = store.path_for(spec)
        script = textwrap.dedent(
            f"""
            import json, os
            path = {path!r}
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w") as handle:
                handle.write(json.dumps({{"value": 1}})[:9])
                handle.flush()
                with open(os.path.join(os.path.dirname(path),
                                       ".trial-dead.tmp"), "w") as t:
                    t.write("{{")
                    t.flush()
                    os._exit(1)
            """
        )
        process = subprocess.run(
            [sys.executable, "-c", script], timeout=60
        )
        assert process.returncode == 1
        assert store.get(spec) is MISS
        assert store.compact()["removed_debris"] == 1

    def test_sqlite_writer_killed_before_commit_leaves_a_miss(
        self, tmp_path
    ):
        # The half-committed transaction: a process INSERTs and dies
        # without COMMIT.  WAL atomicity makes the row simply not
        # exist; the database stays healthy.
        store = SqliteResultStore(tmp_path)
        spec = _spec()
        store.put(_spec(seed=99), "committed")  # create the schema
        experiment_id, digest, seed = spec.key()
        script = textwrap.dedent(
            f"""
            import os, sqlite3
            connection = sqlite3.connect({store.db_path!r})
            connection.execute("BEGIN")
            connection.execute(
                "INSERT INTO trials (experiment_id, params_hash, "
                "seed, trial, params, value, format, fingerprint) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                ({experiment_id!r}, {digest!r}, {str(seed)!r},
                 {SAMPLE!r}, '{{}}', '"torn"', 2, 'x/y'),
            )
            os._exit(1)
            """
        )
        process = subprocess.run(
            [sys.executable, "-c", script], timeout=60
        )
        assert process.returncode == 1
        assert store.get(spec) is MISS
        assert store.get(_spec(seed=99)) == "committed"

    def test_flipped_byte_in_database_never_raises(self, tmp_path):
        store = SqliteResultStore(tmp_path)
        specs = [_spec(seed=s) for s in range(20)]
        for index, spec in enumerate(specs):
            store.put(spec, index)
        store._reset_connection()
        size = os.path.getsize(store.db_path)
        with open(store.db_path, "r+b") as handle:
            for offset in (16, size // 2, size - 7):
                handle.seek(offset)
                byte = handle.read(1)
                handle.seek(offset)
                handle.write(bytes([byte[0] ^ 0xFF]))
        fresh = SqliteResultStore(tmp_path)
        values = fresh.get_many(specs)  # MISS or value, never a raise
        assert all(v is MISS or v in range(20) for v in values)
        fresh.put(specs[0], "recovered")
        assert fresh.get(specs[0]) == "recovered"

    def test_garbage_database_file_quarantined_and_rebuilt(
        self, tmp_path
    ):
        db_path = os.path.join(
            tmp_path, SqliteResultStore.DB_FILENAME
        )
        with open(db_path, "wb") as handle:
            handle.write(b"this is not a sqlite database at all")
        store = SqliteResultStore(tmp_path)
        spec = _spec()
        assert store.get(spec) is MISS
        store.put(spec, "fresh")
        assert store.get(spec) == "fresh"
        sidecars = [
            name
            for name in os.listdir(tmp_path)
            if ".corrupt-" in name
        ]
        assert len(sidecars) == 1  # the garbage is kept for autopsy


class TestMigration:
    def _populate(self, store, count=6):
        values = {}
        for seed in range(count):
            value = {"seed": seed, "grid": [seed, seed + 0.5, None]}
            store.put(_spec(seed=seed), value)
            values[seed] = value
        return values

    @pytest.mark.parametrize(
        "source_backend,dest_backend",
        [("json-files", "sqlite"), ("sqlite", "json-files")],
    )
    def test_round_trip_bit_identical(
        self, tmp_path, source_backend, dest_backend
    ):
        source = open_store(tmp_path / "src", source_backend)
        destination = open_store(tmp_path / "dst", dest_backend)
        values = self._populate(source)
        report = migrate_store(source, destination)
        assert report == {
            "migrated": 6, "skipped_stale": 0, "verify_failed": 0,
        }
        for seed, value in values.items():
            replayed = destination.get(_spec(seed=seed))
            assert json.dumps(replayed, sort_keys=True) == json.dumps(
                value, sort_keys=True
            )

    def test_legacy_entries_stamped_with_current_fingerprint(
        self, tmp_path
    ):
        source = ResultStore(tmp_path / "legacy")
        spec = _spec()
        path = source.path_for(spec)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "experiment_id": "T",
                    "trial": SAMPLE,
                    "params": {"label": "x"},
                    "seed": 1,
                    "value": {"pinned": [1, 2, 3]},
                },
                handle,
            )
        assert source.get(spec) is MISS  # unversioned: not replayed
        destination = SqliteResultStore(tmp_path / "migrated")
        report = migrate_store(source, destination)
        assert report["migrated"] == 1
        # Migration is the explicit trust statement: stamped entries
        # replay under the current code.
        assert destination.get(spec) == {"pinned": [1, 2, 3]}

    def test_stale_entries_skipped(self, tmp_path):
        source = ResultStore(tmp_path / "src")
        source.put(_spec(seed=1), "current")
        source.put_record(
            dict(
                source._make_record(_spec(seed=2), "old"),
                fingerprint="0.0.0/old:fn",
            )
        )
        destination = SqliteResultStore(tmp_path / "dst")
        report = migrate_store(source, destination)
        assert report["migrated"] == 1
        assert report["skipped_stale"] == 1
        assert destination.get(_spec(seed=2)) is MISS

    def test_in_place_migration_shares_the_directory(self, tmp_path):
        # Both backends coexist in one cache dir, which is what the
        # CLI's default (no --dest) relies on.
        source = ResultStore(tmp_path)
        self._populate(source, count=3)
        destination = SqliteResultStore(tmp_path)
        assert migrate_store(source, destination)["migrated"] == 3
        assert detect_backends(tmp_path) == ["json-files", "sqlite"]
        assert destination.get(_spec(seed=0)) == {
            "seed": 0, "grid": [0, 0.5, None],
        }


class TestStoreCLI:
    def _fill(self, cache_dir, count=4):
        store = ResultStore(cache_dir)
        for seed in range(count):
            store.put(_spec(seed=seed), seed)
        return store

    def test_stat_reports_backends(self, tmp_path, capsys):
        self._fill(tmp_path)
        assert main(["store", "stat", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "json-files: 4 entries, 0 stale" in out

    def test_stat_empty_dir(self, tmp_path, capsys):
        assert main(["store", "stat", str(tmp_path)]) == 0
        assert "no store backends" in capsys.readouterr().out

    def test_migrate_then_replay(self, tmp_path, capsys):
        self._fill(tmp_path)
        assert main(["store", "migrate", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "4 migrated (json-files -> sqlite)" in out
        assert "0 verify failures" in out
        migrated = SqliteResultStore(tmp_path)
        assert migrated.get(_spec(seed=2)) == 2

    def test_compact_sweeps_stale(self, tmp_path, capsys):
        store = self._fill(tmp_path)
        store.put_record(
            dict(
                store._make_record(_spec(seed=9), "old"),
                fingerprint="0.0.0/old:fn",
            )
        )
        assert main(["store", "compact", str(tmp_path)]) == 0
        assert "1 stale" in capsys.readouterr().out
        assert store.stat()["stale"] == 0

    def test_run_reports_store_tally(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        arguments = [
            "run", "E6", "--quick", "--cache-dir", cache,
            "--store-backend", "sqlite",
        ]
        assert main(arguments) == 0
        cold = capsys.readouterr().out
        assert "store: 0 hits, " in cold
        assert main(arguments) == 0
        warm = capsys.readouterr().out
        assert " hits, 0 misses" in warm
        assert "store: 0 hits" not in warm

    def test_store_backend_warns_when_undeclared(
        self, tmp_path, capsys
    ):
        # E12 declares no cache/store capability.
        arguments = [
            "run", "E12", "--quick",
            "--store-backend", "sqlite",
        ]
        assert main(arguments) == 0
        err = capsys.readouterr().err
        assert "--store-backend sqlite has no effect on E12" in err

    def test_no_tally_without_cache_dir(self, tmp_path, capsys):
        assert main(["run", "E6", "--quick"]) == 0
        assert "store:" not in capsys.readouterr().out

"""Tests for shared-memory snapshot publication (`repro.graphs.shm`).

The contract under test: an attached graph answers every query
bit-for-bit like the published snapshot (the faithfulness battery the
frozen backend itself is held to), attach needs only the segment name,
and lifecycle is airtight — unlink means gone, double-unlink is
harmless, and a bogus segment is a typed error, not garbage.
"""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.graphs import (
    barabasi_albert_graph,
    cooper_frieze_graph,
    CooperFriezeParams,
    freeze,
    mori_tree,
)
from repro.graphs.shm import (
    SHM_SCHEMA,
    attach_graph,
    publish_graph,
)


def _snapshots():
    yield "mori", freeze(mori_tree(150, p=0.6, seed=11).graph)
    yield "ba", freeze(barabasi_albert_graph(120, m=2, seed=5))
    yield "cooper-frieze", freeze(
        cooper_frieze_graph(
            100, CooperFriezeParams(alpha=0.5), seed=3
        ).graph
    )


@pytest.fixture()
def published():
    snapshot = freeze(mori_tree(150, p=0.6, seed=11).graph)
    segment = publish_graph(snapshot)
    try:
        yield snapshot, segment
    finally:
        segment.close()
        segment.unlink()


class TestRoundTrip:
    @pytest.mark.parametrize(
        "name,snapshot", list(_snapshots()),
        ids=[name for name, _ in _snapshots()],
    )
    def test_attached_graph_answers_like_the_original(
        self, name, snapshot
    ):
        segment = publish_graph(snapshot)
        try:
            attached = attach_graph(segment.name)
            try:
                assert attached.num_vertices == snapshot.num_vertices
                assert attached.num_edges == snapshot.num_edges
                assert (
                    attached.num_self_loops()
                    == snapshot.num_self_loops()
                )
                assert attached == snapshot
                assert hash(attached) == hash(snapshot)
                for v in snapshot.vertices():
                    assert attached.degree(v) == snapshot.degree(v)
                    assert (
                        attached.neighbors(v) == snapshot.neighbors(v)
                    )
                    assert (
                        attached.incident_edges(v)
                        == snapshot.incident_edges(v)
                    )
                assert (
                    attached.degree_sequence()
                    == snapshot.degree_sequence()
                )
                assert list(attached.edges()) == list(snapshot.edges())
            finally:
                attached.close()
        finally:
            segment.close()
            segment.unlink()

    def test_header_describes_the_graph(self, published):
        snapshot, segment = published
        assert segment.header["schema"] == SHM_SCHEMA
        assert segment.header["n"] == snapshot.num_vertices
        assert segment.header["num_edges"] == snapshot.num_edges

    def test_attached_graph_is_immutable(self, published):
        _, segment = published
        attached = attach_graph(segment.name)
        try:
            with pytest.raises(Exception):
                attached.add_vertex()
            with pytest.raises(Exception):
                attached.add_edge(1, 2)
        finally:
            attached.close()


class TestLifecycle:
    def test_attach_after_unlink_raises(self):
        snapshot = freeze(mori_tree(40, p=0.5, seed=1).graph)
        segment = publish_graph(snapshot)
        name = segment.name
        attach_graph(name).close()
        segment.close()
        segment.unlink()
        with pytest.raises(FileNotFoundError):
            attach_graph(name)

    def test_unlink_is_idempotent(self):
        snapshot = freeze(mori_tree(40, p=0.5, seed=1).graph)
        segment = publish_graph(snapshot)
        segment.close()
        segment.unlink()
        segment.unlink()  # second call must be harmless

    def test_attach_unknown_name_raises(self):
        with pytest.raises(FileNotFoundError):
            attach_graph("psm_repro_never_published")

    def test_attach_foreign_segment_is_typed_error(self):
        from multiprocessing import shared_memory

        foreign = shared_memory.SharedMemory(create=True, size=64)
        try:
            foreign.buf[:8] = b"NOTAGRPH"
            with pytest.raises(ExperimentError, match="bad magic"):
                attach_graph(foreign.name)
        finally:
            foreign.close()
            foreign.unlink()

    def test_multiple_attachments_share_one_segment(self, published):
        snapshot, segment = published
        first = attach_graph(segment.name)
        second = attach_graph(segment.name)
        try:
            assert first == second == snapshot
        finally:
            first.close()
            second.close()

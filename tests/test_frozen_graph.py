"""Backend-equivalence battery: FrozenGraph must mirror MultiGraph.

The CSR snapshot is only allowed to change wall-clock time.  These
tests pin the contract from every side:

* **property grid** — across seeded instances of all graph models
  (Móri, Cooper–Frieze, BA, Kleinberg, configuration), every read
  query (degrees, incident edge ids, neighbors, self-loop counts,
  components, BFS distances, ...) answers identically on both backends;
* **search equivalence** — full searches, including the flooding CSR
  kernel's fast path, return bit-identical ``SearchResult`` values;
* **batched trials** — :func:`repro.core.trials.batched_search_trial`
  reproduces the portfolio trial draw-for-draw, on either backend;
* **freeze-then-hash** — the documented mutability caveat on
  ``MultiGraph.__hash__`` and the snapshot's stability under it;
* **fallback** — with numpy unavailable, the stdlib-``array`` CSR
  answers the same queries and the vectorised kernels bow out cleanly.
"""

from __future__ import annotations

import pytest

from repro.core.families import (
    BarabasiAlbertFamily,
    ConfigurationFamily,
    CooperFriezeFamily,
    MoriFamily,
)
from repro.errors import ExperimentError, GraphConstructionError
from repro.graphs import FrozenGraph, MultiGraph, freeze, kleinberg_grid
from repro.graphs.components import connected_components
from repro.graphs.frozen import (
    vectorized_bfs_distances,
    vectorized_connected_components,
    vectorized_degree_histogram,
)
from repro.analysis.degrees import degree_histogram
from repro.analysis.diameter import bfs_distances
from repro.search.algorithms import FloodingSearch, RandomWalkSearch
from repro.search.oracle import WeakOracle
from repro.search.process import run_search


def model_graph(model: str, seed: int) -> MultiGraph:
    """One modest instance of each model the paper touches."""
    if model == "mori":
        return MoriFamily(p=0.5, m=2).build(150, seed=seed)
    if model == "cooper-frieze":
        return CooperFriezeFamily().build(120, seed=seed)
    if model == "ba":
        return BarabasiAlbertFamily(m=2).build(150, seed=seed)
    if model == "config":
        # Unrestricted configuration graph: disconnected, with loops
        # and parallel edges — the adversarial case for a snapshot.
        from repro.graphs.configuration import (
            power_law_configuration_graph,
        )

        return power_law_configuration_graph(150, 2.5, seed=seed)
    if model == "kleinberg":
        return kleinberg_grid(10, r=2.0, q=1, seed=seed).graph
    raise AssertionError(model)


MODELS = ("mori", "cooper-frieze", "ba", "config", "kleinberg")
SEEDS = (0, 7)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("model", MODELS)
class TestBackendEquivalence:
    """Frozen answers == mutable answers, across the model grid."""

    def test_scalar_queries_agree(self, model, seed):
        graph = model_graph(model, seed)
        frozen = freeze(graph)
        assert frozen.num_vertices == graph.num_vertices
        assert frozen.num_edges == graph.num_edges
        assert frozen.vertices() == graph.vertices()
        assert frozen.num_self_loops() == graph.num_self_loops()
        assert frozen.is_connected() == graph.is_connected()
        assert frozen.degree_sequence() == graph.degree_sequence()

    def test_per_vertex_queries_agree(self, model, seed):
        graph = model_graph(model, seed)
        frozen = freeze(graph)
        for v in graph.vertices():
            assert frozen.degree(v) == graph.degree(v)
            assert frozen.in_degree(v) == graph.in_degree(v)
            assert frozen.out_degree(v) == graph.out_degree(v)
            assert frozen.incident_edges(v) == graph.incident_edges(v)
            assert frozen.neighbors(v) == graph.neighbors(v)
            assert frozen.unique_neighbors(v) == (
                graph.unique_neighbors(v)
            )

    def test_per_edge_queries_agree(self, model, seed):
        graph = model_graph(model, seed)
        frozen = freeze(graph)
        assert list(frozen.edges()) == list(graph.edges())
        for eid in range(graph.num_edges):
            tail, head = graph.edge_endpoints(eid)
            assert frozen.edge_endpoints(eid) == (tail, head)
            assert frozen.other_endpoint(eid, tail) == (
                graph.other_endpoint(eid, tail)
            )
            assert frozen.other_endpoint(eid, head) == (
                graph.other_endpoint(eid, head)
            )

    def test_components_agree(self, model, seed):
        graph = model_graph(model, seed)
        frozen = freeze(graph)
        assert connected_components(frozen) == (
            connected_components(graph)
        )

    def test_bfs_distances_agree(self, model, seed):
        graph = model_graph(model, seed)
        frozen = freeze(graph)
        for source in (1, graph.num_vertices, graph.num_vertices // 2):
            if source >= 1:
                assert bfs_distances(frozen, source) == (
                    bfs_distances(graph, source)
                )

    def test_degree_histogram_agrees(self, model, seed):
        graph = model_graph(model, seed)
        frozen = freeze(graph)
        assert degree_histogram(frozen) == degree_histogram(graph)

    def test_python_int_types_everywhere(self, model, seed):
        """No numpy scalars may leak into the scalar API (JSON safety)."""
        frozen = freeze(model_graph(model, seed))
        v = frozen.num_vertices
        samples = (
            frozen.degree(1),
            *frozen.incident_edges(1)[:3],
            *frozen.neighbors(v)[:3],
            *frozen.degree_sequence()[:3],
            *bfs_distances(frozen, 1)[:3],
        )
        for value in samples:
            assert type(value) is int


class TestVectorizedKernels:
    """The numpy kernels answer exactly; non-frozen inputs bow out."""

    def test_kernels_decline_multigraph(self, triangle):
        assert vectorized_bfs_distances(triangle, 1) is None
        assert vectorized_connected_components(triangle) is None
        assert vectorized_degree_histogram(triangle) is None

    def test_component_ordering_matches_generic(self):
        # Equal-size components: largest first, ties by smallest member
        # (the generic discovery-order + stable-sort behaviour).
        graph = MultiGraph(7)
        graph.add_edge(2, 1)
        graph.add_edge(4, 3)
        graph.add_edge(6, 5)
        graph.add_edge(7, 5)
        frozen = freeze(graph)
        expected = connected_components(graph)
        assert expected == [[5, 6, 7], [1, 2], [3, 4]]
        assert connected_components(frozen) == expected

    def test_isolated_vertices_and_empty_graphs(self):
        for n in (0, 1, 5):
            frozen = freeze(MultiGraph(n))
            graph = MultiGraph(n)
            assert connected_components(frozen) == (
                connected_components(graph)
            )
            assert frozen.is_connected() == graph.is_connected()

    def test_self_loops_and_parallel_edges(self, loop_graph):
        frozen = freeze(loop_graph)
        assert frozen.neighbors(2) == loop_graph.neighbors(2)
        assert frozen.degree(2) == 3  # loop counts twice
        assert bfs_distances(frozen, 1) == bfs_distances(loop_graph, 1)


class TestImmutability:
    def test_mutators_raise(self, triangle):
        frozen = freeze(triangle)
        with pytest.raises(GraphConstructionError):
            frozen.add_vertex()
        with pytest.raises(GraphConstructionError):
            frozen.add_edge(1, 2)

    def test_invalid_queries_raise_like_multigraph(self, triangle):
        frozen = freeze(triangle)
        with pytest.raises(GraphConstructionError):
            frozen.degree(0)
        with pytest.raises(GraphConstructionError):
            frozen.incident_edges(4)
        with pytest.raises(GraphConstructionError):
            frozen.edge_endpoints(99)
        with pytest.raises(GraphConstructionError):
            frozen.other_endpoint(0, 3)  # vertex 3 not on edge 0

    def test_freeze_is_idempotent(self, triangle):
        frozen = freeze(triangle)
        assert freeze(frozen) is frozen
        assert FrozenGraph.from_multigraph(frozen) is frozen

    def test_thaw_round_trips(self, loop_graph):
        frozen = freeze(loop_graph)
        thawed = frozen.thaw()
        assert thawed == loop_graph
        assert thawed is not loop_graph
        eid = thawed.add_edge(1, 1)  # thawed copy is mutable again
        assert eid == loop_graph.num_edges


class TestFreezeThenHashContract:
    """The documented hashing rules for both backends."""

    def test_snapshot_hash_and_equality_cross_backend(self, triangle):
        frozen = freeze(triangle)
        assert frozen == triangle
        assert triangle == frozen.thaw()
        assert hash(frozen) == hash(triangle)
        assert freeze(triangle.copy()) == frozen

    def test_multigraph_hash_breaks_on_mutation(self, triangle):
        """The caveat the docstring warns about, made concrete."""
        lookup = {triangle: "registered"}
        assert lookup[triangle] == "registered"
        triangle.add_edge(3, 1)
        # The mutated graph no longer hashes to its old bucket: the
        # dict can neither find it nor (in general) evict it by key.
        with pytest.raises(KeyError):
            lookup[triangle]

    def test_frozen_hash_survives_source_mutation(self, triangle):
        frozen = freeze(triangle)
        before = hash(frozen)
        lookup = {frozen: "registered"}
        triangle.add_edge(3, 1)  # mutate the source after snapshotting
        assert hash(frozen) == before
        assert lookup[frozen] == "registered"
        # ... and the snapshot no longer equals the mutated source.
        assert frozen != triangle


class TestSearchEquivalence:
    """Full searches are bit-identical across backends."""

    @pytest.mark.parametrize("model", ("mori", "config"))
    def test_random_walk_identical(self, model):
        graph = model_graph(model, seed=3)
        frozen = freeze(graph)
        target = max(
            connected_components(graph)[0]
        )  # reachable in every model
        start = min(connected_components(graph)[0])
        for seed in (0, 11):
            a = run_search(
                RandomWalkSearch(), graph, start, target, seed=seed
            )
            b = run_search(
                RandomWalkSearch(), frozen, start, target, seed=seed
            )
            assert a == b

    @pytest.mark.parametrize("budget", (0, 1, 2, 17, None))
    def test_flooding_kernel_matches_generic(self, budget):
        """CSR fast path == generic dict path == MultiGraph path."""
        graph = MoriFamily(p=0.5, m=2).build(200, seed=5)
        frozen = freeze(graph)
        target = MoriFamily(p=0.5, m=2).theorem_target(graph)
        on_mutable = run_search(
            FloodingSearch(), graph, 1, target, budget=budget, seed=1
        )
        on_frozen = run_search(
            FloodingSearch(), frozen, 1, target, budget=budget, seed=1
        )
        assert on_frozen == on_mutable

        # An oracle *subclass* must take the generic request-by-request
        # path even on a frozen graph (recording oracles rely on this),
        # and must still produce the same result.
        class RecordingOracle(WeakOracle):
            pass

        oracle = RecordingOracle(frozen, 1, target)
        effective = (
            budget if budget is not None else 4 * frozen.num_edges + 16
        )
        generic = FloodingSearch().run(oracle, None, effective)
        assert generic == on_mutable

    def test_flooding_kernel_neighbor_success(self):
        graph = MoriFamily(p=0.5, m=1).build(150, seed=9)
        frozen = freeze(graph)
        target = MoriFamily(p=0.5, m=1).theorem_target(graph)
        a = run_search(
            FloodingSearch(), graph, 1, target, neighbor_success=True,
            seed=2,
        )
        b = run_search(
            FloodingSearch(), frozen, 1, target, neighbor_success=True,
            seed=2,
        )
        assert a == b

    def test_flooding_kernel_start_in_zone(self):
        graph = MultiGraph.from_edges(3, [(2, 1), (3, 2)])
        frozen = freeze(graph)
        result = run_search(FloodingSearch(), frozen, 2, 2, seed=0)
        assert result.found and result.requests == 0


class TestBatchedTrials:
    """One snapshot, many cells — draw-for-draw identical regrouping."""

    def test_batched_reproduces_portfolio_trial(self):
        from repro.core.families import MoriFamily as Fam
        from repro.core.trials import (
            batched_search_trial,
            family_spec,
            portfolio_factories,
            search_cost_graph_trial,
        )

        spec = family_spec(Fam(p=0.5, m=1))
        kwargs = dict(
            family=spec, size=120, portfolio="weak", seed=424242
        )
        grouped = search_cost_graph_trial(**kwargs, runs_per_graph=2)
        cells = [
            {"algorithm": name, "run_index": run_index}
            for name in portfolio_factories("weak")
            for run_index in range(2)
        ]
        for backend in ("frozen", "multigraph"):
            flat = batched_search_trial(
                **kwargs, cells=cells, backend=backend
            )
            regrouped: dict = {}
            for cell, value in zip(cells, flat):
                regrouped.setdefault(cell["algorithm"], []).append(
                    value
                )
            assert regrouped == grouped

    def test_cell_overrides_and_unknown_algorithm(self):
        from repro.core.families import MoriFamily as Fam
        from repro.core.trials import batched_search_trial, family_spec

        spec = family_spec(Fam(p=0.5, m=1))
        flat = batched_search_trial(
            family=spec,
            size=80,
            portfolio="weak",
            cells=[
                {"algorithm": "flooding", "start": 5, "target": 40},
                {"algorithm": "flooding", "start": 5, "target": 40},
            ],
            seed=3,
        )
        assert flat[0] == flat[1]  # flooding is deterministic
        assert flat[0]["start"] == 5 and flat[0]["target"] == 40
        with pytest.raises(ExperimentError):
            batched_search_trial(
                family=spec,
                size=80,
                portfolio="weak",
                cells=[{"algorithm": "not-a-member"}],
                seed=3,
            )

    def test_runner_batching_helpers(self):
        from repro.core.families import MoriFamily as Fam
        from repro.core.trials import (
            batched_search_trial,
            family_spec,
        )
        from repro.runner import (
            batched_specs,
            run_trials,
            trial_ref,
            unbatch_values,
        )

        spec = family_spec(Fam(p=0.5, m=1))
        cells = [
            {"algorithm": "flooding", "run_index": 0},
            {"algorithm": "random-walk", "run_index": 0},
        ]
        specs = batched_specs(
            "ADHOC",
            trial_ref(batched_search_trial),
            {"family": spec, "size": 80, "portfolio": "weak"},
            cells,
            graph_seeds=[1, 2],
        )
        assert [s.seed for s in specs] == [1, 2]
        outcomes = run_trials(specs)
        per_graph = unbatch_values(outcomes, len(cells))
        assert len(per_graph) == 2
        assert per_graph[0] == batched_search_trial(
            family=spec, size=80, portfolio="weak", cells=cells, seed=1
        )
        with pytest.raises(ExperimentError):
            unbatch_values(outcomes, len(cells) + 1)
        with pytest.raises(ExperimentError):
            batched_specs(
                "ADHOC",
                trial_ref(batched_search_trial),
                {},
                [],
                graph_seeds=[1],
            )

    def test_unknown_backend_rejected(self):
        from repro.core.trials import snapshot_graph

        with pytest.raises(ExperimentError):
            snapshot_graph(MultiGraph(2), "networkx")

    def test_default_backend_keeps_cache_keys_stable(self):
        """Trial values are backend-independent, so the default backend
        must stay out of the cache key: pre-snapshot stores keep
        replaying, and only a forced non-default backend forks keys."""
        from repro.core.families import MoriFamily as Fam
        from repro.core.searchability import _build_cell_specs

        def keys(backend):
            specs = _build_cell_specs(
                "E1", Fam(p=0.5, m=1), 60, "weak", 1, 1, None, 1,
                False, "default", backend,
            )
            return [spec.key() for spec in specs]

        frozen_keys = keys("frozen")
        assert "backend" not in dict(
            _build_cell_specs(
                "E1", Fam(p=0.5, m=1), 60, "weak", 1, 1, None, 1,
                False, "default", "frozen",
            )[0].params
        )
        assert keys("multigraph") != frozen_keys


def _snapshot_digest(graph) -> str:
    """Content digest of a (frozen or mutable) graph's labeled edge list.

    sha256 of canonical JSON rather than ``hash()`` so the goldens are
    stable across interpreter invocations, versions, and platforms.
    """
    import hashlib
    import json

    payload = json.dumps(
        [graph.num_vertices, [[t, h] for _, t, h in graph.edges()]],
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


#: sha256 of (n, edge list) for `family.build(n, seed=0)` — and therefore,
#: by the trajectory contract, for the checkpoint snapshot at n of one
#: seed-0 realisation evolved to the largest size.  Regenerate with
#: `_snapshot_digest` if a model's draw order legitimately changes.
TRAJECTORY_GOLDEN_SIZES = (50, 80, 120)
TRAJECTORY_GOLDEN = {
    "mori": {
        50: "80b067d38ce046e052a984ed6df8611a990a1782f5adaf658ec877b23be75436",
        80: "63bb61d0fc4e2296e684d279dc62294f70a6aa2f7fccdb77b180ff6d132c6dcb",
        120: "94c44774344ba23457c8e383e2391cb7ed85bdf933166474163901cb8963a96c",
    },
    "cooper-frieze": {
        50: "5cf4fbb4a442716fafae51b8e12fcaece6316bfde043b99b1dbd843d9621be25",
        80: "e9e749a6b17a0e6d50b363f2969c890771e4cfe1eafa40a7e0008330886414a7",
        120: "e71cea24eeb64d1c54fa4d7bbccbaf1decb62a9801ac31afa7555ae86610d919",
    },
    "ba": {
        50: "b7d41097a9943fe3b312f0a635b79c76a5b253d65d4590c20afb890c4101af4f",
        80: "539dd19deec47a8818821e0966f52c12490e291ed87e746780e29e724311950a",
        120: "65122620c3fc680472c159bbd968a029eadb269bf5f736429e3e341032180e10",
    },
}

TRAJECTORY_FAMILIES = {
    "mori": lambda: MoriFamily(p=0.5, m=2),
    "cooper-frieze": lambda: CooperFriezeFamily(),
    "ba": lambda: BarabasiAlbertFamily(m=2),
}


class TestTrajectoryCheckpoints:
    """Checkpoint snapshots == independent same-seed builds, bit for bit."""

    @pytest.mark.parametrize("model", sorted(TRAJECTORY_FAMILIES))
    def test_golden_checkpoint_digests(self, model):
        """The pinned digests hold for independent builds AND for the
        prefix snapshots of one shared trajectory, on both backends."""
        family = TRAJECTORY_FAMILIES[model]()
        golden = TRAJECTORY_GOLDEN[model]
        graph, marks = family.build_trajectory(
            TRAJECTORY_GOLDEN_SIZES, seed=0
        )
        full = freeze(graph)
        for n in TRAJECTORY_GOLDEN_SIZES:
            assert _snapshot_digest(family.build(n, seed=0)) == golden[n]
            assert _snapshot_digest(full.prefix(n, marks[n])) == golden[n]
            assert _snapshot_digest(graph.prefix(n, marks[n])) == golden[n]

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("model", sorted(TRAJECTORY_FAMILIES))
    def test_prefix_equals_independent_build(self, model, seed):
        family = TRAJECTORY_FAMILIES[model]()
        sizes = (40, 70, 110)
        graph, marks = family.build_trajectory(sizes, seed=seed)
        full = freeze(graph)
        for n in sizes:
            independent = family.build(n, seed=seed)
            snapshot = full.prefix(n, marks[n])
            # Equality and hashing follow the labeled-edge-list contract.
            assert snapshot == independent
            assert hash(snapshot) == hash(freeze(independent))
            assert graph.prefix(n, marks[n]) == independent
            # Read API answers match the independently built graph.
            assert snapshot.degree_sequence() == (
                independent.degree_sequence()
            )
            assert snapshot.num_self_loops() == (
                independent.num_self_loops()
            )
            for v in (1, n // 2, n):
                assert snapshot.incident_edges(v) == (
                    independent.incident_edges(v)
                )
                assert snapshot.neighbors(v) == independent.neighbors(v)
                assert snapshot.in_degree(v) == independent.in_degree(v)
                assert snapshot.out_degree(v) == (
                    independent.out_degree(v)
                )

    def test_prefix_of_full_graph_is_identity(self):
        family = MoriFamily(p=0.5, m=1)
        graph, marks = family.build_trajectory((30, 60), seed=1)
        full = freeze(graph)
        assert full.prefix(60, marks[60]) is full

    def test_prefix_rejects_non_past_states(self):
        graph = MultiGraph.from_edges(3, [(2, 1), (3, 1)])
        frozen = freeze(graph)
        # Cutting only the vertex count strands edge (3, 1): the pair
        # (2 vertices, 2 edges) was never a state this graph passed
        # through.
        with pytest.raises(GraphConstructionError):
            frozen.prefix(2, 2)
        with pytest.raises(GraphConstructionError):
            graph.prefix(2, 2)
        with pytest.raises(GraphConstructionError):
            frozen.prefix(4, 1)
        with pytest.raises(GraphConstructionError):
            frozen.prefix(3, 5)
        # The genuine past state is fine.
        assert frozen.prefix(2, 1) == MultiGraph.from_edges(2, [(2, 1)])

    def test_prefix_fallback_matches_numpy_path(self, monkeypatch):
        import repro.graphs.frozen as frozen_module

        family = CooperFriezeFamily()
        graph, marks = family.build_trajectory((30, 60), seed=9)
        with_numpy = freeze(graph).prefix(30, marks[30])
        monkeypatch.setattr(frozen_module, "HAVE_NUMPY", False)
        without_numpy = freeze(graph).prefix(30, marks[30])
        assert without_numpy == with_numpy
        assert without_numpy.degree_sequence() == (
            with_numpy.degree_sequence()
        )
        for v in with_numpy.vertices():
            assert without_numpy.incident_edges(v) == (
                with_numpy.incident_edges(v)
            )
            assert without_numpy.neighbors(v) == with_numpy.neighbors(v)

    def test_configuration_family_rejects_trajectory(self):
        from repro.errors import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            ConfigurationFamily().build_trajectory((40, 80), seed=0)


class TestTrajectoryTrials:
    """One trajectory spec reproduces the independent trials draw-for-draw."""

    def test_checkpoint_cells_equal_independent_trials(self):
        from repro.core.trials import (
            family_spec,
            search_cost_graph_trial,
            trajectory_scaling_trial,
        )

        spec = family_spec(MoriFamily(p=0.5, m=1))
        sizes = [60, 120]
        for backend in ("frozen", "multigraph"):
            value = trajectory_scaling_trial(
                family=spec,
                sizes=sizes,
                portfolio="high-degree",
                runs_per_graph=2,
                seed=77,
                backend=backend,
            )
            for n in sizes:
                assert value[str(n)] == search_cost_graph_trial(
                    family=spec,
                    size=n,
                    portfolio="high-degree",
                    runs_per_graph=2,
                    seed=77,
                )

    def test_slowdown_checkpoints_equal_independent_trials(self):
        from repro.core.trials import (
            family_spec,
            simulation_slowdown_trial,
            trajectory_slowdown_trial,
        )

        spec = family_spec(MoriFamily(p=0.25, m=1))
        sizes = [60, 120]
        value = trajectory_slowdown_trial(
            family=spec, sizes=sizes, seed=5
        )
        for n in sizes:
            assert value[str(n)] == simulation_slowdown_trial(
                family=spec, size=n, seed=5
            )

    def test_runner_trajectory_helpers(self):
        from repro.core.trials import (
            family_spec,
            trajectory_scaling_trial,
        )
        from repro.runner import (
            run_trials,
            split_trajectory_values,
            trajectory_specs,
            trial_ref,
        )
        from repro.errors import ExperimentError

        spec = family_spec(MoriFamily(p=0.5, m=1))
        specs = trajectory_specs(
            "ADHOC",
            trial_ref(trajectory_scaling_trial),
            {"family": spec, "portfolio": "high-degree",
             "runs_per_graph": 1},
            [120, 60],
            graph_seeds=[3, 4],
        )
        assert [s.seed for s in specs] == [3, 4]
        assert specs[0].params["sizes"] == [60, 120]  # canonicalized
        outcomes = run_trials(specs)
        per_size = split_trajectory_values(outcomes, [60, 120])
        assert set(per_size) == {60, 120}
        assert len(per_size[60]) == 2
        assert per_size[60][0] == trajectory_scaling_trial(
            family=spec, sizes=[60, 120], portfolio="high-degree",
            runs_per_graph=1, seed=3,
        )["60"]
        with pytest.raises(ExperimentError):
            split_trajectory_values(outcomes, [60, 120, 999])
        with pytest.raises(ExperimentError):
            trajectory_specs(
                "ADHOC", "m:f", {}, [], graph_seeds=[1]
            )

    def test_trajectory_value_survives_store_round_trip(self, tmp_path):
        """String size keys keep the value identical through JSON."""
        from repro.core.trials import (
            family_spec,
            trajectory_scaling_trial,
        )
        from repro.runner import (
            ResultStore,
            run_trials,
            trajectory_specs,
            trial_ref,
        )

        spec = family_spec(MoriFamily(p=0.5, m=1))
        specs = trajectory_specs(
            "ADHOC",
            trial_ref(trajectory_scaling_trial),
            {"family": spec, "portfolio": "high-degree",
             "runs_per_graph": 1},
            [60, 120],
            graph_seeds=[8],
        )
        store = ResultStore(tmp_path)
        fresh = run_trials(specs, store=store)
        replayed = run_trials(specs, store=store)
        assert replayed[0].from_cache
        assert replayed[0].value == fresh[0].value


class TestArrayFallback:
    """Without numpy the CSR lives in stdlib arrays; answers unchanged."""

    def test_fallback_equivalence(self, monkeypatch):
        import repro.graphs.frozen as frozen_module

        graph = MoriFamily(p=0.5, m=2).build(80, seed=4)
        monkeypatch.setattr(frozen_module, "HAVE_NUMPY", False)
        frozen = freeze(graph)  # built on the array('q') path
        assert vectorized_bfs_distances(frozen, 1) is None
        assert vectorized_connected_components(frozen) is None
        assert vectorized_degree_histogram(frozen) is None
        assert frozen.degree_sequence() == graph.degree_sequence()
        assert connected_components(frozen) == (
            connected_components(graph)
        )
        assert bfs_distances(frozen, 1) == bfs_distances(graph, 1)
        for v in list(graph.vertices())[:20]:
            assert frozen.incident_edges(v) == graph.incident_edges(v)
            assert frozen.neighbors(v) == graph.neighbors(v)
        target = MoriFamily(p=0.5, m=2).theorem_target(graph)
        assert run_search(
            FloodingSearch(), frozen, 1, target, seed=1
        ) == run_search(FloodingSearch(), graph, 1, target, seed=1)

"""Backend-equivalence battery: FrozenGraph must mirror MultiGraph.

The CSR snapshot is only allowed to change wall-clock time.  These
tests pin the contract from every side:

* **property grid** — across seeded instances of all graph models
  (Móri, Cooper–Frieze, BA, Kleinberg, configuration), every read
  query (degrees, incident edge ids, neighbors, self-loop counts,
  components, BFS distances, ...) answers identically on both backends;
* **search equivalence** — full searches, including the flooding CSR
  kernel's fast path, return bit-identical ``SearchResult`` values;
* **batched trials** — :func:`repro.core.trials.batched_search_trial`
  reproduces the portfolio trial draw-for-draw, on either backend;
* **freeze-then-hash** — the documented mutability caveat on
  ``MultiGraph.__hash__`` and the snapshot's stability under it;
* **fallback** — with numpy unavailable, the stdlib-``array`` CSR
  answers the same queries and the vectorised kernels bow out cleanly.
"""

from __future__ import annotations

import pytest

from repro.core.families import (
    BarabasiAlbertFamily,
    ConfigurationFamily,
    CooperFriezeFamily,
    MoriFamily,
)
from repro.errors import ExperimentError, GraphConstructionError
from repro.graphs import FrozenGraph, MultiGraph, freeze, kleinberg_grid
from repro.graphs.components import connected_components
from repro.graphs.frozen import (
    vectorized_bfs_distances,
    vectorized_connected_components,
    vectorized_degree_histogram,
)
from repro.analysis.degrees import degree_histogram
from repro.analysis.diameter import bfs_distances
from repro.search.algorithms import FloodingSearch, RandomWalkSearch
from repro.search.oracle import WeakOracle
from repro.search.process import run_search


def model_graph(model: str, seed: int) -> MultiGraph:
    """One modest instance of each model the paper touches."""
    if model == "mori":
        return MoriFamily(p=0.5, m=2).build(150, seed=seed)
    if model == "cooper-frieze":
        return CooperFriezeFamily().build(120, seed=seed)
    if model == "ba":
        return BarabasiAlbertFamily(m=2).build(150, seed=seed)
    if model == "config":
        # Unrestricted configuration graph: disconnected, with loops
        # and parallel edges — the adversarial case for a snapshot.
        from repro.graphs.configuration import (
            power_law_configuration_graph,
        )

        return power_law_configuration_graph(150, 2.5, seed=seed)
    if model == "kleinberg":
        return kleinberg_grid(10, r=2.0, q=1, seed=seed).graph
    raise AssertionError(model)


MODELS = ("mori", "cooper-frieze", "ba", "config", "kleinberg")
SEEDS = (0, 7)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("model", MODELS)
class TestBackendEquivalence:
    """Frozen answers == mutable answers, across the model grid."""

    def test_scalar_queries_agree(self, model, seed):
        graph = model_graph(model, seed)
        frozen = freeze(graph)
        assert frozen.num_vertices == graph.num_vertices
        assert frozen.num_edges == graph.num_edges
        assert frozen.vertices() == graph.vertices()
        assert frozen.num_self_loops() == graph.num_self_loops()
        assert frozen.is_connected() == graph.is_connected()
        assert frozen.degree_sequence() == graph.degree_sequence()

    def test_per_vertex_queries_agree(self, model, seed):
        graph = model_graph(model, seed)
        frozen = freeze(graph)
        for v in graph.vertices():
            assert frozen.degree(v) == graph.degree(v)
            assert frozen.in_degree(v) == graph.in_degree(v)
            assert frozen.out_degree(v) == graph.out_degree(v)
            assert frozen.incident_edges(v) == graph.incident_edges(v)
            assert frozen.neighbors(v) == graph.neighbors(v)
            assert frozen.unique_neighbors(v) == (
                graph.unique_neighbors(v)
            )

    def test_per_edge_queries_agree(self, model, seed):
        graph = model_graph(model, seed)
        frozen = freeze(graph)
        assert list(frozen.edges()) == list(graph.edges())
        for eid in range(graph.num_edges):
            tail, head = graph.edge_endpoints(eid)
            assert frozen.edge_endpoints(eid) == (tail, head)
            assert frozen.other_endpoint(eid, tail) == (
                graph.other_endpoint(eid, tail)
            )
            assert frozen.other_endpoint(eid, head) == (
                graph.other_endpoint(eid, head)
            )

    def test_components_agree(self, model, seed):
        graph = model_graph(model, seed)
        frozen = freeze(graph)
        assert connected_components(frozen) == (
            connected_components(graph)
        )

    def test_bfs_distances_agree(self, model, seed):
        graph = model_graph(model, seed)
        frozen = freeze(graph)
        for source in (1, graph.num_vertices, graph.num_vertices // 2):
            if source >= 1:
                assert bfs_distances(frozen, source) == (
                    bfs_distances(graph, source)
                )

    def test_degree_histogram_agrees(self, model, seed):
        graph = model_graph(model, seed)
        frozen = freeze(graph)
        assert degree_histogram(frozen) == degree_histogram(graph)

    def test_python_int_types_everywhere(self, model, seed):
        """No numpy scalars may leak into the scalar API (JSON safety)."""
        frozen = freeze(model_graph(model, seed))
        v = frozen.num_vertices
        samples = (
            frozen.degree(1),
            *frozen.incident_edges(1)[:3],
            *frozen.neighbors(v)[:3],
            *frozen.degree_sequence()[:3],
            *bfs_distances(frozen, 1)[:3],
        )
        for value in samples:
            assert type(value) is int


class TestVectorizedKernels:
    """The numpy kernels answer exactly; non-frozen inputs bow out."""

    def test_kernels_decline_multigraph(self, triangle):
        assert vectorized_bfs_distances(triangle, 1) is None
        assert vectorized_connected_components(triangle) is None
        assert vectorized_degree_histogram(triangle) is None

    def test_component_ordering_matches_generic(self):
        # Equal-size components: largest first, ties by smallest member
        # (the generic discovery-order + stable-sort behaviour).
        graph = MultiGraph(7)
        graph.add_edge(2, 1)
        graph.add_edge(4, 3)
        graph.add_edge(6, 5)
        graph.add_edge(7, 5)
        frozen = freeze(graph)
        expected = connected_components(graph)
        assert expected == [[5, 6, 7], [1, 2], [3, 4]]
        assert connected_components(frozen) == expected

    def test_isolated_vertices_and_empty_graphs(self):
        for n in (0, 1, 5):
            frozen = freeze(MultiGraph(n))
            graph = MultiGraph(n)
            assert connected_components(frozen) == (
                connected_components(graph)
            )
            assert frozen.is_connected() == graph.is_connected()

    def test_self_loops_and_parallel_edges(self, loop_graph):
        frozen = freeze(loop_graph)
        assert frozen.neighbors(2) == loop_graph.neighbors(2)
        assert frozen.degree(2) == 3  # loop counts twice
        assert bfs_distances(frozen, 1) == bfs_distances(loop_graph, 1)


class TestImmutability:
    def test_mutators_raise(self, triangle):
        frozen = freeze(triangle)
        with pytest.raises(GraphConstructionError):
            frozen.add_vertex()
        with pytest.raises(GraphConstructionError):
            frozen.add_edge(1, 2)

    def test_invalid_queries_raise_like_multigraph(self, triangle):
        frozen = freeze(triangle)
        with pytest.raises(GraphConstructionError):
            frozen.degree(0)
        with pytest.raises(GraphConstructionError):
            frozen.incident_edges(4)
        with pytest.raises(GraphConstructionError):
            frozen.edge_endpoints(99)
        with pytest.raises(GraphConstructionError):
            frozen.other_endpoint(0, 3)  # vertex 3 not on edge 0

    def test_freeze_is_idempotent(self, triangle):
        frozen = freeze(triangle)
        assert freeze(frozen) is frozen
        assert FrozenGraph.from_multigraph(frozen) is frozen

    def test_thaw_round_trips(self, loop_graph):
        frozen = freeze(loop_graph)
        thawed = frozen.thaw()
        assert thawed == loop_graph
        assert thawed is not loop_graph
        eid = thawed.add_edge(1, 1)  # thawed copy is mutable again
        assert eid == loop_graph.num_edges


class TestFreezeThenHashContract:
    """The documented hashing rules for both backends."""

    def test_snapshot_hash_and_equality_cross_backend(self, triangle):
        frozen = freeze(triangle)
        assert frozen == triangle
        assert triangle == frozen.thaw()
        assert hash(frozen) == hash(triangle)
        assert freeze(triangle.copy()) == frozen

    def test_multigraph_hash_breaks_on_mutation(self, triangle):
        """The caveat the docstring warns about, made concrete."""
        lookup = {triangle: "registered"}
        assert lookup[triangle] == "registered"
        triangle.add_edge(3, 1)
        # The mutated graph no longer hashes to its old bucket: the
        # dict can neither find it nor (in general) evict it by key.
        with pytest.raises(KeyError):
            lookup[triangle]

    def test_frozen_hash_survives_source_mutation(self, triangle):
        frozen = freeze(triangle)
        before = hash(frozen)
        lookup = {frozen: "registered"}
        triangle.add_edge(3, 1)  # mutate the source after snapshotting
        assert hash(frozen) == before
        assert lookup[frozen] == "registered"
        # ... and the snapshot no longer equals the mutated source.
        assert frozen != triangle


class TestSearchEquivalence:
    """Full searches are bit-identical across backends."""

    @pytest.mark.parametrize("model", ("mori", "config"))
    def test_random_walk_identical(self, model):
        graph = model_graph(model, seed=3)
        frozen = freeze(graph)
        target = max(
            connected_components(graph)[0]
        )  # reachable in every model
        start = min(connected_components(graph)[0])
        for seed in (0, 11):
            a = run_search(
                RandomWalkSearch(), graph, start, target, seed=seed
            )
            b = run_search(
                RandomWalkSearch(), frozen, start, target, seed=seed
            )
            assert a == b

    @pytest.mark.parametrize("budget", (0, 1, 2, 17, None))
    def test_flooding_kernel_matches_generic(self, budget):
        """CSR fast path == generic dict path == MultiGraph path."""
        graph = MoriFamily(p=0.5, m=2).build(200, seed=5)
        frozen = freeze(graph)
        target = MoriFamily(p=0.5, m=2).theorem_target(graph)
        on_mutable = run_search(
            FloodingSearch(), graph, 1, target, budget=budget, seed=1
        )
        on_frozen = run_search(
            FloodingSearch(), frozen, 1, target, budget=budget, seed=1
        )
        assert on_frozen == on_mutable

        # An oracle *subclass* must take the generic request-by-request
        # path even on a frozen graph (recording oracles rely on this),
        # and must still produce the same result.
        class RecordingOracle(WeakOracle):
            pass

        oracle = RecordingOracle(frozen, 1, target)
        effective = (
            budget if budget is not None else 4 * frozen.num_edges + 16
        )
        generic = FloodingSearch().run(oracle, None, effective)
        assert generic == on_mutable

    def test_flooding_kernel_neighbor_success(self):
        graph = MoriFamily(p=0.5, m=1).build(150, seed=9)
        frozen = freeze(graph)
        target = MoriFamily(p=0.5, m=1).theorem_target(graph)
        a = run_search(
            FloodingSearch(), graph, 1, target, neighbor_success=True,
            seed=2,
        )
        b = run_search(
            FloodingSearch(), frozen, 1, target, neighbor_success=True,
            seed=2,
        )
        assert a == b

    def test_flooding_kernel_start_in_zone(self):
        graph = MultiGraph.from_edges(3, [(2, 1), (3, 2)])
        frozen = freeze(graph)
        result = run_search(FloodingSearch(), frozen, 2, 2, seed=0)
        assert result.found and result.requests == 0


class TestBatchedTrials:
    """One snapshot, many cells — draw-for-draw identical regrouping."""

    def test_batched_reproduces_portfolio_trial(self):
        from repro.core.families import MoriFamily as Fam
        from repro.core.trials import (
            batched_search_trial,
            family_spec,
            portfolio_factories,
            search_cost_graph_trial,
        )

        spec = family_spec(Fam(p=0.5, m=1))
        kwargs = dict(
            family=spec, size=120, portfolio="weak", seed=424242
        )
        grouped = search_cost_graph_trial(**kwargs, runs_per_graph=2)
        cells = [
            {"algorithm": name, "run_index": run_index}
            for name in portfolio_factories("weak")
            for run_index in range(2)
        ]
        for backend in ("frozen", "multigraph"):
            flat = batched_search_trial(
                **kwargs, cells=cells, backend=backend
            )
            regrouped: dict = {}
            for cell, value in zip(cells, flat):
                regrouped.setdefault(cell["algorithm"], []).append(
                    value
                )
            assert regrouped == grouped

    def test_cell_overrides_and_unknown_algorithm(self):
        from repro.core.families import MoriFamily as Fam
        from repro.core.trials import batched_search_trial, family_spec

        spec = family_spec(Fam(p=0.5, m=1))
        flat = batched_search_trial(
            family=spec,
            size=80,
            portfolio="weak",
            cells=[
                {"algorithm": "flooding", "start": 5, "target": 40},
                {"algorithm": "flooding", "start": 5, "target": 40},
            ],
            seed=3,
        )
        assert flat[0] == flat[1]  # flooding is deterministic
        assert flat[0]["start"] == 5 and flat[0]["target"] == 40
        with pytest.raises(ExperimentError):
            batched_search_trial(
                family=spec,
                size=80,
                portfolio="weak",
                cells=[{"algorithm": "not-a-member"}],
                seed=3,
            )

    def test_runner_batching_helpers(self):
        from repro.core.families import MoriFamily as Fam
        from repro.core.trials import (
            batched_search_trial,
            family_spec,
        )
        from repro.runner import (
            batched_specs,
            run_trials,
            trial_ref,
            unbatch_values,
        )

        spec = family_spec(Fam(p=0.5, m=1))
        cells = [
            {"algorithm": "flooding", "run_index": 0},
            {"algorithm": "random-walk", "run_index": 0},
        ]
        specs = batched_specs(
            "ADHOC",
            trial_ref(batched_search_trial),
            {"family": spec, "size": 80, "portfolio": "weak"},
            cells,
            graph_seeds=[1, 2],
        )
        assert [s.seed for s in specs] == [1, 2]
        outcomes = run_trials(specs)
        per_graph = unbatch_values(outcomes, len(cells))
        assert len(per_graph) == 2
        assert per_graph[0] == batched_search_trial(
            family=spec, size=80, portfolio="weak", cells=cells, seed=1
        )
        with pytest.raises(ExperimentError):
            unbatch_values(outcomes, len(cells) + 1)
        with pytest.raises(ExperimentError):
            batched_specs(
                "ADHOC",
                trial_ref(batched_search_trial),
                {},
                [],
                graph_seeds=[1],
            )

    def test_unknown_backend_rejected(self):
        from repro.core.trials import snapshot_graph

        with pytest.raises(ExperimentError):
            snapshot_graph(MultiGraph(2), "networkx")

    def test_default_backend_keeps_cache_keys_stable(self):
        """Trial values are backend-independent, so the default backend
        must stay out of the cache key: pre-snapshot stores keep
        replaying, and only a forced non-default backend forks keys."""
        from repro.core.families import MoriFamily as Fam
        from repro.core.searchability import _build_cell_specs

        def keys(backend):
            specs = _build_cell_specs(
                "E1", Fam(p=0.5, m=1), 60, "weak", 1, 1, None, 1,
                False, "default", backend,
            )
            return [spec.key() for spec in specs]

        frozen_keys = keys("frozen")
        assert "backend" not in dict(
            _build_cell_specs(
                "E1", Fam(p=0.5, m=1), 60, "weak", 1, 1, None, 1,
                False, "default", "frozen",
            )[0].params
        )
        assert keys("multigraph") != frozen_keys


class TestArrayFallback:
    """Without numpy the CSR lives in stdlib arrays; answers unchanged."""

    def test_fallback_equivalence(self, monkeypatch):
        import repro.graphs.frozen as frozen_module

        graph = MoriFamily(p=0.5, m=2).build(80, seed=4)
        monkeypatch.setattr(frozen_module, "HAVE_NUMPY", False)
        frozen = freeze(graph)  # built on the array('q') path
        assert vectorized_bfs_distances(frozen, 1) is None
        assert vectorized_connected_components(frozen) is None
        assert vectorized_degree_histogram(frozen) is None
        assert frozen.degree_sequence() == graph.degree_sequence()
        assert connected_components(frozen) == (
            connected_components(graph)
        )
        assert bfs_distances(frozen, 1) == bfs_distances(graph, 1)
        for v in list(graph.vertices())[:20]:
            assert frozen.incident_edges(v) == graph.incident_edges(v)
            assert frozen.neighbors(v) == graph.neighbors(v)
        target = MoriFamily(p=0.5, m=2).theorem_target(graph)
        assert run_search(
            FloodingSearch(), frozen, 1, target, seed=1
        ) == run_search(FloodingSearch(), graph, 1, target, seed=1)

"""Unit tests for Lemma 1 / theorem bound calculators and empirical profiles."""

from __future__ import annotations

import math

import pytest

from repro.errors import AnalysisError, InvalidParameterError
from repro.equivalence.empirical import (
    profile_spread,
    window_indegree_profile,
)
from repro.equivalence.lower_bound import (
    lemma1_lower_bound,
    strong_model_bound,
    theorem1_weak_bound,
    theorem2_weak_bound,
)


class TestLemma1:
    def test_formula(self):
        assert lemma1_lower_bound(10, 0.5) == 2.5
        assert lemma1_lower_bound(0, 1.0) == 0.0

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            lemma1_lower_bound(-1, 0.5)
        with pytest.raises(InvalidParameterError):
            lemma1_lower_bound(5, 1.5)


class TestTheorem1Bound:
    def test_scales_like_sqrt(self):
        # bound(n) / sqrt(n) should stabilise to a positive constant.
        ratios = [
            theorem1_weak_bound(n, 0.5) / math.sqrt(n)
            for n in (100, 400, 1600, 6400)
        ]
        assert all(r > 0.1 for r in ratios)
        assert max(ratios) / min(ratios) < 1.6

    def test_increasing_in_n(self):
        values = [theorem1_weak_bound(n, 0.5) for n in (50, 200, 800)]
        assert values == sorted(values)

    def test_uses_exact_probability(self):
        # With p = 1 the event is certain, so the bound equals |V|/2.
        n = 101
        assert theorem1_weak_bound(n, 1.0) == pytest.approx(
            math.isqrt(n - 2) / 2
        )

    def test_bound_above_lemma3_floor(self):
        for p in (0.1, 0.5, 0.9):
            n = 500
            floor = (
                math.isqrt(n - 2) * math.exp(-(1 - p)) / 2
            )
            assert theorem1_weak_bound(n, p) >= floor - 1e-9


class TestTheorem2Bound:
    def test_scales_like_sqrt(self):
        ratios = [
            theorem2_weak_bound(n) / math.sqrt(n)
            for n in (100, 1600, 25600)
        ]
        assert max(ratios) / min(ratios) < 1.5

    def test_alpha_validation(self):
        with pytest.raises(InvalidParameterError):
            theorem2_weak_bound(100, alpha=0.0)
        with pytest.raises(InvalidParameterError):
            theorem2_weak_bound(100, alpha=1.0)

    def test_target_validation(self):
        with pytest.raises(InvalidParameterError):
            theorem2_weak_bound(2)


class TestStrongBound:
    def test_exponent(self):
        p, eps = 0.25, 0.05
        v1 = strong_model_bound(100, p, eps)
        v2 = strong_model_bound(10000, p, eps)
        # Ratio should be 100^(0.5 - 0.3) = 100^0.2.
        assert v2 / v1 == pytest.approx(100 ** (0.5 - p - eps), rel=1e-9)

    def test_trivial_for_large_p(self):
        # p >= 1/2 makes the exponent non-positive: bound decays.
        assert strong_model_bound(10000, 0.6) < strong_model_bound(
            100, 0.6
        )

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            strong_model_bound(100, 1.5)
        with pytest.raises(InvalidParameterError):
            strong_model_bound(100, 0.3, epsilon=0.0)
        with pytest.raises(InvalidParameterError):
            strong_model_bound(2, 0.3)


class TestEmpiricalProfile:
    def test_profile_flat_under_conditioning(self):
        # Lemma 2 consequence: conditional mean indegrees across the
        # window are equal; with moderate sampling the spread is small.
        profile = window_indegree_profile(
            n=40, a=20, b=24, p=0.5, num_samples=3000, seed=0
        )
        assert profile.num_event_samples > 100
        assert len(profile.mean_indegree) == 4
        assert profile_spread(profile) < 0.25

    def test_event_rate_close_to_exact(self):
        from repro.equivalence.exact import exact_event_probability

        profile = window_indegree_profile(
            n=30, a=20, b=24, p=0.5, num_samples=3000, seed=1
        )
        exact = float(exact_event_probability(20, 24, 0.5))
        assert abs(profile.event_rate - exact) < 0.05

    def test_no_event_samples_raises(self):
        # A window far wider than sqrt(a) makes the event essentially
        # impossible at p = 0; expect a clean error.
        with pytest.raises(AnalysisError):
            window_indegree_profile(
                n=60, a=3, b=59, p=0.0, num_samples=50, seed=2
            )

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            window_indegree_profile(10, 0, 5, 0.5, 10)
        with pytest.raises(InvalidParameterError):
            window_indegree_profile(10, 3, 5, 0.5, 0)

    def test_spread_of_empty_profile(self):
        from repro.equivalence.empirical import WindowProfile

        empty = WindowProfile(
            a=5, b=5, num_samples=10, num_event_samples=10,
            mean_indegree=(),
        )
        assert profile_spread(empty) == 0.0

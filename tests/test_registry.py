"""The declarative experiment registry and its CLI surface.

Three layers are pinned here:

1. **Wrapper/spec parity** — every registered spec's declared params
   and capabilities must match its public ``e<n>_...`` wrapper
   signature exactly (names, order, defaults).  The wrappers are thin
   registry delegates kept for API stability; this test is what
   prevents the two views from drifting apart.
2. **Registry semantics** — capability declarations resolve to
   execution contexts, undeclared capabilities are rejected from the
   Python API, axis vocabularies are validated once.
3. **CLI derivation** — ``repro list`` prints the capability matrix,
   ``--set key=value`` coerces (and rejects) per the typed schema,
   capability warnings come from declarations, comma-separated ids
   and ``all`` enumerate the registry, and E20 runs end-to-end with
   no experiment-specific CLI code.
"""

from __future__ import annotations

import inspect

import pytest

from repro.cli import QUICK_OVERRIDES, format_listing, main
from repro.core.experiments import ALL_EXPERIMENTS
from repro.core.registry import (
    CAPABILITIES,
    CAPABILITY_PARAMS,
    ExecutionContext,
    ExperimentSpec,
    Param,
    REGISTRY,
    Registry,
    run_experiment,
    INT,
)
from repro.errors import ExperimentError
from repro.graphs.frozen import HAVE_NUMPY

needs_numpy = pytest.mark.skipif(
    not HAVE_NUMPY, reason="ensemble engine requires numpy"
)


class TestWrapperSpecParity:
    """The drift guard: spec schema == public wrapper signature."""

    @pytest.mark.parametrize("experiment_id", REGISTRY.ids())
    def test_signature_matches_declaration(self, experiment_id):
        spec = REGISTRY.get(experiment_id)
        wrapper = ALL_EXPERIMENTS[experiment_id]
        signature = inspect.signature(wrapper)
        expected = [param.name for param in spec.params] + [
            CAPABILITY_PARAMS[capability][0]
            for capability in spec.capabilities
        ]
        assert list(signature.parameters) == expected

    @pytest.mark.parametrize("experiment_id", REGISTRY.ids())
    def test_defaults_match_declaration(self, experiment_id):
        spec = REGISTRY.get(experiment_id)
        wrapper = ALL_EXPERIMENTS[experiment_id]
        signature = inspect.signature(wrapper)
        declared = {p.name: p.default for p in spec.params}
        declared.update(
            {
                CAPABILITY_PARAMS[capability][0]: default
                for capability, default in spec.capabilities.items()
            }
        )
        for name, parameter in signature.parameters.items():
            assert parameter.default == declared[name], (
                f"{experiment_id}.{name}: wrapper default "
                f"{parameter.default!r} != declared {declared[name]!r}"
            )

    @pytest.mark.parametrize("experiment_id", REGISTRY.ids())
    def test_capabilities_are_canonical(self, experiment_id):
        spec = REGISTRY.get(experiment_id)
        declared = tuple(spec.capabilities)
        assert set(declared) <= set(CAPABILITIES)
        # Canonical order: declaration order never leaks into the
        # wrapper parameter order.
        assert declared == tuple(
            c for c in CAPABILITIES if c in declared
        )

    @pytest.mark.parametrize("experiment_id", REGISTRY.ids())
    def test_quick_overrides_match_declared_params(self, experiment_id):
        spec = REGISTRY.get(experiment_id)
        assert set(QUICK_OVERRIDES[experiment_id]) <= set(
            spec.param_names
        )

    def test_wrapper_and_spec_run_identically(self):
        from repro.core.experiments import e10_equivalence_exact

        via_wrapper = e10_equivalence_exact(n=6, p_values=(0.5, 1.0))
        via_spec = REGISTRY.get("E10").run(
            {"n": 6, "p_values": (0.5, 1.0)}
        )
        assert via_wrapper.derived == via_spec.derived


class TestRegistrySemantics:
    def test_ids_are_e1_to_e22(self):
        assert REGISTRY.ids() == [f"E{i}" for i in range(1, 23)]

    def test_unknown_id_error_lists_registry(self):
        with pytest.raises(ExperimentError, match="E20"):
            REGISTRY.get("E99")

    def test_undeclared_capability_rejected_from_python_api(self):
        # E4 declares no capabilities at all.
        with pytest.raises(ExperimentError, match="jobs"):
            run_experiment("E4", jobs=4)

    def test_unknown_param_rejected(self):
        with pytest.raises(ExperimentError, match="bogus"):
            run_experiment("E10", bogus=1)

    def test_axis_vocabulary_validated_once(self):
        spec = REGISTRY.get("E17")
        with pytest.raises(ExperimentError, match="unknown mode"):
            spec.make_context(mode="coupled")
        spec = REGISTRY.get("E1")
        with pytest.raises(ExperimentError, match="unknown graph backend"):
            spec.make_context(backend="sparse")
        with pytest.raises(ExperimentError, match="unknown search engine"):
            spec.make_context(engine="gpu")

    def test_declared_defaults_reach_the_context(self):
        context = REGISTRY.get("E19").make_context()
        assert context.mode == "trajectory"
        assert context.experiment_id == "E19"
        assert context.jobs == 1
        assert context.store is None

    def test_cache_dir_resolves_to_a_store(self, tmp_path):
        context = REGISTRY.get("E1").make_context(
            cache_dir=str(tmp_path / "cache")
        )
        assert context.store is not None

    def test_registration_validates_body_signature(self):
        registry = Registry()
        with pytest.raises(ExperimentError, match="declares"):

            @registry.register(
                "EX",
                title="drifting body",
                params=(Param("n", INT, 1),),
            )
            def _body(ctx, *, wrong_name):  # pragma: no cover
                return None

    def test_registration_rejects_capability_name_clash(self):
        registry = Registry()
        with pytest.raises(ExperimentError, match="collide"):

            @registry.register(
                "EX",
                title="param shadows capability",
                params=(Param("jobs", INT, 1),),
            )
            def _body(ctx, *, jobs):  # pragma: no cover
                return None

    def test_context_defaults_match_capability_params(self):
        """The axis defaults are spelled in CAPABILITY_PARAMS *and* as
        ExecutionContext field defaults (undeclared capabilities fall
        back to the latter); this pins the two against drifting."""
        context = ExecutionContext()
        assert context.jobs == CAPABILITY_PARAMS["jobs"][1]
        assert context.store is CAPABILITY_PARAMS["cache"][1]
        assert context.backend == CAPABILITY_PARAMS["backend"][1]
        assert context.engine == CAPABILITY_PARAMS["engine"][1]
        assert context.mode == CAPABILITY_PARAMS["mode"][1]
        assert context.store_backend is CAPABILITY_PARAMS["store"][1]

    def test_trial_params_extra_policy(self):
        # Defaults stay out of trial params (cache-key stability);
        # forced non-defaults enter.
        assert ExecutionContext().trial_params_extra() == {}
        assert ExecutionContext(
            backend="multigraph", engine="ensemble"
        ).trial_params_extra() == {
            "backend": "multigraph",
            "engine": "ensemble",
        }


class TestAuditedAxes:
    """Satellite audit: E9/E12/E18/E19 gained their missing axes."""

    def test_matrix_rows(self):
        matrix = REGISTRY.capability_matrix()
        assert matrix["E9"] == (
            "jobs", "cache", "backend", "engine", "generator",
            "store",
        )
        assert matrix["E12"] == ("backend",)
        assert matrix["E18"] == (
            "jobs", "cache", "backend", "engine", "mode", "generator",
            "store",
        )
        assert matrix["E19"] == (
            "jobs", "cache", "backend", "engine", "mode", "generator",
            "store",
        )
        # E8 stays axis-free on purpose: greedy routing navigates by
        # lattice coordinates, not through the oracle machinery.
        assert matrix["E8"] == ()

    def test_e12_backend_invariant(self):
        from repro.core.experiments import e12_percolation

        kwargs = dict(
            n=400, replica_counts=(0, 8), num_queries=5, seed=12
        )
        frozen = e12_percolation(**kwargs)
        multigraph = e12_percolation(**kwargs, backend="multigraph")
        assert frozen.derived == multigraph.derived

    def test_e9_backend_invariant(self):
        from repro.core.experiments import e9_diameter_vs_search

        kwargs = dict(sizes=(100, 200), num_graphs=2, seed=9)
        frozen = e9_diameter_vs_search(**kwargs)
        multigraph = e9_diameter_vs_search(
            **kwargs, backend="multigraph"
        )
        assert frozen.derived == multigraph.derived

    @needs_numpy
    def test_e18_engine_invariant(self):
        from repro.core.experiments import e18_start_rule

        kwargs = dict(
            sizes=(60, 120), num_graphs=2, runs_per_graph=1, seed=18
        )
        serial = e18_start_rule(**kwargs)
        ensemble = e18_start_rule(**kwargs, engine="ensemble")
        assert serial.derived == ensemble.derived

    @needs_numpy
    def test_e19_engine_invariant(self):
        from repro.core.experiments import e19_trajectory_scaling

        kwargs = dict(
            sizes=(100, 200), num_graphs=2, runs_per_graph=1, seed=19
        )
        serial = e19_trajectory_scaling(**kwargs)
        ensemble = e19_trajectory_scaling(**kwargs, engine="ensemble")
        assert serial.derived == ensemble.derived


class TestE20:
    """The registry's extension proof: a pure-spec experiment."""

    QUICK = dict(
        sizes=(60, 120), num_graphs=2, runs_per_graph=1, seed=20
    )

    def test_shape(self):
        from repro.core.experiments import e20_cross_model

        result = e20_cross_model(**self.QUICK)
        assert result.experiment_id == "E20"
        families = (
            "mori(m=2,p=0.5)",
            "cooper-frieze(a=0.75)",
            "config(k=2.5)",
        )
        for portfolio in ("weak", "strong"):
            for family in families:
                assert (
                    f"cheapest_exponent/{portfolio}/{family}"
                    in result.derived
                )
                assert (
                    f"mean@largest/{portfolio}/{family}"
                    in result.derived
                )
        assert "min_exponent" in result.derived
        grid, fits = result.tables
        # 2 portfolios x 3 families x 2 sizes x portfolio width.
        assert len(grid.rows) == 2 * 3 * (8 + 3)
        assert len(fits.rows) == 3 * (8 + 3)

    def test_jobs_and_cache_compose(self, tmp_path, monkeypatch):
        from repro.core.experiments import e20_cross_model
        from repro.runner import TrialSpec

        cache = str(tmp_path / "cache")
        first = e20_cross_model(**self.QUICK, jobs=2, cache_dir=cache)
        serial = e20_cross_model(**self.QUICK)
        assert first.derived == serial.derived

        def exploding_execute(self):
            raise AssertionError("recomputed despite warm cache")

        monkeypatch.setattr(TrialSpec, "execute", exploding_execute)
        second = e20_cross_model(**self.QUICK, cache_dir=cache)
        assert second.derived == first.derived

    def test_backend_invariant(self):
        from repro.core.experiments import e20_cross_model

        frozen = e20_cross_model(**self.QUICK)
        multigraph = e20_cross_model(
            **self.QUICK, backend="multigraph"
        )
        assert frozen.derived == multigraph.derived

    @needs_numpy
    def test_engine_invariant(self):
        from repro.core.experiments import e20_cross_model

        serial = e20_cross_model(**self.QUICK)
        ensemble = e20_cross_model(**self.QUICK, engine="ensemble")
        assert serial.derived == ensemble.derived

    def test_cli_acceptance_flags(self, capsys, tmp_path):
        """The ISSUE acceptance shape, downsized: E20 through the real
        CLI with jobs/backend (and engine under numpy) — no
        experiment-specific CLI code exists for it."""
        argv = [
            "run", "E20", "--quick", "--jobs", "2",
            "--backend", "frozen",
            "--cache-dir", str(tmp_path / "cache"),
            "--store-backend", "sqlite",
        ]
        if HAVE_NUMPY:
            argv += ["--engine", "ensemble"]
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert "warning:" not in captured.err
        assert "E20" in captured.out
        assert "store: 0 hits," in captured.out
        assert (tmp_path / "cache" / "trials.sqlite").exists()


class TestCLIListing:
    def test_list_prints_capability_matrix(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        lines = out.strip().splitlines()
        assert len(lines) == 22
        assert any(
            line.split()[0] == "E1"
            and "jobs,cache,backend,engine" in line
            for line in lines
        )
        # Axis-free experiments show a dash, not an empty cell.
        assert any(
            line.strip().startswith("E4") and " - " in line
            for line in lines
        )
        assert any("E20" in line for line in lines)

    def test_markdown_listing_is_a_table(self):
        rendered = format_listing(markdown=True)
        lines = rendered.splitlines()
        assert lines[0] == "| id | experiment | parameters | capabilities |"
        assert lines[1] == "|---|---|---|---|"
        assert len(lines) == 2 + 22
        assert any(line.startswith("| `E20` |") for line in lines)
        assert any(line.startswith("| `E21` |") for line in lines)
        # Every declared capability cell uses canonical names.
        for line in lines[2:]:
            cell = line.rsplit("|", 2)[-2].strip()
            if cell != "—":
                assert set(cell.split(", ")) <= set(CAPABILITIES)


class TestCLISetOverrides:
    def test_typed_coercion_applies(self, capsys):
        assert main(
            ["run", "E10", "--set", "n=6", "--set", "p_values=0.5,1"]
        ) == 0
        out = capsys.readouterr().out
        assert "n=6" in out
        assert "p_values=[0.5, 1.0]" in out

    def test_bad_value_rejected_nonzero(self, capsys):
        assert main(["run", "E10", "--set", "n=six"]) == 1
        err = capsys.readouterr().err
        assert "cannot parse 'six' as int" in err

    def test_unknown_key_rejected_nonzero_with_schema(self, capsys):
        assert main(["run", "E10", "--set", "bogus=1"]) == 1
        err = capsys.readouterr().err
        assert "takes no parameter 'bogus'" in err
        assert "n, p_values" in err

    def test_malformed_pair_rejected_by_argparse(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "E10", "--set", "n6"])
        assert "key=value" in capsys.readouterr().err

    def test_multi_run_warns_instead_of_failing(self, capsys):
        # a_values belongs to E4 only; E10 warns and still runs.
        assert main(
            ["run", "E10,E4", "--quick", "--set", "a_values=10,50"]
        ) == 0
        captured = capsys.readouterr()
        assert "--set a_values=10,50 has no effect on E10" in captured.err
        assert "E4" in captured.out


class TestCLICapabilityDerivation:
    def test_warning_comes_from_declaration_not_signature(self, capsys):
        # E17 declares jobs/cache/backend/mode but not engine.
        assert main(
            ["run", "E17", "--quick", "--engine", "serial"]
        ) == 0
        err = capsys.readouterr().err
        assert err.count("warning:") == 1
        assert "--engine serial has no effect on E17" in err

    def test_declared_axes_never_warn(self, capsys, tmp_path):
        assert main(
            [
                "run", "E18", "--quick",
                "--jobs", "2",
                "--cache-dir", str(tmp_path / "cache"),
                "--backend", "frozen",
                "--engine", "serial",
                "--mode", "trajectory",
            ]
        ) == 0
        captured = capsys.readouterr()
        assert "warning:" not in captured.err
        assert "mode=trajectory" in captured.out


class TestCLICommaLists:
    def test_comma_separated_ids_run_in_order(self, capsys):
        assert main(["run", "E10,E4", "--quick"]) == 0
        out = capsys.readouterr().out
        assert out.index("E10") < out.index("E4")

    def test_comma_list_writes_json_dir(self, tmp_path, capsys):
        import os

        json_dir = tmp_path / "records"
        assert main(
            [
                "run", "E10,E16", "--quick",
                "--json-dir", str(json_dir),
            ]
        ) == 0
        assert sorted(os.listdir(json_dir)) == ["e10.json", "e16.json"]

    def test_json_flag_warns_on_multi_runs(self, tmp_path, capsys):
        out_path = tmp_path / "out.json"
        assert main(
            ["run", "E10,E16", "--quick", "--json", str(out_path)]
        ) == 0
        captured = capsys.readouterr()
        assert "--json applies to single-experiment runs" in captured.err
        assert not out_path.exists()

    def test_unknown_member_exits_with_registry_ids(self, capsys):
        assert main(["run", "E1,E99", "--quick"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err
        assert "E20" in err

    def test_lowercase_and_spaces_tolerated(self, capsys):
        assert main(["run", "e10, e16", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "E10" in out and "E16" in out

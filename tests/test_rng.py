"""Unit tests for the deterministic RNG utilities."""

from __future__ import annotations

import random

import pytest

from repro.rng import make_rng, spawn, stream_seeds, substream


class TestMakeRng:
    def test_none_gives_fresh_generator(self):
        rng = make_rng(None)
        assert isinstance(rng, random.Random)

    def test_int_is_deterministic(self):
        assert make_rng(7).random() == make_rng(7).random()

    def test_distinct_ints_differ(self):
        assert make_rng(1).random() != make_rng(2).random()

    def test_passthrough(self):
        rng = random.Random(3)
        assert make_rng(rng) is rng

    def test_bad_types_rejected(self):
        with pytest.raises(TypeError):
            make_rng("seed")
        with pytest.raises(TypeError):
            make_rng(True)
        with pytest.raises(TypeError):
            make_rng(1.5)


class TestSubstream:
    def test_deterministic(self):
        assert substream(5, 0) == substream(5, 0)

    def test_index_sensitivity(self):
        children = {substream(5, i) for i in range(100)}
        assert len(children) == 100

    def test_seed_sensitivity(self):
        assert substream(1, 0) != substream(2, 0)

    def test_statistical_decorrelation(self):
        # First draws from consecutive substreams look uniform.
        draws = [
            random.Random(substream(0, i)).random() for i in range(500)
        ]
        mean = sum(draws) / len(draws)
        assert 0.45 < mean < 0.55


class TestStreams:
    def test_stream_seeds_matches_substream(self):
        assert list(stream_seeds(9, 5)) == [
            substream(9, i) for i in range(5)
        ]

    def test_stream_seeds_validates(self):
        with pytest.raises(ValueError):
            list(stream_seeds(1, -1))

    def test_spawn_changes_parent_state(self):
        parent = random.Random(0)
        child = spawn(parent)
        assert isinstance(child, random.Random)
        # Spawning consumed entropy, so spawning again differs.
        child2 = spawn(parent)
        assert child.random() != child2.random()

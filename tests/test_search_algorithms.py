"""Unit tests for the search-algorithm portfolio."""

from __future__ import annotations

import pytest

from repro.errors import InvalidParameterError
from repro.graphs.base import MultiGraph
from repro.graphs.mori import merged_mori_graph, mori_tree
from repro.search.algorithms import (
    AgeGreedySearch,
    DegreeBiasedWalkSearch,
    FloodingSearch,
    HighDegreeStrongSearch,
    HighDegreeWeakSearch,
    MixedStrategySearch,
    OmniscientWindowSearch,
    RandomWalkSearch,
    strong_model_portfolio,
    weak_model_portfolio,
)
from repro.search.process import run_search

WEAK_ALGORITHMS = [
    RandomWalkSearch(),
    FloodingSearch(),
    HighDegreeWeakSearch(),
    AgeGreedySearch("oldest"),
    AgeGreedySearch("closest-id"),
    MixedStrategySearch(0.25),
]
STRONG_ALGORITHMS = [
    HighDegreeStrongSearch(),
    DegreeBiasedWalkSearch(0.0),
    DegreeBiasedWalkSearch(1.0),
]


@pytest.fixture(scope="module")
def mori_instance():
    return merged_mori_graph(60, 2, 0.5, seed=17).graph


class TestPortfolioOnMori:
    @pytest.mark.parametrize(
        "algorithm", WEAK_ALGORITHMS + STRONG_ALGORITHMS,
        ids=lambda a: f"{a.name}-{a.model}",
    )
    def test_finds_target(self, mori_instance, algorithm):
        result = run_search(
            algorithm, mori_instance, start=1, target=55, seed=3
        )
        assert result.found
        assert result.requests >= 1
        assert result.algorithm == algorithm.name
        assert result.model == algorithm.model

    @pytest.mark.parametrize(
        "algorithm", WEAK_ALGORITHMS + STRONG_ALGORITHMS,
        ids=lambda a: f"{a.name}-{a.model}",
    )
    def test_zero_requests_when_start_is_target(
        self, mori_instance, algorithm
    ):
        result = run_search(
            algorithm, mori_instance, start=7, target=7, seed=0
        )
        assert result.found
        assert result.requests == 0

    @pytest.mark.parametrize(
        "algorithm", WEAK_ALGORITHMS + STRONG_ALGORITHMS,
        ids=lambda a: f"{a.name}-{a.model}",
    )
    def test_budget_respected(self, mori_instance, algorithm):
        result = run_search(
            algorithm, mori_instance, start=1, target=55, budget=3, seed=3
        )
        assert result.requests <= 3

    @pytest.mark.parametrize(
        "algorithm", WEAK_ALGORITHMS + STRONG_ALGORITHMS,
        ids=lambda a: f"{a.name}-{a.model}",
    )
    def test_deterministic_given_seed(self, mori_instance, algorithm):
        r1 = run_search(algorithm, mori_instance, 1, 50, seed=9)
        r2 = run_search(algorithm, mori_instance, 1, 50, seed=9)
        assert r1.requests == r2.requests
        assert r1.found == r2.found


class TestFlooding:
    def test_cost_bounded_by_edges(self):
        graph = merged_mori_graph(100, 1, 0.5, seed=5).graph
        result = run_search(FloodingSearch(), graph, 1, 97, seed=0)
        assert result.found
        # Each edge is requested at most once (inference resolves the
        # second side for free).
        assert result.requests <= graph.num_edges

    def test_explores_whole_graph_for_any_target(self):
        graph = mori_tree(40, 0.5, seed=8).graph
        for target in (2, 20, 40):
            assert run_search(
                FloodingSearch(), graph, 1, target, seed=0
            ).found

    def test_handles_self_loops(self, loop_graph):
        result = run_search(FloodingSearch(), loop_graph, 2, 1, seed=0)
        assert result.found

    def test_handles_parallel_edges(self, parallel_graph):
        result = run_search(
            FloodingSearch(), parallel_graph, 1, 2, seed=0
        )
        assert result.found
        assert result.requests == 1


class TestRandomWalk:
    def test_walk_on_path(self, path4):
        result = run_search(RandomWalkSearch(), path4, 1, 4, seed=1)
        assert result.found
        assert result.extra["hops"] >= 3

    def test_isolated_start_gives_up(self):
        graph = MultiGraph(2)
        result = run_search(RandomWalkSearch(), graph, 1, 2, seed=0)
        assert not result.found
        assert result.requests == 0

    def test_free_movement_on_known_edges(self, triangle):
        # Once all of the triangle is discovered, further movement
        # costs nothing; the walk can only make <= num_edges requests
        # before finding any target.
        result = run_search(RandomWalkSearch(), triangle, 1, 3, seed=2)
        assert result.found
        assert result.requests <= 3


class TestHighDegree:
    def test_weak_visits_hubs_first(self):
        # Star with an appended path: the hub's edges all get resolved
        # before the path tail, so a leaf target is found in <= deg(hub)
        # requests.
        graph = MultiGraph(6)
        for leaf in (2, 3, 4, 5):
            graph.add_edge(leaf, 1)
        graph.add_edge(6, 5)
        result = run_search(HighDegreeWeakSearch(), graph, 1, 4, seed=0)
        assert result.found
        assert result.requests <= 4

    def test_weak_terminates_when_target_unreachable(self):
        graph = MultiGraph(3)
        graph.add_edge(2, 1)
        # Vertex 3 is disconnected; budget exhausts or frontier empties.
        result = run_search(HighDegreeWeakSearch(), graph, 1, 3, seed=0)
        assert not result.found
        assert result.requests <= 1

    def test_strong_expands_max_degree(self, mori_instance):
        result = run_search(
            HighDegreeStrongSearch(), mori_instance, 1, 55, seed=1
        )
        assert result.found

    def test_strong_never_rerequests(self, mori_instance):
        # Request count is bounded by the number of vertices.
        result = run_search(
            HighDegreeStrongSearch(), mori_instance, 1, 55, seed=1
        )
        assert result.requests <= mori_instance.num_vertices


class TestAgeGreedy:
    def test_invalid_mode_rejected(self):
        with pytest.raises(InvalidParameterError):
            AgeGreedySearch("newest")

    def test_names_distinct(self):
        assert AgeGreedySearch("oldest").name != AgeGreedySearch(
            "closest-id"
        ).name

    def test_oldest_prefers_low_ids(self, path4):
        result = run_search(AgeGreedySearch("oldest"), path4, 2, 4, seed=0)
        assert result.found

    def test_closest_id_uses_target_knowledge(self, mori_instance):
        result = run_search(
            AgeGreedySearch("closest-id"), mori_instance, 1, 55, seed=0
        )
        assert result.found


class TestMixed:
    def test_epsilon_bounds(self):
        with pytest.raises(InvalidParameterError):
            MixedStrategySearch(-0.1)
        with pytest.raises(InvalidParameterError):
            MixedStrategySearch(1.5)

    def test_epsilon_zero_and_one_work(self, mori_instance):
        for eps in (0.0, 1.0):
            result = run_search(
                MixedStrategySearch(eps), mori_instance, 1, 55, seed=4
            )
            assert result.found

    def test_terminates_on_unreachable_target(self):
        graph = MultiGraph(3)
        graph.add_edge(2, 1)
        result = run_search(
            MixedStrategySearch(0.5), graph, 1, 3, seed=0
        )
        assert not result.found


class TestBiasedWalk:
    def test_beta_zero_uniform(self, path4):
        result = run_search(
            DegreeBiasedWalkSearch(0.0), path4, 1, 4, seed=5
        )
        assert result.found

    def test_negative_beta_hub_avoiding(self, mori_instance):
        result = run_search(
            DegreeBiasedWalkSearch(-1.0), mori_instance, 1, 55, seed=5
        )
        # Hub-avoiding may need the whole budget but must not crash.
        assert result.requests >= 1

    def test_name_encodes_beta(self):
        assert "b1" in DegreeBiasedWalkSearch(1.0).name
        assert "b-0.5" in DegreeBiasedWalkSearch(-0.5).name

    def test_cached_revisits_cost_nothing(self, triangle):
        result = run_search(
            DegreeBiasedWalkSearch(0.0), triangle, 1, 3, seed=0
        )
        assert result.found
        assert result.requests <= 3


class TestOmniscient:
    def test_requires_nonempty_window(self, triangle):
        with pytest.raises(InvalidParameterError):
            OmniscientWindowSearch(triangle, [])

    def test_window_vertices_must_exist(self, triangle):
        with pytest.raises(InvalidParameterError):
            OmniscientWindowSearch(triangle, [9])

    def test_target_outside_window_rejected(self, mori_instance):
        algorithm = OmniscientWindowSearch(mori_instance, [50, 51])
        with pytest.raises(InvalidParameterError):
            run_search(algorithm, mori_instance, 1, 55, seed=0)

    def test_finds_target_in_window(self, mori_instance):
        window = list(range(50, 56))
        algorithm = OmniscientWindowSearch(mori_instance, window)
        result = run_search(algorithm, mori_instance, 1, 53, seed=0)
        assert result.found

    def test_cost_near_half_window(self):
        # On a large instance the probe count should be ~|V|/2 on
        # average over seeds.
        graph = merged_mori_graph(400, 1, 0.5, seed=3).graph
        window = list(range(380, 400))
        probes = []
        for seed in range(30):
            algorithm = OmniscientWindowSearch(graph, window)
            result = run_search(algorithm, graph, 1, 390, seed=seed)
            assert result.found
            probes.append(result.extra["probes"])
        mean_probes = sum(probes) / len(probes)
        assert 0.25 * len(window) <= mean_probes <= 0.85 * len(window)


class TestPortfolioFactories:
    def test_weak_portfolio_models(self):
        for algorithm in weak_model_portfolio():
            assert algorithm.model == "weak"

    def test_strong_portfolio_models(self):
        for algorithm in strong_model_portfolio():
            assert algorithm.model == "strong"

    def test_name_model_pairs_unique(self):
        pairs = [
            (a.name, a.model)
            for a in weak_model_portfolio() + strong_model_portfolio()
        ]
        assert len(pairs) == len(set(pairs))

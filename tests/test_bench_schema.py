"""Fast validation of the committed benchmark-trajectory record.

``make bench-smoke`` writes ``BENCH_PR2.json``; this test never runs
the benchmark (that takes minutes) but pins the committed artifact:
the schema the trajectory tooling will consume — experiment id, n,
wall seconds, backend per record — and the PR's recorded acceptance
claim (>= 3x on the flooding/BFS cell batch).
"""

from __future__ import annotations

import json
import os

import pytest

BENCH_PATH = os.path.join(
    os.path.dirname(__file__), os.pardir, "BENCH_PR2.json"
)

VALID_BACKENDS = {"frozen", "multigraph"}


@pytest.fixture(scope="module")
def payload():
    assert os.path.exists(BENCH_PATH), (
        "BENCH_PR2.json missing; run `make bench-smoke`"
    )
    with open(BENCH_PATH, encoding="utf-8") as handle:
        return json.load(handle)


class TestBenchSchema:
    def test_schema_version(self, payload):
        assert payload["schema"] == "repro-bench/v1"

    def test_records_shape(self, payload):
        records = payload["records"]
        assert records, "bench trajectory must not be empty"
        for record in records:
            assert isinstance(record["experiment"], str)
            assert record["experiment"].startswith("E")
            assert isinstance(record["n"], int) and record["n"] > 0
            assert isinstance(record["wall_seconds"], (int, float))
            assert record["wall_seconds"] >= 0
            assert record["backend"] in VALID_BACKENDS

    def test_both_backends_per_experiment(self, payload):
        seen: dict = {}
        for record in payload["records"]:
            seen.setdefault(record["experiment"], set()).add(
                record["backend"]
            )
        for experiment_id in ("E1", "E3", "E17"):
            assert seen.get(experiment_id) == VALID_BACKENDS, (
                f"{experiment_id} must be timed on both backends"
            )

    def test_speedup_block(self, payload):
        speedup = payload["speedup"]
        assert speedup["workload"] == "e1-flooding-bfs-cells"
        assert speedup["n"] == 100_000
        assert speedup["cells"] >= 1
        for key in (
            "multigraph_rebuild_seconds",
            "multigraph_shared_seconds",
            "frozen_batched_seconds",
        ):
            assert speedup[key] > 0

    def test_recorded_acceptance_speedup(self, payload):
        """The committed run met the PR's >= 3x acceptance bar."""
        speedup = payload["speedup"]
        assert speedup["speedup_vs_rebuild"] >= 3.0
        # Self-consistency of the recorded ratios (2 d.p. rounding).
        expected = (
            speedup["multigraph_rebuild_seconds"]
            / speedup["frozen_batched_seconds"]
        )
        assert speedup["speedup_vs_rebuild"] == pytest.approx(
            expected, abs=0.01
        )

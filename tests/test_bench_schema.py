"""Fast validation of the committed benchmark-trajectory records.

Each PR appends one point to the bench trajectory: ``BENCH_PR2.json``
(FrozenGraph cell batching, regenerable with
``PYTHONPATH=src python benchmarks/bench_smoke.py --pr2``),
``BENCH_PR3.json`` (growth-trajectory checkpoint engine, ``--pr3``),
``BENCH_PR4.json`` (vectorized walker-ensemble engine, ``--pr4``),
``BENCH_PR5.json`` (declarative experiment registry, ``--pr5``) and
``BENCH_PR6.json`` (vectorized generation engine + corpus store,
``--pr6``), ``BENCH_PR7.json`` (pluggable trial store, ``--pr7``)
``BENCH_PR8.json`` (dynamic-graph overlay, ``--pr8``) and
``BENCH_PR9.json`` (shared-memory graph workers + search service,
written by ``make bench-smoke``).  These tests never run the
benchmarks (that
takes minutes) but pin the committed artifacts: the schema the
trajectory tooling consumes and each PR's recorded acceptance claim
(>= 3x on the PR2 flooding/BFS cell batch; >= 2x on the PR3
grid-realisation workload; >= 3x on the PR4 ensemble-vs-serial walk
cell, frozen backend with numpy; the PR5 registry-enumeration smoke
must match the *live* registry, so re-declaring an experiment
without regenerating the artifact fails here; >= 5x on the PR6
vectorized-vs-serial Móri generation at n=10^6, with the bench-built
corpus passing ``verify``; >= 2x warm trial replay and >= 5x fewer
inodes for the PR7 sqlite store vs the json-files baseline, with the
in-bench migration verifying every record bit-identical; >= 3x for
the PR8 overlay churn+search workload vs rebuilding a snapshot per
churn step, with both strategies digest- and request-identical;
>= 2x for the PR9 shared-memory dispatch vs pickling the CSR into
every spec, on bit-identical trial values, with the service-load
block recording p50/p99 latency and sustained qps under >= 4
concurrent clients).
"""

from __future__ import annotations

import json
import os

import pytest

_ROOT = os.path.join(os.path.dirname(__file__), os.pardir)
BENCH_PATH = os.path.join(_ROOT, "BENCH_PR2.json")
BENCH_PR3_PATH = os.path.join(_ROOT, "BENCH_PR3.json")
BENCH_PR4_PATH = os.path.join(_ROOT, "BENCH_PR4.json")
BENCH_PR5_PATH = os.path.join(_ROOT, "BENCH_PR5.json")
BENCH_PR6_PATH = os.path.join(_ROOT, "BENCH_PR6.json")
BENCH_PR7_PATH = os.path.join(_ROOT, "BENCH_PR7.json")
BENCH_PR8_PATH = os.path.join(_ROOT, "BENCH_PR8.json")
BENCH_PR9_PATH = os.path.join(_ROOT, "BENCH_PR9.json")
BENCH_PR10_PATH = os.path.join(_ROOT, "BENCH_PR10.json")

VALID_BACKENDS = {"frozen", "multigraph"}
VALID_MODES = {"independent", "trajectory"}
VALID_ENGINES = {"serial", "ensemble"}
VALID_GENERATORS = {"serial", "vectorized"}
VALID_STORE_BACKENDS = {"json-files", "sqlite"}
VALID_STRATEGIES = {"overlay", "rebuild-per-step"}
VALID_DISPATCHES = {"pickle-per-spec", "shared-memory", "service"}
#: PR 10's serving arms get their own dispatch vocabulary — PR 9's
#: schema test pins its records to exactly VALID_DISPATCHES.
VALID_SERVING_DISPATCHES = {"per-query", "coalesced", "cache-warm"}


@pytest.fixture(scope="module")
def payload():
    assert os.path.exists(BENCH_PATH), (
        "BENCH_PR2.json missing; run "
        "`PYTHONPATH=src python benchmarks/bench_smoke.py --pr2`"
    )
    with open(BENCH_PATH, encoding="utf-8") as handle:
        return json.load(handle)


class TestBenchSchema:
    def test_schema_version(self, payload):
        assert payload["schema"] == "repro-bench/v1"

    def test_records_shape(self, payload):
        records = payload["records"]
        assert records, "bench trajectory must not be empty"
        for record in records:
            assert isinstance(record["experiment"], str)
            assert record["experiment"].startswith("E")
            assert isinstance(record["n"], int) and record["n"] > 0
            assert isinstance(record["wall_seconds"], (int, float))
            assert record["wall_seconds"] >= 0
            assert record["backend"] in VALID_BACKENDS

    def test_both_backends_per_experiment(self, payload):
        seen: dict = {}
        for record in payload["records"]:
            seen.setdefault(record["experiment"], set()).add(
                record["backend"]
            )
        for experiment_id in ("E1", "E3", "E17"):
            assert seen.get(experiment_id) == VALID_BACKENDS, (
                f"{experiment_id} must be timed on both backends"
            )

    def test_speedup_block(self, payload):
        speedup = payload["speedup"]
        assert speedup["workload"] == "e1-flooding-bfs-cells"
        assert speedup["n"] == 100_000
        assert speedup["cells"] >= 1
        for key in (
            "multigraph_rebuild_seconds",
            "multigraph_shared_seconds",
            "frozen_batched_seconds",
        ):
            assert speedup[key] > 0

    def test_recorded_acceptance_speedup(self, payload):
        """The committed run met the PR's >= 3x acceptance bar."""
        speedup = payload["speedup"]
        assert speedup["speedup_vs_rebuild"] >= 3.0
        # Self-consistency of the recorded ratios (2 d.p. rounding).
        expected = (
            speedup["multigraph_rebuild_seconds"]
            / speedup["frozen_batched_seconds"]
        )
        assert speedup["speedup_vs_rebuild"] == pytest.approx(
            expected, abs=0.01
        )


@pytest.fixture(scope="module")
def pr3_payload():
    assert os.path.exists(BENCH_PR3_PATH), (
        "BENCH_PR3.json missing; run `make bench-smoke`"
    )
    with open(BENCH_PR3_PATH, encoding="utf-8") as handle:
        return json.load(handle)


class TestBenchPR3Schema:
    """The growth-trajectory checkpoint-engine point."""

    def test_schema_version(self, pr3_payload):
        assert pr3_payload["schema"] == "repro-bench/v1"

    def test_records_shape(self, pr3_payload):
        records = pr3_payload["records"]
        assert records, "bench trajectory must not be empty"
        for record in records:
            assert isinstance(record["experiment"], str)
            assert record["experiment"].startswith("E")
            assert isinstance(record["n"], int) and record["n"] > 0
            assert isinstance(record["wall_seconds"], (int, float))
            assert record["wall_seconds"] >= 0
            assert record["backend"] in VALID_BACKENDS
            assert record["mode"] in VALID_MODES

    def test_e17_timed_per_backend_and_mode(self, pr3_payload):
        seen: dict = {}
        for record in pr3_payload["records"]:
            if record["experiment"] == "E17":
                seen.setdefault(record["backend"], set()).add(
                    record["mode"]
                )
        assert set(seen) == VALID_BACKENDS
        for backend, modes in seen.items():
            assert modes == VALID_MODES, (
                f"E17 must be timed in both modes on {backend}"
            )

    def test_e19_recorded(self, pr3_payload):
        backends = {
            record["backend"]
            for record in pr3_payload["records"]
            if record["experiment"] == "E19"
        }
        assert backends == VALID_BACKENDS

    def test_trajectory_speedup_block(self, pr3_payload):
        speedup = pr3_payload["trajectory_speedup"]
        assert speedup["workload"] == "e17-grid-realisations"
        assert speedup["family"].startswith("mori")
        assert len(speedup["sizes"]) >= 4
        assert speedup["sizes"] == sorted(speedup["sizes"])
        assert set(speedup["per_backend"]) == VALID_BACKENDS
        for numbers in speedup["per_backend"].values():
            assert numbers["independent_seconds"] > 0
            assert numbers["trajectory_seconds"] > 0
            expected = (
                numbers["independent_seconds"]
                / numbers["trajectory_seconds"]
            )
            assert numbers["speedup"] == pytest.approx(
                expected, abs=0.01
            )

    def test_recorded_acceptance_speedup(self, pr3_payload):
        """The committed run met the PR's >= 2x acceptance bar on the
        gate backend, and the trajectory layout wins on every backend."""
        speedup = pr3_payload["trajectory_speedup"]
        gate = speedup["per_backend"][speedup["acceptance_backend"]]
        assert gate["speedup"] >= 2.0
        for numbers in speedup["per_backend"].values():
            assert numbers["speedup"] >= 1.0


@pytest.fixture(scope="module")
def pr4_payload():
    assert os.path.exists(BENCH_PR4_PATH), (
        "BENCH_PR4.json missing; run `make bench-smoke`"
    )
    with open(BENCH_PR4_PATH, encoding="utf-8") as handle:
        return json.load(handle)


class TestBenchPR4Schema:
    """The vectorized walker-ensemble engine point."""

    def test_schema_version(self, pr4_payload):
        assert pr4_payload["schema"] == "repro-bench/v1"

    def test_records_shape(self, pr4_payload):
        records = pr4_payload["records"]
        assert records, "bench trajectory must not be empty"
        for record in records:
            assert isinstance(record["experiment"], str)
            assert record["experiment"].startswith("E")
            assert isinstance(record["n"], int) and record["n"] > 0
            assert isinstance(record["wall_seconds"], (int, float))
            assert record["wall_seconds"] >= 0
            assert record["backend"] in VALID_BACKENDS
            assert record["engine"] in VALID_ENGINES

    def test_walk_experiments_timed_per_engine(self, pr4_payload):
        seen: dict = {}
        for record in pr4_payload["records"]:
            seen.setdefault(record["experiment"], set()).add(
                record["engine"]
            )
        for experiment_id in ("E1", "E3"):
            assert seen.get(experiment_id) == VALID_ENGINES, (
                f"{experiment_id} must be timed under both engines"
            )

    def test_ensemble_speedup_block(self, pr4_payload):
        speedup = pr4_payload["ensemble_speedup"]
        assert speedup["workload"] == "walk-cells"
        assert speedup["family"].startswith("mori")
        assert speedup["n"] == 100_000
        assert speedup["runs_per_cell"] >= 1
        assert speedup["budget"] >= 1
        assert speedup["backend"] == "frozen"
        per_algorithm = speedup["per_algorithm"]
        # The whole walk family is measured, not a favourable subset.
        assert set(per_algorithm) == {
            "random-walk",
            "self-avoiding-walk",
            "restart-walk-r0.1",
        }
        for numbers in per_algorithm.values():
            assert numbers["serial_seconds"] > 0
            assert numbers["ensemble_seconds"] > 0
            expected = (
                numbers["serial_seconds"] / numbers["ensemble_seconds"]
            )
            assert numbers["speedup"] == pytest.approx(
                expected, abs=0.01
            )

    def test_recorded_acceptance_speedup(self, pr4_payload):
        """The committed run met the PR's >= 3x acceptance bar on the
        gate cell, and the ensemble engine wins on every walk cell."""
        speedup = pr4_payload["ensemble_speedup"]
        gate = speedup["per_algorithm"][
            speedup["acceptance_algorithm"]
        ]
        assert gate["speedup"] >= 3.0
        for numbers in speedup["per_algorithm"].values():
            assert numbers["speedup"] >= 1.0


@pytest.fixture(scope="module")
def pr5_payload():
    assert os.path.exists(BENCH_PR5_PATH), (
        "BENCH_PR5.json missing; run "
        "`PYTHONPATH=src python benchmarks/bench_smoke.py --pr5`"
    )
    with open(BENCH_PR5_PATH, encoding="utf-8") as handle:
        return json.load(handle)


class TestBenchPR5Schema:
    """The declarative experiment-registry point."""

    def test_schema_version(self, pr5_payload):
        assert pr5_payload["schema"] == "repro-bench/v1"

    def test_records_shape(self, pr5_payload):
        records = pr5_payload["records"]
        assert records, "bench trajectory must not be empty"
        for record in records:
            assert isinstance(record["experiment"], str)
            assert record["experiment"].startswith("E")
            assert isinstance(record["n"], int) and record["n"] > 0
            assert isinstance(record["wall_seconds"], (int, float))
            assert record["wall_seconds"] >= 0
            assert record["backend"] in VALID_BACKENDS
            assert record["engine"] in VALID_ENGINES

    def test_e20_timed_per_declared_engine(self, pr5_payload):
        engines = {
            record["engine"]
            for record in pr5_payload["records"]
            if record["experiment"] == "E20"
        }
        assert engines == VALID_ENGINES, (
            "E20 must be timed under both declared engines"
        )

    def test_registry_block_shape(self, pr5_payload):
        registry = pr5_payload["registry"]
        # The registry grows with later PRs (the artifact snapshots
        # the live surface); the PR5 claim is that the original
        # E1..E20 surface is still fully declared.
        assert registry["count"] == len(registry["experiments"])
        assert registry["count"] >= 20
        for experiment_id in (f"E{i}" for i in range(1, 21)):
            assert experiment_id in registry["experiments"]
        assert registry["enumeration_seconds"] >= 0
        matrix = registry["capability_matrix"]
        assert set(matrix) == set(registry["experiments"])
        valid_capabilities = {"jobs", "cache", "backend", "engine",
                              "mode", "generator", "store"}
        for capabilities in matrix.values():
            assert set(capabilities) <= valid_capabilities

    def test_registry_block_matches_live_registry(self, pr5_payload):
        """The committed enumeration is the *current* surface: adding
        or re-declaring an experiment without regenerating the
        artifact (`make bench-smoke`) fails here."""
        from repro.core.registry import REGISTRY

        registry = pr5_payload["registry"]
        assert registry["experiments"] == REGISTRY.ids()
        assert registry["capability_matrix"] == {
            experiment_id: list(capabilities)
            for experiment_id, capabilities in
            REGISTRY.capability_matrix().items()
        }


@pytest.fixture(scope="module")
def pr6_payload():
    assert os.path.exists(BENCH_PR6_PATH), (
        "BENCH_PR6.json missing; run `make bench-smoke`"
    )
    with open(BENCH_PR6_PATH, encoding="utf-8") as handle:
        return json.load(handle)


class TestBenchPR6Schema:
    """The vectorized generation engine + corpus store point."""

    def test_schema_version(self, pr6_payload):
        assert pr6_payload["schema"] == "repro-bench/v1"

    def test_records_shape(self, pr6_payload):
        records = pr6_payload["records"]
        assert records, "bench trajectory must not be empty"
        for record in records:
            assert isinstance(record["experiment"], str)
            assert record["experiment"].startswith("E")
            assert isinstance(record["n"], int) and record["n"] > 0
            assert isinstance(record["wall_seconds"], (int, float))
            assert record["wall_seconds"] >= 0
            assert record["backend"] in VALID_BACKENDS
            assert record["generator"] in VALID_GENERATORS

    def test_e17_timed_per_generator(self, pr6_payload):
        generators = {
            record["generator"]
            for record in pr6_payload["records"]
            if record["experiment"] == "E17"
        }
        assert generators == VALID_GENERATORS, (
            "E17 must be timed under both generators"
        )

    def test_generation_speedup_block(self, pr6_payload):
        speedup = pr6_payload["generation_speedup"]
        assert speedup["workload"] == "graph-generation"
        assert speedup["backend"] == "frozen"
        per_model = speedup["per_model"]
        # The whole kernel family is measured, not a favourable subset.
        assert set(per_model) == {"mori", "ba", "cooper-frieze"}
        for numbers in per_model.values():
            assert numbers["n"] >= 100_000
            assert numbers["serial_seconds"] > 0
            assert numbers["vectorized_seconds"] > 0
            expected = (
                numbers["serial_seconds"]
                / numbers["vectorized_seconds"]
            )
            assert numbers["speedup"] == pytest.approx(
                expected, abs=0.01
            )

    def test_recorded_acceptance_speedup(self, pr6_payload):
        """The committed run met the PR's >= 5x acceptance bar on the
        gate model, and the vectorized engine wins on every kernel."""
        speedup = pr6_payload["generation_speedup"]
        gate = speedup["per_model"][speedup["acceptance_model"]]
        assert gate["speedup"] >= 5.0
        for numbers in speedup["per_model"].values():
            assert numbers["speedup"] >= 1.0

    def test_corpus_block(self, pr6_payload):
        corpus = pr6_payload["corpus"]
        assert corpus["family"].startswith("mori")
        assert len(corpus["sizes"]) >= 2
        assert corpus["entries"] == len(corpus["sizes"])
        assert corpus["cold_seconds"] > 0
        assert corpus["warm_seconds"] > 0
        expected = corpus["cold_seconds"] / corpus["warm_seconds"]
        assert corpus["speedup"] == pytest.approx(expected, abs=0.01)
        # The bench run verified every entry it wrote.
        assert corpus["verify_ok"] is True
        assert corpus["verified_entries"] == corpus["entries"]


@pytest.fixture(scope="module")
def pr7_payload():
    assert os.path.exists(BENCH_PR7_PATH), (
        "BENCH_PR7.json missing; run `make bench-smoke`"
    )
    with open(BENCH_PR7_PATH, encoding="utf-8") as handle:
        return json.load(handle)


class TestBenchPR7Schema:
    """The pluggable trial-store point."""

    def test_schema_version(self, pr7_payload):
        assert pr7_payload["schema"] == "repro-bench/v1"

    def test_records_shape(self, pr7_payload):
        records = pr7_payload["records"]
        assert records, "bench trajectory must not be empty"
        for record in records:
            assert isinstance(record["experiment"], str)
            assert record["experiment"].startswith("E")
            assert isinstance(record["n"], int) and record["n"] > 0
            assert isinstance(record["wall_seconds"], (int, float))
            assert record["wall_seconds"] >= 0
            assert record["backend"] in VALID_BACKENDS
            assert record["store_backend"] in VALID_STORE_BACKENDS
            assert record["phase"] in {"cold", "warm"}

    def test_e17_timed_cold_and_warm_per_store_backend(
        self, pr7_payload
    ):
        seen: dict = {}
        for record in pr7_payload["records"]:
            if record["experiment"] == "E17":
                seen.setdefault(record["store_backend"], set()).add(
                    record["phase"]
                )
        assert set(seen) == VALID_STORE_BACKENDS
        for backend, phases in seen.items():
            assert phases == {"cold", "warm"}, (
                f"E17 must be timed cold and warm on {backend}"
            )

    def test_store_speedup_block(self, pr7_payload):
        speedup = pr7_payload["store_speedup"]
        assert speedup["workload"] == "trial-replay"
        assert speedup["entries"] >= 100_000
        per_backend = speedup["per_backend"]
        # Both backends are measured, not a favourable subset.
        assert set(per_backend) == VALID_STORE_BACKENDS
        for numbers in per_backend.values():
            assert numbers["entries"] == speedup["entries"]
            assert numbers["put_seconds"] > 0
            assert numbers["warm_get_seconds"] > 0
            assert numbers["inodes"] >= 1
            assert numbers["bytes"] > 0
        baseline = per_backend[speedup["acceptance_baseline"]]
        candidate = per_backend["sqlite"]
        assert speedup["warm_replay_speedup"] == pytest.approx(
            baseline["warm_get_seconds"]
            / candidate["warm_get_seconds"],
            abs=0.01,
        )
        assert speedup["inode_ratio"] == pytest.approx(
            baseline["inodes"] / candidate["inodes"], abs=0.01
        )

    def test_recorded_acceptance_gates(self, pr7_payload):
        """The committed run met both acceptance bars: warm replay
        >= 2x faster and >= 5x fewer inodes than json-files."""
        speedup = pr7_payload["store_speedup"]
        assert speedup["acceptance_baseline"] == "json-files"
        assert speedup["warm_replay_speedup"] >= 2.0
        assert speedup["inode_ratio"] >= 5.0

    def test_migrate_block(self, pr7_payload):
        """The bench migrated the populated json tree and verified
        every replayed value bit-identical."""
        migrate = pr7_payload["store_speedup"]["migrate"]
        assert migrate["source"] == "json-files"
        assert migrate["destination"] == "sqlite"
        assert migrate["migrated"] == (
            pr7_payload["store_speedup"]["entries"]
        )
        assert migrate["skipped_stale"] == 0
        assert migrate["verify_failed"] == 0
        assert migrate["seconds"] > 0
        assert migrate["verified_identical"] is True


@pytest.fixture(scope="module")
def pr8_payload():
    assert os.path.exists(BENCH_PR8_PATH), (
        "BENCH_PR8.json missing; run `make bench-smoke`"
    )
    with open(BENCH_PR8_PATH, encoding="utf-8") as handle:
        return json.load(handle)


class TestBenchPR8Schema:
    """The dynamic-graph overlay (churn + search) point."""

    def test_schema_version(self, pr8_payload):
        assert pr8_payload["schema"] == "repro-bench/v1"

    def test_records_shape(self, pr8_payload):
        records = pr8_payload["records"]
        assert records, "bench trajectory must not be empty"
        for record in records:
            assert isinstance(record["experiment"], str)
            assert record["experiment"].startswith("E")
            assert isinstance(record["n"], int) and record["n"] > 0
            assert isinstance(record["wall_seconds"], (int, float))
            assert record["wall_seconds"] >= 0
            assert record["backend"] in VALID_BACKENDS
            assert record["engine"] in VALID_ENGINES
            assert record["strategy"] in VALID_STRATEGIES

    def test_e21_timed_per_declared_engine(self, pr8_payload):
        engines = {
            record["engine"]
            for record in pr8_payload["records"]
            if record["experiment"] == "E21"
            and record["strategy"] == "overlay"
        }
        assert engines == VALID_ENGINES, (
            "E21 must be timed under both declared engines"
        )

    def test_both_strategies_timed_at_gate_scale(self, pr8_payload):
        strategies = {
            record["strategy"]
            for record in pr8_payload["records"]
            if record["n"] == 100_000
        }
        assert strategies == VALID_STRATEGIES

    def test_overlay_speedup_block(self, pr8_payload):
        speedup = pr8_payload["overlay_speedup"]
        assert speedup["workload"] == "churn-then-search"
        assert speedup["family"].startswith("mori")
        assert speedup["n"] == 100_000
        assert speedup["churn_steps"] >= 1
        assert speedup["search_budget"] >= 1
        assert speedup["search_runs"] >= 1
        per_strategy = speedup["per_strategy"]
        # Both strategies are measured, not a favourable subset.
        assert set(per_strategy) == VALID_STRATEGIES
        for numbers in per_strategy.values():
            assert numbers["churn_seconds"] >= 0
            assert numbers["search_seconds"] > 0
            assert numbers["total_seconds"] > 0
            assert numbers["search_requests"] >= 1
        expected = (
            per_strategy["rebuild-per-step"]["total_seconds"]
            / per_strategy["overlay"]["total_seconds"]
        )
        assert speedup["speedup_vs_rebuild"] == pytest.approx(
            expected, rel=0.01
        )

    def test_recorded_acceptance_speedup(self, pr8_payload):
        """The committed run met the PR's >= 3x acceptance bar, on
        identical outputs: both strategies ended on digest-equal
        graphs and spent identical search requests."""
        speedup = pr8_payload["overlay_speedup"]
        assert speedup["acceptance_baseline"] == "rebuild-per-step"
        assert speedup["speedup_vs_rebuild"] >= 3.0
        assert speedup["digests_equal"] is True
        assert speedup["requests_equal"] is True
        assert len(speedup["graph_digest"]) == 64
        per_strategy = speedup["per_strategy"]
        assert (
            per_strategy["overlay"]["search_requests"]
            == per_strategy["rebuild-per-step"]["search_requests"]
        )


@pytest.fixture(scope="module")
def pr9_payload():
    assert os.path.exists(BENCH_PR9_PATH), (
        "BENCH_PR9.json missing; run `make bench-smoke`"
    )
    with open(BENCH_PR9_PATH, encoding="utf-8") as handle:
        return json.load(handle)


class TestBenchPR9Schema:
    """The shared-memory dispatch + search-service point."""

    def test_schema_version(self, pr9_payload):
        assert pr9_payload["schema"] == "repro-bench/v1"

    def test_records_shape(self, pr9_payload):
        records = pr9_payload["records"]
        assert records, "bench trajectory must not be empty"
        for record in records:
            assert isinstance(record["experiment"], str)
            assert record["experiment"].startswith("E")
            assert isinstance(record["n"], int) and record["n"] > 0
            assert isinstance(record["wall_seconds"], (int, float))
            assert record["wall_seconds"] >= 0
            assert record["backend"] in VALID_BACKENDS
            assert record["dispatch"] in VALID_DISPATCHES

    def test_both_dispatch_arms_timed(self, pr9_payload):
        dispatches = {
            record["dispatch"] for record in pr9_payload["records"]
        }
        assert dispatches == VALID_DISPATCHES, (
            "both dispatch arms and the service run must be timed"
        )

    def test_shm_speedup_block(self, pr9_payload):
        speedup = pr9_payload["shm_speedup"]
        assert speedup["workload"] == "per-spec-graph-dispatch"
        assert speedup["family"].startswith("mori")
        assert speedup["n"] >= 10_000
        assert speedup["specs"] >= 1
        assert speedup["cells_per_spec"] >= 1
        assert speedup["budget"] >= 1
        assert speedup["jobs"] >= 2
        per_dispatch = speedup["per_dispatch"]
        # Both arms are measured, not a favourable subset.
        assert set(per_dispatch) == {
            "pickle-per-spec", "shared-memory",
        }
        for numbers in per_dispatch.values():
            assert numbers["seconds"] > 0
        expected = (
            per_dispatch["pickle-per-spec"]["seconds"]
            / per_dispatch["shared-memory"]["seconds"]
        )
        assert speedup["speedup_vs_pickle"] == pytest.approx(
            expected, rel=0.01
        )

    def test_service_load_block(self, pr9_payload):
        load = pr9_payload["service_load"]
        assert load["workload"] == "service-query-load"
        assert load["family"].startswith("mori")
        assert load["graphs"] >= 1
        assert load["workers"] >= 1
        assert load["queries"] >= load["clients"]
        assert load["wall_seconds"] > 0
        assert load["qps"] > 0
        assert 0 < load["p50_ms"] <= load["p99_ms"]
        assert load["mean_ms"] > 0

    def test_recorded_acceptance_speedup(self, pr9_payload):
        """The committed run met the PR's >= 2x acceptance bar on
        bit-identical trial values, and measured the service under
        the required >= 4 concurrent clients."""
        speedup = pr9_payload["shm_speedup"]
        assert speedup["acceptance_baseline"] == "pickle-per-spec"
        assert speedup["speedup_vs_pickle"] >= 2.0
        assert speedup["outputs_identical"] is True
        load = pr9_payload["service_load"]
        assert load["clients"] >= 4
        assert load["batch_identical"] is True


@pytest.fixture(scope="module")
def pr10_payload():
    assert os.path.exists(BENCH_PR10_PATH), (
        "BENCH_PR10.json missing; run `make bench-smoke`"
    )
    with open(BENCH_PR10_PATH, encoding="utf-8") as handle:
        return json.load(handle)


class TestBenchPR10Schema:
    """The coalesced-serving + answer-cache point."""

    def test_schema_version(self, pr10_payload):
        assert pr10_payload["schema"] == "repro-bench/v1"

    def test_records_shape(self, pr10_payload):
        records = pr10_payload["records"]
        assert records, "bench trajectory must not be empty"
        for record in records:
            assert isinstance(record["experiment"], str)
            assert record["experiment"].startswith("E")
            assert isinstance(record["n"], int) and record["n"] > 0
            assert isinstance(record["wall_seconds"], (int, float))
            assert record["wall_seconds"] >= 0
            assert record["backend"] in VALID_BACKENDS
            assert record["dispatch"] in VALID_SERVING_DISPATCHES

    def test_all_serving_arms_timed(self, pr10_payload):
        dispatches = {
            record["dispatch"] for record in pr10_payload["records"]
        }
        assert dispatches == VALID_SERVING_DISPATCHES, (
            "the baseline, coalesced, and cache arms must all be timed"
        )

    def test_serving_block(self, pr10_payload):
        block = pr10_payload["serving_speedup"]
        assert block["workload"] == "service-query-coalescing"
        assert block["family"].startswith("mori")
        assert block["graphs"] >= 2
        assert block["workers"] >= 1
        assert block["queries"] >= block["clients"]
        assert block["batch_window_ms"] > 0
        assert block["batch_max"] >= 1
        assert block["cache_size"] >= 1
        assert block["engine"] in VALID_ENGINES
        per_dispatch = block["per_dispatch"]
        # Every arm measured, including the decomposition arm — not a
        # favourable subset.
        assert set(per_dispatch) == {
            "per-query",
            "per-query-nodelay",
            "coalesced",
            "cache-warm",
            "pool-cold-fill",
        }
        for numbers in per_dispatch.values():
            assert numbers["qps"] > 0
            assert numbers["wall_seconds"] > 0
            assert 0 < numbers["p50_ms"] <= numbers["p99_ms"]
        assert per_dispatch["coalesced"]["batches"] >= 1
        assert per_dispatch["coalesced"]["mean_batch"] >= 1.0
        assert per_dispatch["cache-warm"]["cache_hits"] >= 1

    def test_open_loop_block(self, pr10_payload):
        open_loop = pr10_payload["serving_speedup"]["open_loop"]
        assert set(open_loop) == {"coalesced", "per-query"}
        for arm in open_loop.values():
            assert arm["offered_qps"] > 0
            assert arm["clients"] > 1
            assert arm["qps"] > 0
            assert 0 < arm["p50_ms"] <= arm["p99_ms"]
        # The overload probe is where coalescing shows real depth:
        # the dispatcher must have formed multi-query batches.
        assert open_loop["coalesced"]["mean_batch"] > 1.0

    def test_service_stats_plumbed(self, pr10_payload):
        snapshot = pr10_payload["serving_speedup"]["service_stats"]
        assert snapshot["routes"]["search"]["count"] >= 1
        assert snapshot["batches"]["count"] >= 1
        assert snapshot["batches"]["size_distribution"]
        assert "hits" in snapshot["cache"]
        assert "p99_ms" in snapshot["routes"]["search"]

    def test_recorded_acceptance_gates(self, pr10_payload):
        """The committed run met the PR's acceptance bars: >= 3x
        sustained qps for batched dispatch over the PR 9 per-query
        path, cache-warm p50 below the pool-dispatch p50, and every
        answer bit-identical to the batch path."""
        block = pr10_payload["serving_speedup"]
        assert block["acceptance_baseline"].startswith("per-query")
        assert block["qps_speedup_vs_per_query"] >= 3.0
        per_dispatch = block["per_dispatch"]
        expected = (
            per_dispatch["coalesced"]["qps"]
            / per_dispatch["per-query"]["qps"]
        )
        assert block["qps_speedup_vs_per_query"] == pytest.approx(
            expected, rel=0.01
        )
        assert block["cache_p50_below_pool_p50"] is True
        assert (
            per_dispatch["cache-warm"]["p50_ms"]
            < per_dispatch["pool-cold-fill"]["p50_ms"]
        )
        assert block["outputs_identical"] is True
        assert block["clients"] >= 4

"""Corpus battery: the memory-mapped snapshot store must be safe.

The corpus is a cache keyed purely by content identity ``(model
params, n, seed)``; like every other execution axis it may only change
wall-clock time.  The battery pins:

* **round-trips** — ``put`` then ``get`` reproduces the snapshot bit
  for bit (edge ids included) for every model with a family, and the
  loaded arrays are memory-mapped **read-only** (writes raise);
* **integrity** — a single flipped blob byte fails ``verify``; ``get``
  stays structural-only (a digest check per lookup would defeat the
  cache), mirroring the documented split;
* **races** — two writers landing on one key leave exactly one valid
  entry (the ResultStore shared-directory guarantee, easier here
  because both writers produce identical bytes);
* **the cache protocol** — hit/miss accounting, build-once semantics,
  environment activation, and the ``build_graph_snapshot`` wiring that
  serves experiment runs from the corpus;
* **cache keys** — the ``generator`` axis follows the backend/engine
  policy: the default never enters trial params, so corpus-less and
  pre-corpus cache entries keep replaying.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core.families import (
    BarabasiAlbertFamily,
    CooperFriezeFamily,
    MoriFamily,
)
from repro.core.trials import build_graph_snapshot, family_spec
from repro.errors import ExperimentError
from repro.graphs import FrozenGraph, freeze
from repro.graphs.corpus import (
    CORPUS_DIR_VARIABLE,
    CORPUS_SCHEMA,
    HAVE_CORPUS,
    GraphCorpus,
    active_corpus,
    corpus_stats,
    reset_corpus_stats,
)

pytestmark = pytest.mark.skipif(
    not HAVE_CORPUS, reason="the graph corpus requires numpy"
)

FAMILIES = {
    "mori": lambda: MoriFamily(p=0.5, m=2),
    "cooper-frieze": lambda: CooperFriezeFamily(),
    "ba": lambda: BarabasiAlbertFamily(m=2),
}


def _blob_path(manifest_path: str) -> str:
    return manifest_path[: -len(".json")] + ".bin"


class TestRoundTrip:
    @pytest.mark.parametrize("model", sorted(FAMILIES))
    def test_put_get_is_bit_identical(self, tmp_path, model):
        family = FAMILIES[model]()
        built = freeze(family.build(90, seed=3))
        corpus = GraphCorpus(tmp_path)
        corpus.put(family_spec(family), 90, 3, built)
        loaded = corpus.get(family_spec(family), 90, 3)
        assert isinstance(loaded, FrozenGraph)
        assert loaded == built
        assert hash(loaded) == hash(built)
        assert list(loaded.edges()) == list(built.edges())
        assert loaded.degree_sequence() == built.degree_sequence()
        assert loaded.num_self_loops() == built.num_self_loops()

    def test_put_accepts_mutable_graphs(self, tmp_path):
        family = MoriFamily(p=0.5, m=1)
        corpus = GraphCorpus(tmp_path)
        corpus.put(family_spec(family), 50, 0, family.build(50, seed=0))
        loaded = corpus.get(family_spec(family), 50, 0)
        assert loaded == freeze(family.build(50, seed=0))

    def test_loaded_arrays_are_read_only(self, tmp_path):
        family = MoriFamily(p=0.5, m=1)
        corpus = GraphCorpus(tmp_path)
        corpus.put(
            family_spec(family), 50, 0,
            family.build_frozen(50, seed=0),
        )
        loaded = corpus.get(family_spec(family), 50, 0)
        with pytest.raises(ValueError):
            loaded._slot_targets[0] = 99
        with pytest.raises(ValueError):
            loaded._offsets[0] = 99

    def test_distinct_keys_do_not_collide(self, tmp_path):
        corpus = GraphCorpus(tmp_path)
        family = MoriFamily(p=0.5, m=1)
        spec = family_spec(family)
        corpus.put(spec, 50, 0, family.build_frozen(50, seed=0))
        assert corpus.get(spec, 50, 1) is None
        assert corpus.get(spec, 60, 0) is None
        assert corpus.get(family_spec(MoriFamily(p=0.25, m=1)), 50, 0) \
            is None

    def test_put_rejects_mismatched_n(self, tmp_path):
        family = MoriFamily(p=0.5, m=1)
        corpus = GraphCorpus(tmp_path)
        with pytest.raises(ExperimentError, match="n=60"):
            corpus.put(
                family_spec(family), 60, 0,
                family.build_frozen(50, seed=0),
            )

    def test_writes_are_deterministic(self, tmp_path):
        """Same key, two writers: byte-identical entry files."""
        family = MoriFamily(p=0.5, m=2)
        spec = family_spec(family)
        first = GraphCorpus(tmp_path / "a")
        second = GraphCorpus(tmp_path / "b")
        path_a = first.put(spec, 70, 1, family.build_frozen(70, seed=1))
        path_b = second.put(spec, 70, 1, family.build_frozen(70, seed=1))
        with open(path_a, "rb") as handle:
            manifest_a = handle.read()
        with open(path_b, "rb") as handle:
            manifest_b = handle.read()
        assert manifest_a == manifest_b
        with open(_blob_path(path_a), "rb") as handle:
            blob_a = handle.read()
        with open(_blob_path(path_b), "rb") as handle:
            blob_b = handle.read()
        assert blob_a == blob_b


class TestIntegrity:
    def _one_entry(self, tmp_path):
        family = MoriFamily(p=0.5, m=2)
        corpus = GraphCorpus(tmp_path)
        manifest_path = corpus.put(
            family_spec(family), 60, 0,
            family.build_frozen(60, seed=0),
        )
        return corpus, family, manifest_path

    def test_verify_passes_on_clean_entries(self, tmp_path):
        corpus, _, _ = self._one_entry(tmp_path)
        report = corpus.verify()
        assert len(report) == 1
        assert all(ok for _, ok, _ in report)

    def test_flipped_blob_byte_fails_verify(self, tmp_path):
        corpus, _, manifest_path = self._one_entry(tmp_path)
        blob_path = _blob_path(manifest_path)
        with open(blob_path, "r+b") as handle:
            handle.seek(17)
            byte = handle.read(1)
            handle.seek(17)
            handle.write(bytes([byte[0] ^ 0x01]))
        report = corpus.verify()
        assert [(ok, msg) for _, ok, msg in report] == [
            (False, "sha256 mismatch")
        ]

    def test_truncated_blob_fails_verify_and_misses(self, tmp_path):
        corpus, family, manifest_path = self._one_entry(tmp_path)
        blob_path = _blob_path(manifest_path)
        with open(blob_path, "r+b") as handle:
            handle.truncate(32)
        assert not corpus.verify()[0][1]
        # And the size check already rejects it on the read path.
        assert corpus.get(family_spec(family), 60, 0) is None

    def test_garbage_manifest_is_a_miss_but_verify_reports(
        self, tmp_path
    ):
        corpus, family, manifest_path = self._one_entry(tmp_path)
        with open(manifest_path, "w", encoding="utf-8") as handle:
            handle.write('{"schema": "repro-corpus/v1", "n": tr')
        assert corpus.get(family_spec(family), 60, 0) is None
        path, ok, message = corpus.verify()[0]
        assert path == manifest_path
        assert not ok
        assert message == "unreadable manifest"

    def test_entries_lists_manifests_sorted(self, tmp_path):
        family = MoriFamily(p=0.5, m=2)
        corpus = GraphCorpus(tmp_path)
        spec = family_spec(family)
        for n in (80, 40, 60):
            corpus.put(spec, n, 0, family.build_frozen(n, seed=0))
        listed = list(corpus.entries())
        assert [path for path, _ in listed] == sorted(
            path for path, _ in listed
        )
        assert [m["n"] for _, m in listed] == [40, 60, 80]
        assert all(
            m["schema"] == CORPUS_SCHEMA for _, m in listed
        )

    def test_empty_or_missing_root_has_no_entries(self, tmp_path):
        corpus = GraphCorpus(tmp_path / "nowhere")
        assert list(corpus.entries()) == []
        assert corpus.verify() == []


class TestCacheProtocol:
    def setup_method(self):
        reset_corpus_stats()

    def test_get_or_build_counts_miss_then_hit(self, tmp_path):
        family = MoriFamily(p=0.5, m=1)
        spec = family_spec(family)
        corpus = GraphCorpus(tmp_path)
        calls = []

        def build():
            calls.append(1)
            return family.build(60, seed=0)

        first = corpus.get_or_build(spec, 60, 0, build)
        second = corpus.get_or_build(spec, 60, 0, build)
        assert calls == [1]  # built exactly once
        assert first == second
        assert corpus_stats() == {"hits": 1, "misses": 1}

    def test_two_writer_race_leaves_one_valid_entry(self, tmp_path):
        """Writer B lands a full entry while A is still building.

        A's subsequent put overwrites with byte-identical content, so
        whichever rename lands last, the key holds one valid entry and
        both writers return the same snapshot.
        """
        family = MoriFamily(p=0.5, m=2)
        spec = family_spec(family)
        corpus = GraphCorpus(tmp_path)

        def racing_build():
            # B's whole get_or_build completes inside A's miss window.
            GraphCorpus(tmp_path).put(
                spec, 70, 5, family.build_frozen(70, seed=5)
            )
            return family.build(70, seed=5)

        built = corpus.get_or_build(spec, 70, 5, racing_build)
        assert built == family.build_frozen(70, seed=5)
        report = corpus.verify()
        assert len(report) == 1
        assert report[0][1]  # the surviving entry is valid
        assert corpus.get(spec, 70, 5) == built

    def test_active_corpus_tracks_environment(self, tmp_path, monkeypatch):
        monkeypatch.delenv(CORPUS_DIR_VARIABLE, raising=False)
        assert active_corpus() is None
        monkeypatch.setenv(CORPUS_DIR_VARIABLE, "")
        assert active_corpus() is None
        monkeypatch.setenv(CORPUS_DIR_VARIABLE, str(tmp_path))
        corpus = active_corpus()
        assert isinstance(corpus, GraphCorpus)
        assert corpus.root == str(tmp_path)

    def test_numpy_absent_means_no_corpus(self, monkeypatch, tmp_path):
        import repro.graphs.corpus as corpus_module

        monkeypatch.setenv(CORPUS_DIR_VARIABLE, str(tmp_path))
        monkeypatch.setattr(corpus_module, "HAVE_CORPUS", False)
        assert active_corpus() is None

    def test_build_graph_snapshot_serves_from_corpus(
        self, tmp_path, monkeypatch
    ):
        """The experiment build path fills, then hits, the corpus —
        and a serial-built entry serves a vectorized run (the stored
        bytes are generator-independent by the equivalence contract)."""
        monkeypatch.setenv(CORPUS_DIR_VARIABLE, str(tmp_path))
        reset_corpus_stats()
        family = MoriFamily(p=0.5, m=2)
        first = build_graph_snapshot(family, 60, 2, "frozen", "serial")
        again = build_graph_snapshot(family, 60, 2, "frozen", "serial")
        crossed = build_graph_snapshot(
            family, 60, 2, "frozen", "vectorized"
        )
        assert corpus_stats() == {"hits": 2, "misses": 1}
        assert first == again == crossed

    def test_multigraph_backend_bypasses_corpus(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(CORPUS_DIR_VARIABLE, str(tmp_path))
        reset_corpus_stats()
        family = MoriFamily(p=0.5, m=1)
        build_graph_snapshot(family, 50, 0, "multigraph", "serial")
        assert corpus_stats() == {"hits": 0, "misses": 0}
        assert list(GraphCorpus(tmp_path).entries()) == []

    def test_inexact_size_family_bypasses_corpus(
        self, tmp_path, monkeypatch
    ):
        """The configuration family's giant component has fewer than
        ``n`` vertices, so it cannot honour the corpus's exact-size
        key — it must build past the store, not crash ``put``."""
        from repro.core.families import ConfigurationFamily

        assert ConfigurationFamily.exact_size is False
        monkeypatch.setenv(CORPUS_DIR_VARIABLE, str(tmp_path))
        reset_corpus_stats()
        family = ConfigurationFamily(exponent=2.5, min_degree=2)
        snapshot = build_graph_snapshot(
            family, 120, 7, "frozen", "serial"
        )
        assert snapshot.num_vertices <= 120
        assert corpus_stats() == {"hits": 0, "misses": 0}
        assert list(GraphCorpus(tmp_path).entries()) == []


class TestGeneratorCacheKey:
    """The generator axis follows the backend/engine cache-key policy."""

    def test_default_generator_stays_out_of_trial_params(self):
        from repro.core.searchability import _build_cell_specs

        def keys(generator):
            specs = _build_cell_specs(
                "E1", MoriFamily(p=0.5, m=1), 60, "weak", 1, 1, None,
                1, False, "default", "frozen", "serial", generator,
            )
            return [spec.params for spec in specs]

        serial_params = keys("serial")
        assert all("generator" not in p for p in serial_params)
        vector_params = keys("vectorized")
        assert all(
            p["generator"] == "vectorized" for p in vector_params
        )
        stripped = [
            {k: v for k, v in p.items() if k != "generator"}
            for p in vector_params
        ]
        assert stripped == serial_params


class TestCorpusCli:
    def test_build_list_verify_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        root = str(tmp_path / "corpus")
        assert main([
            "corpus", "build", root, "--model", "mori",
            "--sizes", "40,60", "--seeds", "0,1",
            "--generator", "vectorized",
        ]) == 0
        assert "4 built" in capsys.readouterr().out
        # Rebuilding is a no-op: everything is already present.
        assert main([
            "corpus", "build", root, "--model", "mori",
            "--sizes", "40,60", "--seeds", "0,1",
        ]) == 0
        assert "0 built, 4 already present" in capsys.readouterr().out
        assert main(["corpus", "list", root]) == 0
        assert "4 entries" in capsys.readouterr().out
        assert main(["corpus", "verify", root]) == 0
        assert "4/4 entries ok" in capsys.readouterr().out

    def test_verify_exits_nonzero_on_corruption(self, tmp_path, capsys):
        from repro.cli import main

        root = str(tmp_path / "corpus")
        main(["corpus", "build", root, "--sizes", "40"])
        capsys.readouterr()
        blob = next(
            os.path.join(directory, name)
            for directory, _, names in os.walk(root)
            for name in sorted(names)
            if name.endswith(".bin")
        )
        with open(blob, "r+b") as handle:
            handle.seek(3)
            byte = handle.read(1)
            handle.seek(3)
            handle.write(bytes([byte[0] ^ 0xFF]))
        assert main(["corpus", "verify", root]) == 1
        captured = capsys.readouterr()
        assert "sha256 mismatch" in captured.err
        assert "0/1 entries ok" in captured.out

    def test_run_reports_hits_on_second_pass(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.cli import main

        monkeypatch.delenv(CORPUS_DIR_VARIABLE, raising=False)
        root = str(tmp_path / "corpus")
        argv = [
            "run", "E17", "--quick", "--set", "sizes=60",
            "--set", "num_graphs=1", "--generator", "vectorized",
            "--corpus-dir", root,
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "corpus: 0 hits, 1 misses" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "corpus: 1 hits, 0 misses" in second
        # The replayed numbers are identical to the cold-cache run.
        assert first == second.replace(
            "corpus: 1 hits, 0 misses", "corpus: 0 hits, 1 misses"
        )
        # --corpus-dir activates the corpus for the run (and its
        # workers) only: the process environment is restored, so later
        # in-process main() calls do not inherit a corpus they never
        # asked for.
        assert CORPUS_DIR_VARIABLE not in os.environ

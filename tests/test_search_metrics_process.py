"""Unit tests for search metrics aggregation and the run_search driver."""

from __future__ import annotations

import pytest

from repro.errors import AnalysisError, InvalidParameterError
from repro.search.metrics import (
    SearchResult,
    summarize_results,
)
from repro.search.algorithms import FloodingSearch, RandomWalkSearch
from repro.search.process import default_budget, make_oracle, run_search
from repro.search.oracle import StrongOracle, WeakOracle


def _result(requests: int, found: bool = True) -> SearchResult:
    return SearchResult(
        algorithm="x",
        model="weak",
        found=found,
        requests=requests,
        start=1,
        target=2,
    )


class TestSummarize:
    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            summarize_results([])

    def test_mixed_configurations_rejected(self):
        other = SearchResult(
            algorithm="y",
            model="weak",
            found=True,
            requests=1,
            start=1,
            target=2,
        )
        with pytest.raises(AnalysisError):
            summarize_results([_result(1), other])

    def test_single_run(self):
        summary = summarize_results([_result(5)])
        assert summary.mean_requests == 5
        assert summary.std_requests == 0.0
        assert summary.ci_halfwidth == 0.0
        assert summary.median_requests == 5
        assert summary.success_rate == 1.0

    def test_mean_and_median(self):
        summary = summarize_results([_result(r) for r in (1, 2, 9)])
        assert summary.mean_requests == pytest.approx(4.0)
        assert summary.median_requests == 2

    def test_even_median(self):
        summary = summarize_results([_result(r) for r in (1, 3)])
        assert summary.median_requests == pytest.approx(2.0)

    def test_success_rate(self):
        results = [_result(5), _result(10, found=False)]
        summary = summarize_results(results)
        assert summary.success_rate == pytest.approx(0.5)
        assert summary.num_found == 1

    def test_ci_contains_mean(self):
        summary = summarize_results(
            [_result(r) for r in (4, 5, 6, 5, 4, 6)]
        )
        low, high = summary.ci
        assert low <= summary.mean_requests <= high
        assert summary.ci_halfwidth > 0


class TestRunSearch:
    def test_default_budget_formula(self, triangle):
        assert default_budget(triangle) == 4 * 3 + 16

    def test_make_oracle_dispatch(self, triangle):
        assert isinstance(
            make_oracle("weak", triangle, 1, 2), WeakOracle
        )
        assert isinstance(
            make_oracle("strong", triangle, 1, 2), StrongOracle
        )
        with pytest.raises(InvalidParameterError):
            make_oracle("psychic", triangle, 1, 2)

    def test_negative_budget_rejected(self, triangle):
        with pytest.raises(InvalidParameterError):
            run_search(FloodingSearch(), triangle, 1, 2, budget=-1)

    def test_zero_budget_returns_unfound(self, triangle):
        result = run_search(
            FloodingSearch(), triangle, 1, 3, budget=0, seed=0
        )
        assert not result.found
        assert result.requests == 0

    def test_result_records_endpoints(self, triangle):
        result = run_search(RandomWalkSearch(), triangle, 1, 3, seed=0)
        assert result.start == 1
        assert result.target == 3

"""Regression pins for the runner-refactored experiments.

The decomposition of E1, E2, E3, E6, and E17 into runner trials must
change *nothing* numerically: these tests pin every headline `derived`
scalar of each refactored experiment, at fixed seeds on small grids, to
the exact values the pre-refactor monolithic loops produced (captured
from the seed-state code).  Python float arithmetic is deterministic,
so the comparison is exact equality, not approximate.

A second set of checks asserts the acceptance criterion end-to-end:
`repro run <id> --jobs 4 --json out.json` is byte-identical to the
serial run, and a warm `--cache-dir` re-run recomputes nothing.

The graph-backend refactor extends the bargain: searches now default
to running on :class:`~repro.graphs.frozen.FrozenGraph` snapshots with
batched per-graph cells, and the *same* golden scalars must come out
on either backend (the default serial pin exercises ``frozen``;
``test_derived_scalars_pinned_multigraph`` forces the pre-refactor
mutable path; ``TestBatchedCellLayout`` re-derives a pinned
experiment's raw per-graph values through the explicit
``batched_search_trial`` cell layout).
"""

from __future__ import annotations

import inspect
import json

import pytest

from repro.core.experiments import (
    e1_mori_weak,
    e2_mori_strong,
    e3_cooper_frieze,
    e6_degree_distribution,
    e17_simulation_slowdown,
)

#: Exact `derived` scalars produced by the pre-refactor serial loops.
GOLDEN = {
    "E1": {
        "kwargs": {'num_graphs': 2, 'runs_per_graph': 1, 'seed': 1, 'sizes': [60, 120, 240]},
        "derived": {
            "exponent/age-closest-id": 0.29780487246033255,
            "exponent/age-oldest": 0.790350236933498,
            "exponent/flooding": 0.8852590769386163,
            "exponent/high-degree": 0.8411796317578676,
            "exponent/mixed-0.25": 1.1534303233992103,
            "exponent/omniscient-window": 1.0521683299073676,
            "exponent/random-walk": 1.2280323837694491,
            "exponent/restart-walk-0.1": 1.1869400872610416,
            "exponent/self-avoiding-walk": 0.9422613912900317,
            "floor@largest": 5.749573692091843,
            "mean@240/age-closest-id": 68.0,
            "mean@240/age-oldest": 169.0,
            "mean@240/flooding": 174.0,
            "mean@240/high-degree": 168.5,
            "mean@240/mixed-0.25": 190.5,
            "mean@240/omniscient-window": 21.5,
            "mean@240/random-walk": 214.0,
            "mean@240/restart-walk-0.1": 155.5,
            "mean@240/self-avoiding-walk": 120.0,
        },
    },
    "E2": {
        "kwargs": {'num_graphs': 2, 'runs_per_graph': 1, 'seed': 2, 'sizes': [60, 120, 240]},
        "derived": {
            "exponent/biased-walk-strong": 0.4595400023082162,
            "exponent/high-degree-strong": 1.4325352099569453,
            "exponent/uniform-walk-strong": 1.889321812708038,
            "floor_exponent": 0.2,
        },
    },
    "E3": {
        "kwargs": {'num_graphs': 2, 'runs_per_graph': 1, 'seed': 3, 'sizes': [60, 120]},
        "derived": {
            "exponent/age-closest-id": 0.7224660244710904,
            "exponent/age-oldest": 0.668549130994131,
            "exponent/flooding": 1.237578825151124,
            "exponent/high-degree": 0.7842713089445631,
            "exponent/mixed-0.25": 0.6892991605358915,
            "exponent/random-walk": 1.2081081953301995,
            "exponent/restart-walk-0.1": 1.4788341498598132,
            "exponent/self-avoiding-walk": 0.2863041851566406,
        },
    },
    "E6": {
        "kwargs": {'n': 2000, 'seed': 6},
        "derived": {
            "exponent/ba(m=2)": 2.7389909475871166,
            "exponent/config(k=2.5)": 2.3447516259341947,
            "exponent/cooper-frieze(a=0.75)": 2.540858022792351,
            "exponent/kleinberg(r=2, 44x44)": 12.331782492267386,
            "exponent/mori(p=0.5, m=2)": 2.7033846392827074,
            "ks/ba(m=2)": 0.01281700575885758,
            "ks/config(k=2.5)": 0.0124151475536316,
            "ks/cooper-frieze(a=0.75)": 0.01511446605900002,
            "ks/kleinberg(r=2, 44x44)": 3.664484049537009e-09,
            "ks/mori(p=0.5, m=2)": 0.014790833039047602,
        },
    },
    "E17": {
        "kwargs": {'num_graphs': 2, 'seed': 17, 'sizes': [100, 200]},
        "derived": {
            "worst_ratio": 0.9090909090909091,
            "worst_ratio/n=100": 0.3155080213903743,
            "worst_ratio/n=200": 0.9090909090909091,
        },
    },
}


EXPERIMENTS = {
    "E1": e1_mori_weak,
    "E2": e2_mori_strong,
    "E3": e3_cooper_frieze,
    "E6": e6_degree_distribution,
    "E17": e17_simulation_slowdown,
}


#: Pinned experiments whose functions accept the trajectory/independent
#: construction mode (the default must stay `independent` so every pin
#: above keeps holding without a mode argument).
MODE_EXPERIMENTS = [
    experiment_id
    for experiment_id in sorted(GOLDEN)
    if "mode"
    in inspect.signature(EXPERIMENTS[experiment_id]).parameters
]


@pytest.mark.parametrize("experiment_id", sorted(GOLDEN))
def test_derived_scalars_pinned_serial(experiment_id):
    """jobs=1 reproduces the pre-refactor numbers bit-for-bit.

    The default backend is now ``frozen``, so this also pins that the
    CSR-snapshot batched path changes nothing numerically.
    """
    pin = GOLDEN[experiment_id]
    result = EXPERIMENTS[experiment_id](**pin["kwargs"])
    assert result.derived == pin["derived"]


@pytest.mark.parametrize("experiment_id", MODE_EXPERIMENTS)
def test_explicit_independent_mode_matches_pins(experiment_id):
    """mode='independent' spelled out changes nothing against the pins."""
    pin = GOLDEN[experiment_id]
    result = EXPERIMENTS[experiment_id](
        **pin["kwargs"], mode="independent"
    )
    assert result.derived == pin["derived"]


def test_mode_gained_by_the_expected_experiments():
    """E17 is the only pinned experiment with a mode axis (E18/E19 are
    covered by their own shape tests)."""
    assert MODE_EXPERIMENTS == ["E17"]


#: Exact scalars of the trajectory-coupled runs at fixed seeds (captured
#: from this PR's implementation): trajectory mode has its own golden
#: trajectory so a drift in checkpoint snapshots, trajectory seeds, or
#: the coupled fold shows up here even though the independent pins above
#: cannot see it.
TRAJECTORY_GOLDEN = {
    "E17": {
        "kwargs": {"sizes": (100, 200), "num_graphs": 2, "seed": 17},
        "derived": {
            "worst_ratio/n=100": 0.5844155844155844,
            "worst_ratio/n=200": 0.2189655172413793,
            "worst_ratio": 0.5844155844155844,
        },
    },
    "E19": {
        "kwargs": {
            "sizes": (100, 200),
            "num_graphs": 2,
            "runs_per_graph": 1,
            "seed": 19,
        },
        "derived": {
            "exponent/mori(m=1,p=0.5)": -1.2983412745697478,
            "mean@largest/mori(m=1,p=0.5)": 37.0,
            "exponent/cooper-frieze(a=0.75)": 0.39854937649027455,
            "mean@largest/cooper-frieze(a=0.75)": 101.5,
            "min_exponent": -1.2983412745697478,
        },
    },
}


class TestTrajectoryMode:
    """Trajectory runs: pinned scalars and coupled-seed re-derivation."""

    def test_e17_trajectory_pinned(self):
        pin = TRAJECTORY_GOLDEN["E17"]
        result = e17_simulation_slowdown(
            **pin["kwargs"], mode="trajectory"
        )
        assert result.derived == pin["derived"]

    def test_e19_pinned(self):
        from repro.core.experiments import e19_trajectory_scaling

        pin = TRAJECTORY_GOLDEN["E19"]
        result = e19_trajectory_scaling(**pin["kwargs"])
        assert result.derived == pin["derived"]

    def test_e17_trajectory_rederives_from_coupled_seeds(self):
        """Each checkpoint cell equals the *independent* trial at the
        realisation's trajectory seed — the bit-identity that makes
        trajectory mode a pure wall-clock optimisation."""
        from repro.core.families import MoriFamily
        from repro.core.searchability import trajectory_seeds
        from repro.core.trials import (
            family_spec,
            simulation_slowdown_trial,
        )

        kwargs = TRAJECTORY_GOLDEN["E17"]["kwargs"]
        result = e17_simulation_slowdown(
            **kwargs, mode="trajectory"
        )
        spec = family_spec(MoriFamily(p=0.25, m=1))
        seeds = trajectory_seeds(
            kwargs["seed"], kwargs["num_graphs"]
        )
        for size in kwargs["sizes"]:
            cell_worst = 0.0
            for graph_seed in seeds:
                value = simulation_slowdown_trial(
                    family=spec, size=size, seed=graph_seed
                )
                bound = (
                    max(value["strong_requests"], 1)
                    * value["max_degree"]
                )
                cell_worst = max(
                    cell_worst, value["weak_requests"] / bound
                )
            assert (
                result.derived[f"worst_ratio/n={size}"] == cell_worst
            )

    def test_e17_trajectory_backend_and_jobs_invariant(self):
        pin = TRAJECTORY_GOLDEN["E17"]
        baseline = e17_simulation_slowdown(
            **pin["kwargs"], mode="trajectory"
        )
        multigraph = e17_simulation_slowdown(
            **pin["kwargs"], mode="trajectory", backend="multigraph"
        )
        assert multigraph.derived == baseline.derived

    def test_e17_trajectory_cache_replay(self, tmp_path, monkeypatch):
        from repro.runner import TrialSpec

        pin = TRAJECTORY_GOLDEN["E17"]
        cache = str(tmp_path / "cache")
        first = e17_simulation_slowdown(
            **pin["kwargs"], mode="trajectory", cache_dir=cache
        )

        def exploding_execute(self):
            raise AssertionError(
                "trajectory trial recomputed despite warm cache"
            )

        monkeypatch.setattr(TrialSpec, "execute", exploding_execute)
        second = e17_simulation_slowdown(
            **pin["kwargs"], mode="trajectory", cache_dir=cache
        )
        assert first.derived == second.derived

    def test_modes_share_no_cache_entries(self, tmp_path):
        """Independent and trajectory runs key their trials differently,
        so one cache directory serves both without cross-talk."""
        pin = TRAJECTORY_GOLDEN["E17"]
        cache = str(tmp_path / "cache")
        independent = e17_simulation_slowdown(
            **pin["kwargs"], cache_dir=cache
        )
        trajectory = e17_simulation_slowdown(
            **pin["kwargs"], mode="trajectory", cache_dir=cache
        )
        assert independent.derived == GOLDEN["E17"]["derived"]
        assert trajectory.derived == TRAJECTORY_GOLDEN["E17"]["derived"]
        # Re-running each mode replays its own entries and still
        # produces its own pinned values.
        assert (
            e17_simulation_slowdown(
                **pin["kwargs"], cache_dir=cache
            ).derived
            == independent.derived
        )
        assert (
            e17_simulation_slowdown(
                **pin["kwargs"], mode="trajectory", cache_dir=cache
            ).derived
            == trajectory.derived
        )


@pytest.mark.parametrize("experiment_id", sorted(GOLDEN))
def test_derived_scalars_pinned_multigraph(experiment_id):
    """backend='multigraph' (the pre-refactor path) matches the pins too."""
    pin = GOLDEN[experiment_id]
    result = EXPERIMENTS[experiment_id](
        **pin["kwargs"], backend="multigraph"
    )
    assert result.derived == pin["derived"]


class TestBatchedCellLayout:
    """Explicit per-graph cell batches reproduce the pinned grids."""

    def test_e1_cells_reproduce_portfolio_values(self):
        """E1's per-graph trial values, re-derived cell by cell."""
        from repro.core.trials import (
            batched_search_trial,
            family_spec,
            portfolio_factories,
            search_cost_graph_trial,
        )
        from repro.core.families import MoriFamily
        from repro.rng import substream

        kwargs = GOLDEN["E1"]["kwargs"]
        spec = family_spec(MoriFamily(p=0.5, m=1))
        names = list(portfolio_factories("weak-omniscient"))
        cells = [
            {"algorithm": name, "run_index": run_index}
            for name in names
            for run_index in range(kwargs["runs_per_graph"])
        ]
        for size_index, size in enumerate(kwargs["sizes"]):
            for graph_index in range(kwargs["num_graphs"]):
                graph_seed = substream(
                    substream(kwargs["seed"], size_index), graph_index
                )
                grouped = search_cost_graph_trial(
                    family=spec,
                    size=size,
                    portfolio="weak-omniscient",
                    runs_per_graph=kwargs["runs_per_graph"],
                    seed=graph_seed,
                )
                flat = batched_search_trial(
                    family=spec,
                    size=size,
                    portfolio="weak-omniscient",
                    cells=cells,
                    seed=graph_seed,
                )
                regrouped: dict = {}
                for cell, value in zip(cells, flat):
                    regrouped.setdefault(
                        cell["algorithm"], []
                    ).append(value)
                assert regrouped == grouped


@pytest.mark.slow
@pytest.mark.parametrize("experiment_id", sorted(GOLDEN))
def test_derived_scalars_pinned_parallel(experiment_id):
    """jobs=4 reproduces the same pins (parallel == serial == golden)."""
    pin = GOLDEN[experiment_id]
    result = EXPERIMENTS[experiment_id](**pin["kwargs"], jobs=4)
    assert result.derived == pin["derived"]


@pytest.mark.slow
class TestCLIAcceptance:
    """ISSUE acceptance: the CLI parallel/cached paths change nothing."""

    def test_jobs4_json_byte_identical_to_serial(self, tmp_path, capsys):
        from repro.cli import main

        serial_path = tmp_path / "serial.json"
        parallel_path = tmp_path / "parallel.json"
        assert main(
            ["run", "E1", "--quick", "--json", str(serial_path)]
        ) == 0
        assert main(
            [
                "run", "E1", "--quick", "--jobs", "4",
                "--json", str(parallel_path),
            ]
        ) == 0
        capsys.readouterr()
        assert serial_path.read_bytes() == parallel_path.read_bytes()
        derived = json.loads(serial_path.read_text())["derived"]
        assert derived  # the record actually carries scalars

    def test_cache_dir_rerun_recomputes_nothing(
        self, tmp_path, capsys, monkeypatch
    ):
        from repro.cli import main
        from repro.runner import TrialSpec

        cache = tmp_path / "cache"
        first = tmp_path / "first.json"
        second = tmp_path / "second.json"
        assert main(
            [
                "run", "E17", "--quick",
                "--cache-dir", str(cache),
                "--json", str(first),
            ]
        ) == 0

        def exploding_execute(self):
            raise AssertionError("trial recomputed despite warm cache")

        monkeypatch.setattr(TrialSpec, "execute", exploding_execute)
        assert main(
            [
                "run", "E17", "--quick",
                "--cache-dir", str(cache),
                "--json", str(second),
            ]
        ) == 0
        capsys.readouterr()
        assert first.read_bytes() == second.read_bytes()

"""Overlay-equivalence battery for :class:`~repro.graphs.delta.DeltaGraph`.

The overlay layer's contract: after any sequence of vertex/edge
removals and family-style joins, the DeltaGraph *is* the surviving
graph — same degrees, same components, same oracle answers — and
:meth:`~repro.graphs.delta.DeltaGraph.resnapshot` compacts it into a
FrozenGraph equal, hash-equal, and digest-identical to building the
surviving graph directly.  Pinned here across all five graph models
and both static backends as the base, plus the ``prefix`` fast path
(a pure trailing truncation must not rebuild) and the
:func:`~repro.graphs.delta.graph_digest` canonicalisation itself.
"""

from __future__ import annotations

import random

import pytest

from repro.core.families import (
    BarabasiAlbertFamily,
    CooperFriezeFamily,
    MoriFamily,
)
from repro.errors import GraphConstructionError
from repro.graphs import freeze
from repro.graphs.base import MultiGraph
from repro.graphs.components import connected_components
from repro.graphs.configuration import power_law_configuration_graph
from repro.graphs.delta import DeltaGraph, graph_digest
from repro.graphs.kleinberg import kleinberg_grid
from repro.rng import make_rng
from repro.search.algorithms import (
    DegreeBiasedWalkSearch,
    RandomWalkSearch,
)
from repro.search.oracle import StrongOracle, WeakOracle


def model_graph(model: str, seed: int) -> MultiGraph:
    """One modest instance of each model the paper touches."""
    if model == "mori":
        return MoriFamily(p=0.5, m=2).build(120, seed=seed)
    if model == "cooper-frieze":
        return CooperFriezeFamily().build(100, seed=seed)
    if model == "ba":
        return BarabasiAlbertFamily(m=2).build(120, seed=seed)
    if model == "config":
        # Disconnected, with loops and parallel edges — the
        # adversarial case for the masking logic.
        return power_law_configuration_graph(120, 2.5, seed=seed)
    if model == "kleinberg":
        return kleinberg_grid(10, r=2.0, q=1, seed=seed).graph
    raise AssertionError(model)


MODELS = ("mori", "cooper-frieze", "ba", "config", "kleinberg")
BACKENDS = ("multigraph", "frozen")


def as_backend(graph: MultiGraph, backend: str):
    return graph if backend == "multigraph" else freeze(graph)


def churn_overlay(graph, rng: random.Random, removals: int, joins: int):
    """Random vertex removals, edge removals, and joins on an overlay.

    Mixes all three mutation kinds (vertex tombstones cascade to their
    incident edges; lone edge tombstones leave both endpoints live;
    joins attach to surviving vertices) so the survivor exercises every
    masking path at once.
    """
    delta = DeltaGraph(graph)
    for _ in range(removals):
        live = delta.vertices()
        if len(live) <= 2:
            break
        if rng.random() < 0.3 and delta.num_edges > 0:
            eid = rng.choice([eid for eid, _, _ in delta.edges()])
            delta.remove_edge(eid)
        else:
            delta.remove_vertex(rng.choice(live))
    for _ in range(joins):
        live = delta.vertices()
        v = delta.add_vertex()
        for target in rng.sample(live, k=min(2, len(live))):
            delta.add_edge(v, target)
    return delta


def built_directly(delta: DeltaGraph) -> MultiGraph:
    """The surviving graph built from scratch, bypassing the overlay.

    Live vertices relabeled order-preservingly to ``1..k``, surviving
    edges added in old-eid order — the resnapshot/induced_subgraph
    convention.
    """
    relabel = {
        old: new for new, old in enumerate(delta.vertices(), start=1)
    }
    direct = MultiGraph(len(relabel))
    for _, tail, head in delta.edges():
        direct.add_edge(relabel[tail], relabel[head])
    return direct


@pytest.mark.parametrize("model", MODELS)
@pytest.mark.parametrize("backend", BACKENDS)
class TestOverlayMatchesDirectBuild:
    def overlay(self, model, backend, seed=7):
        graph = model_graph(model, seed=seed)
        rng = random.Random(1000 + seed)
        return churn_overlay(
            as_backend(graph, backend), rng, removals=30, joins=10
        )

    def test_resnapshot_equals_direct_build(self, model, backend):
        delta = self.overlay(model, backend)
        expected = freeze(built_directly(delta))
        snapshot = delta.resnapshot()
        assert snapshot == expected
        assert hash(snapshot) == hash(expected)
        assert graph_digest(snapshot) == graph_digest(expected)

    def test_degrees_match_direct_build(self, model, backend):
        delta = self.overlay(model, backend)
        direct = built_directly(delta)
        relabel = delta.relabeling()
        assert delta.num_live_vertices == direct.num_vertices
        assert delta.num_edges == direct.num_edges
        assert delta.num_self_loops() == direct.num_self_loops()
        for old, new in relabel.items():
            assert delta.degree(old) == direct.degree(new)
            assert delta.in_degree(old) == direct.in_degree(new)
            assert delta.out_degree(old) == direct.out_degree(new)
        assert delta.degree_sequence() == direct.degree_sequence()

    def test_components_match_direct_build(self, model, backend):
        delta = self.overlay(model, backend)
        direct = built_directly(delta)
        relabel = delta.relabeling()
        ours = sorted(
            sorted(relabel[v] for v in component)
            for component in connected_components(delta)
        )
        theirs = sorted(
            sorted(component)
            for component in connected_components(direct)
        )
        assert ours == theirs
        assert delta.is_connected() == direct.is_connected()

    def test_incidence_is_masked_base_order_then_joins(
        self, model, backend
    ):
        delta = self.overlay(model, backend)
        base = delta.base
        for v in delta.vertices():
            incident = delta.incident_edges(v)
            # No tombstoned edge, no edge into a tombstoned peer.
            for eid in incident:
                other = delta.other_endpoint(eid, v)
                assert delta.has_vertex(other)
            base_part = [e for e in incident if e < base.num_edges]
            join_part = [e for e in incident if e >= base.num_edges]
            assert list(incident) == base_part + join_part
            if v <= base.num_vertices:
                masked = [
                    e
                    for e in base.incident_edges(v)
                    if e in set(base_part)
                ]
                assert base_part == masked
            assert join_part == sorted(join_part)


@pytest.mark.parametrize("model", MODELS)
def test_oracle_traces_match_direct_build(model):
    """Request-for-request oracle equivalence, modulo the relabel.

    A weak and a strong search run on the overlay, then again on the
    compacted snapshot with relabeled endpoints and identical rng
    seeds; every journaled (request, answer) entry must map across
    under the vertex/edge relabeling — the oracle sees *only* the
    surviving graph.
    """
    graph = model_graph(model, seed=11)
    rng = random.Random(2024)
    delta = churn_overlay(freeze(graph), rng, removals=25, joins=8)
    snapshot = delta.resnapshot()
    vmap = delta.relabeling()
    emap = {
        old: new for new, (old, _, _) in enumerate(delta.edges())
    }

    live = delta.vertices()
    start, target = live[0], live[-1]
    for algorithm_factory, mapper in (
        (
            RandomWalkSearch,
            lambda kind, u, eid, answer: (
                kind, vmap[u], emap[eid], vmap[answer]
            ),
        ),
        (
            lambda: DegreeBiasedWalkSearch(beta=1.0),
            lambda kind, u, answer: (
                kind, vmap[u], tuple(vmap[w] for w in answer)
            ),
        ),
    ):
        algorithm = algorithm_factory()
        oracle_cls = (
            WeakOracle if algorithm.model == "weak" else StrongOracle
        )
        traces = []
        for run_graph, run_start, run_target in (
            (delta, start, target),
            (snapshot, vmap[start], vmap[target]),
        ):
            oracle = oracle_cls(run_graph, run_start, run_target)
            journal = []
            original = oracle.request

            def journaling_request(*args, _orig=original, _j=journal):
                answer = _orig(*args)
                _j.append((*args, answer))
                return answer

            oracle.request = journaling_request
            result = algorithm.run(oracle, make_rng(99), 400)
            traces.append((result.requests, result.found, journal))

        overlay_requests, overlay_found, overlay_journal = traces[0]
        direct_requests, direct_found, direct_journal = traces[1]
        assert overlay_requests == direct_requests
        assert overlay_found == direct_found
        mapped = [
            mapper(algorithm.model, *entry)
            for entry in overlay_journal
        ]
        direct = [
            (algorithm.model, *entry) for entry in direct_journal
        ]
        assert mapped == direct


class TestResnapshotFastPaths:
    def test_trivial_overlay_returns_base_itself(self):
        base = freeze(model_graph("mori", seed=3))
        delta = DeltaGraph(base)
        assert delta.is_trivial()
        assert delta.resnapshot() is base

    def test_trailing_truncation_uses_prefix(self, monkeypatch):
        """Tombstoning only the newest vertices (and with them the
        newest edges) must compose with FrozenGraph.prefix — no
        MultiGraph rebuild."""
        base = freeze(MoriFamily(p=0.5, m=2).build(80, seed=5))
        delta = DeltaGraph(base)
        for v in range(80, 70, -1):
            delta.remove_vertex(v)

        import repro.graphs.delta as delta_module

        def forbidden(*args, **kwargs):
            raise AssertionError(
                "trailing truncation must not rebuild via MultiGraph"
            )

        monkeypatch.setattr(delta_module, "MultiGraph", forbidden)
        snapshot = delta.resnapshot()
        expected = base.prefix(
            delta.num_live_vertices, delta.num_edges
        )
        assert snapshot == expected
        assert graph_digest(snapshot) == graph_digest(expected)

    def test_interior_removal_still_rebuilds_correctly(self):
        base = freeze(MoriFamily(p=0.5, m=2).build(60, seed=5))
        delta = DeltaGraph(base)
        delta.remove_vertex(10)
        rebuilt = delta.resnapshot()
        assert rebuilt == freeze(built_directly(delta))


class TestOverlayProtocol:
    def test_dead_vertex_rejected_everywhere(self):
        delta = DeltaGraph(freeze(model_graph("ba", seed=1)))
        delta.remove_vertex(7)
        for operation in (
            lambda: delta.degree(7),
            lambda: delta.incident_edges(7),
            lambda: delta.remove_vertex(7),
            lambda: delta.add_edge(1, 7),
            lambda: delta.add_edge(7, 1),
        ):
            with pytest.raises(GraphConstructionError):
                operation()
        assert not delta.has_vertex(7)
        assert 7 not in delta.vertices()

    def test_dead_edge_rejected_everywhere(self):
        delta = DeltaGraph(freeze(model_graph("ba", seed=1)))
        eid = delta.incident_edges(delta.vertices()[0])[0]
        delta.remove_edge(eid)
        for operation in (
            lambda: delta.edge_endpoints(eid),
            lambda: delta.remove_edge(eid),
        ):
            with pytest.raises(GraphConstructionError):
                operation()

    def test_edge_ids_never_reused(self):
        delta = DeltaGraph(freeze(model_graph("mori", seed=2)))
        base_m = delta.base.num_edges
        removed = delta.remove_vertex(delta.vertices()[-1])
        assert removed
        v = delta.add_vertex()
        eid = delta.add_edge(v, delta.vertices()[0])
        # New ids extend the sequence; tombstoned ids stay dead.
        assert eid >= base_m
        assert eid not in removed

    def test_num_vertices_is_id_bound_not_population(self):
        delta = DeltaGraph(freeze(model_graph("mori", seed=2)))
        n = delta.num_vertices
        delta.remove_vertex(3)
        assert delta.num_vertices == n
        assert delta.num_live_vertices == n - 1
        v = delta.add_vertex()
        assert v == n + 1
        assert delta.num_vertices == n + 1


class TestGraphDigest:
    def test_digest_equal_iff_graphs_equal(self):
        a = MultiGraph(3)
        a.add_edge(1, 2)
        a.add_edge(2, 3)
        b = MultiGraph(3)
        b.add_edge(1, 2)
        b.add_edge(2, 3)
        c = MultiGraph(3)
        c.add_edge(1, 2)
        c.add_edge(3, 2)  # same undirected edge, different orientation
        assert a == b
        assert graph_digest(a) == graph_digest(b)
        assert a != c
        assert graph_digest(a) != graph_digest(c)

    def test_digest_spans_backends_and_overlay(self):
        graph = model_graph("mori", seed=9)
        frozen = freeze(graph)
        assert graph_digest(graph) == graph_digest(frozen)
        assert graph_digest(frozen) == graph_digest(DeltaGraph(frozen))

"""Unit tests for degree correlations and the ASCII plot renderer."""

from __future__ import annotations

import pytest

from repro.analysis.correlation import (
    age_degree_correlation,
    degree_assortativity,
)
from repro.core.plotting import AsciiPlot, Series, render_loglog
from repro.errors import AnalysisError, InvalidParameterError
from repro.graphs.base import MultiGraph
from repro.graphs.configuration import power_law_configuration_graph
from repro.graphs.mori import mori_tree


class TestDegreeAssortativity:
    def test_star_is_disassortative(self):
        graph = MultiGraph.from_edges(
            5, [(2, 1), (3, 1), (4, 1), (5, 1)]
        )
        assert degree_assortativity(graph) < 0

    def test_regular_graph_degenerate(self, triangle):
        # All degrees equal: zero variance, correlation undefined.
        with pytest.raises(AnalysisError):
            degree_assortativity(triangle)

    def test_no_edges_rejected(self):
        with pytest.raises(AnalysisError):
            degree_assortativity(MultiGraph(3))

    def test_symmetric_in_orientation(self):
        forward = MultiGraph.from_edges(4, [(2, 1), (3, 2), (4, 3)])
        backward = MultiGraph.from_edges(4, [(1, 2), (2, 3), (3, 4)])
        assert degree_assortativity(forward) == pytest.approx(
            degree_assortativity(backward)
        )

    def test_range(self):
        graph = mori_tree(300, 0.5, seed=1).graph
        value = degree_assortativity(graph)
        assert -1.0 <= value <= 1.0


class TestAgeDegreeCorrelation:
    def test_evolving_graph_strongly_negative(self):
        graph = mori_tree(1000, 0.75, seed=2).graph
        assert age_degree_correlation(graph) < -0.1

    def test_pure_random_graph_near_zero(self):
        graph = power_law_configuration_graph(2000, 2.5, seed=3)
        assert abs(age_degree_correlation(graph)) < 0.1

    def test_needs_two_vertices(self):
        with pytest.raises(AnalysisError):
            age_degree_correlation(MultiGraph(1))

    def test_degenerate_degrees(self, triangle):
        with pytest.raises(AnalysisError):
            age_degree_correlation(triangle)


class TestSeries:
    def test_validates_lengths(self):
        with pytest.raises(InvalidParameterError):
            Series("s", (1.0, 2.0), (1.0,))

    def test_validates_nonempty(self):
        with pytest.raises(InvalidParameterError):
            Series("s", (), ())


class TestAsciiPlot:
    def test_render_contains_title_and_legend(self):
        plot = AsciiPlot(title="My Plot")
        plot.add_series("alpha", [1, 10, 100], [1, 10, 100])
        text = plot.render()
        assert "My Plot" in text
        assert "alpha" in text
        assert "log-log" in text

    def test_empty_plot_rejected(self):
        with pytest.raises(InvalidParameterError):
            AsciiPlot(title="t").render()

    def test_tiny_canvas_rejected(self):
        plot = AsciiPlot(title="t", width=3, height=2)
        plot.add_series("s", [1, 2], [1, 2])
        with pytest.raises(InvalidParameterError):
            plot.render()

    def test_log_plot_requires_positive(self):
        plot = AsciiPlot(title="t")
        plot.add_series("s", [1, 2], [0, 2])
        with pytest.raises(InvalidParameterError):
            plot.render(loglog=True)

    def test_linear_mode_accepts_zero(self):
        plot = AsciiPlot(title="t")
        plot.add_series("s", [1, 2], [0, 2])
        assert "linear" in plot.render(loglog=False)

    def test_straight_line_on_loglog(self):
        """A power law rasterises to a monotone staircase."""
        plot = AsciiPlot(title="t", width=40, height=10)
        xs = [10.0 * 2 ** k for k in range(8)]
        plot.add_series("pow", xs, [x ** 0.5 for x in xs])
        text = plot.render()
        rows = [
            line.split("|")[1]
            for line in text.splitlines()
            if line.count("|") == 2
        ]
        columns = []
        for row_index, row in enumerate(rows):
            for col_index, ch in enumerate(row):
                if ch == "o":
                    columns.append((col_index, row_index))
        columns.sort()
        # Monotone: larger x (columns) means smaller row index (higher).
        rows_in_order = [r for _, r in columns]
        assert rows_in_order == sorted(rows_in_order, reverse=True)

    def test_multiple_series_distinct_glyphs(self):
        plot = AsciiPlot(title="t")
        plot.add_series("a", [1, 10], [1, 10])
        plot.add_series("b", [1, 10], [10, 1])
        text = plot.render()
        assert "o a" in text
        assert "x b" in text

    def test_render_loglog_convenience(self):
        text = render_loglog(
            "curves", {"s": ([1.0, 10.0], [2.0, 20.0])}
        )
        assert "curves" in text
        assert "s" in text

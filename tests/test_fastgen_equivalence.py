"""Builder-equivalence battery: vectorized generation must be exact.

The serial builders (:mod:`repro.graphs.mori` and friends) are the
equivalence oracle; the batched kernels in :mod:`repro.graphs.fastgen`
are only allowed to change wall-clock time.  The battery pins the
contract from every side:

* **bit-identity** — edge lists *with ids*, degree sequences,
  self-loop counts and ``FrozenGraph`` hashes agree with the serial
  builders across a Móri ``p`` grid (both endpoints included), merge
  arities, the edges-per-step variant, BA, and Cooper–Frieze parameter
  corners;
* **golden digests** — independent sha256 pins (shared with the PR 3
  trajectory battery in ``test_frozen_graph.py``) catch the case where
  both builders drift together;
* **stream discipline** — after a fast build on a shared generator the
  generator sits exactly where the serial build would have left it;
* **trajectory checkpoints** — vectorized ``build_trajectory`` returns
  the serial marks, and its ``prefix()`` snapshots match the same
  golden digests the serial checkpoints pinned in PR 3;
* **dispatch** — ``build_graph_snapshot`` and the family layer route
  ``generator="vectorized"`` correctly, kernel-less families fall back
  serially, and without numpy the engine bows out with a clean
  :class:`~repro.errors.EngineUnavailableError`.
"""

from __future__ import annotations

import hashlib
import json
import random

import pytest

import repro.graphs.fastgen as fastgen_module
from repro.core.families import (
    BarabasiAlbertFamily,
    ConfigurationFamily,
    CooperFriezeFamily,
    MoriFamily,
)
from repro.core.trials import GENERATORS, build_graph_snapshot
from repro.errors import (
    EngineUnavailableError,
    ExperimentError,
    InvalidParameterError,
)
from repro.graphs import FrozenGraph, MultiGraph, freeze
from repro.graphs.barabasi_albert import barabasi_albert_graph
from repro.graphs.cooper_frieze import (
    CooperFriezeParams,
    cooper_frieze_graph,
)
from repro.graphs.fastgen import (
    FASTGEN_MODELS,
    HAVE_FASTGEN,
    fast_barabasi_albert_frozen,
    fast_cooper_frieze_frozen,
    fast_merged_mori_frozen,
    fast_mori_edges_per_step_frozen,
    fast_mori_parents,
    fast_mori_tree_frozen,
    frozen_from_pairs,
    require_fastgen_engine,
)
from repro.graphs.mori import (
    merged_mori_graph,
    mori_edges_per_step_graph,
    mori_tree,
)

needs_numpy = pytest.mark.skipif(
    not HAVE_FASTGEN, reason="the vectorized generator requires numpy"
)

P_GRID = (0.0, 0.25, 0.5, 0.75, 1.0)
SEEDS = (0, 7)


def _digest(graph) -> str:
    """sha256 of the labeled edge list (test_frozen_graph's formula)."""
    payload = json.dumps(
        [graph.num_vertices, [[t, h] for _, t, h in graph.edges()]],
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def assert_identical(fast: FrozenGraph, serial) -> None:
    """``fast`` must mirror the serial graph bit for bit.

    Edge *ids* matter, not just endpoints: the searches read incidence
    slots, so a permuted edge list would pass a set comparison and
    still diverge mid-walk.
    """
    reference = freeze(serial)
    assert isinstance(fast, FrozenGraph)
    assert fast.num_vertices == reference.num_vertices
    assert fast.num_edges == reference.num_edges
    assert list(fast.edges()) == list(reference.edges())
    assert fast.degree_sequence() == reference.degree_sequence()
    assert fast.num_self_loops() == reference.num_self_loops()
    assert fast == reference
    assert hash(fast) == hash(reference)
    for vertex in (1, fast.num_vertices // 2, fast.num_vertices):
        assert fast.incident_edges(vertex) == (
            reference.incident_edges(vertex)
        )
        assert fast.neighbors(vertex) == reference.neighbors(vertex)
        assert fast.in_degree(vertex) == reference.in_degree(vertex)
        assert fast.out_degree(vertex) == reference.out_degree(vertex)


# ----------------------------------------------------------------------
# Kernel-by-kernel bit-identity
# ----------------------------------------------------------------------


@needs_numpy
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("p", P_GRID)
class TestMoriTreeEquivalence:
    def test_parent_vector_matches_serial(self, p, seed):
        serial = mori_tree(200, p, seed=seed)
        fast = fast_mori_parents(200, p, seed=seed)
        assert fast.tolist() == list(serial.parents)

    def test_frozen_tree_matches_serial(self, p, seed):
        assert_identical(
            fast_mori_tree_frozen(150, p, seed=seed),
            mori_tree(150, p, seed=seed).graph,
        )


@needs_numpy
@pytest.mark.parametrize("m", (1, 2, 3))
@pytest.mark.parametrize("p", P_GRID)
class TestMergedMoriEquivalence:
    def test_matches_serial(self, p, m):
        assert_identical(
            fast_merged_mori_frozen(120, m, p, seed=3),
            merged_mori_graph(120, m, p, seed=3, keep_tree=False).graph,
        )

    def test_family_vectorized_build(self, p, m):
        family = MoriFamily(p=p, m=m)
        assert_identical(
            family.build_frozen(90, seed=11, generator="vectorized"),
            family.build(90, seed=11),
        )


@needs_numpy
@pytest.mark.parametrize("m", (1, 2, 3))
@pytest.mark.parametrize("p", (0.0, 0.5, 1.0))
class TestEdgesPerStepEquivalence:
    def test_matches_serial(self, p, m):
        assert_identical(
            fast_mori_edges_per_step_frozen(120, m, p, seed=5),
            mori_edges_per_step_graph(120, m, p, seed=5),
        )


@needs_numpy
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("m", (1, 2, 3))
class TestBarabasiAlbertEquivalence:
    def test_matches_serial(self, m, seed):
        assert_identical(
            fast_barabasi_albert_frozen(150, m, seed=seed),
            barabasi_albert_graph(150, m, seed=seed),
        )

    def test_family_vectorized_build(self, m, seed):
        family = BarabasiAlbertFamily(m=m)
        assert_identical(
            family.build_frozen(100, seed=seed, generator="vectorized"),
            family.build(100, seed=seed),
        )


#: Cooper-Frieze parameter corners: each exercises a distinct branch
#: mix of the step loop (NEW/OLD, uniform/preferential terminals,
#: multi-edge count draws, total-degree urn bookkeeping).
CF_CORNERS = {
    "default": dict(),
    "growth-only": dict(alpha=1.0),
    "uniform-ends": dict(alpha=0.6, beta=1.0, gamma=1.0, delta=1.0),
    "pref-ends": dict(alpha=0.6, beta=0.0, gamma=0.0, delta=0.0),
    "multi-edge": dict(
        alpha=0.5,
        new_edge_distribution=(0.5, 0.3, 0.2),
        old_edge_distribution=(0.6, 0.4),
    ),
    "total-degree": dict(preferential_by="total"),
}


@needs_numpy
@pytest.mark.parametrize("corner", sorted(CF_CORNERS))
class TestCooperFriezeEquivalence:
    def test_matches_serial(self, corner):
        params = CooperFriezeParams(**CF_CORNERS[corner])
        fast, marks = fast_cooper_frieze_frozen(110, params, seed=2)
        assert marks is None
        assert_identical(
            fast, cooper_frieze_graph(110, params, seed=2).graph
        )

    def test_checkpoint_marks_match_serial(self, corner):
        params = CooperFriezeParams(**CF_CORNERS[corner])
        checkpoints = (40, 70, 110)
        fast, marks = fast_cooper_frieze_frozen(
            110, params, seed=2, checkpoints=checkpoints
        )
        realised = cooper_frieze_graph(
            110, params, seed=2, checkpoints=checkpoints
        )
        assert marks == dict(realised.checkpoint_edge_counts)
        assert_identical(fast, realised.graph)

    def test_family_vectorized_build(self, corner):
        family = CooperFriezeFamily(
            params=CooperFriezeParams(**CF_CORNERS[corner])
        )
        assert_identical(
            family.build_frozen(80, seed=9, generator="vectorized"),
            family.build(80, seed=9),
        )


# ----------------------------------------------------------------------
# Golden digests and trajectory checkpoints
# ----------------------------------------------------------------------

#: sha256 of (n, edge list) for `family.build(n, seed=0)` — the same
#: pins the PR 3 trajectory battery holds in ``test_frozen_graph.py``.
#: The vectorized builders must land on them both as independent builds
#: and as ``prefix()`` checkpoint snapshots of one shared realisation.
GOLDEN_SIZES = (50, 80, 120)
GOLDEN_DIGESTS = {
    "mori": {
        50: "80b067d38ce046e052a984ed6df8611a990a1782f5adaf658ec877b23be75436",
        80: "63bb61d0fc4e2296e684d279dc62294f70a6aa2f7fccdb77b180ff6d132c6dcb",
        120: "94c44774344ba23457c8e383e2391cb7ed85bdf933166474163901cb8963a96c",
    },
    "cooper-frieze": {
        50: "5cf4fbb4a442716fafae51b8e12fcaece6316bfde043b99b1dbd843d9621be25",
        80: "e9e749a6b17a0e6d50b363f2969c890771e4cfe1eafa40a7e0008330886414a7",
        120: "e71cea24eeb64d1c54fa4d7bbccbaf1decb62a9801ac31afa7555ae86610d919",
    },
    "ba": {
        50: "b7d41097a9943fe3b312f0a635b79c76a5b253d65d4590c20afb890c4101af4f",
        80: "539dd19deec47a8818821e0966f52c12490e291ed87e746780e29e724311950a",
        120: "65122620c3fc680472c159bbd968a029eadb269bf5f736429e3e341032180e10",
    },
}

GOLDEN_FAMILIES = {
    "mori": lambda: MoriFamily(p=0.5, m=2),
    "cooper-frieze": lambda: CooperFriezeFamily(),
    "ba": lambda: BarabasiAlbertFamily(m=2),
}

#: Pins for the variant without a family wrapper.  m=1 degenerates to
#: the plain Móri tree (same draws, same edges), hence the shared value.
EDGES_PER_STEP_GOLDEN = {
    1: "27eafce69e852236b2bb3e07a0a2f764c5d36d1f6cabc94c2d28a03077ac5c6c",
    2: "ed1d677cee6c3e2c6fb29a15a8a7faabb60cd2bb8f553b0dc60f45a639893f91",
    3: "99e42cb5861f5d718754c68f5000a1f1639d02674eff3a1017a9c9272981afdc",
}


@needs_numpy
class TestGoldenDigests:
    @pytest.mark.parametrize("model", sorted(GOLDEN_FAMILIES))
    def test_independent_builds_hit_the_pins(self, model):
        family = GOLDEN_FAMILIES[model]()
        for n in GOLDEN_SIZES:
            fast = family.build_frozen(
                n, seed=0, generator="vectorized"
            )
            assert _digest(fast) == GOLDEN_DIGESTS[model][n]

    @pytest.mark.parametrize("model", sorted(GOLDEN_FAMILIES))
    def test_trajectory_checkpoints_hit_the_pins(self, model):
        family = GOLDEN_FAMILIES[model]()
        graph, marks = family.build_trajectory(
            GOLDEN_SIZES, seed=0, generator="vectorized"
        )
        serial_graph, serial_marks = family.build_trajectory(
            GOLDEN_SIZES, seed=0
        )
        assert marks == serial_marks
        assert isinstance(graph, FrozenGraph)
        for n in GOLDEN_SIZES:
            snapshot = graph.prefix(n, marks[n])
            assert _digest(snapshot) == GOLDEN_DIGESTS[model][n]

    @pytest.mark.parametrize("m", sorted(EDGES_PER_STEP_GOLDEN))
    def test_edges_per_step_pins(self, m):
        fast = fast_mori_edges_per_step_frozen(120, m, 0.5, seed=0)
        assert _digest(fast) == EDGES_PER_STEP_GOLDEN[m]


# ----------------------------------------------------------------------
# Stream discipline: the generator ends where the serial build ends
# ----------------------------------------------------------------------


@needs_numpy
class TestStreamDiscipline:
    """Fast builds on a shared ``Random`` leave it serial-positioned.

    The kernels bulk-extract words and then reposition the generator,
    so interleaving fast and serial construction on one stream must
    stay faithful — the next draw after a fast build equals the next
    draw after the serial build it replaced.
    """

    def _tail(self, rng):
        return [rng.random() for _ in range(5)]

    def test_mori_tree(self):
        fast_rng, serial_rng = random.Random(42), random.Random(42)
        fast_mori_tree_frozen(130, 0.3, seed=fast_rng)
        mori_tree(130, 0.3, seed=serial_rng)
        assert self._tail(fast_rng) == self._tail(serial_rng)

    def test_merged_mori(self):
        fast_rng, serial_rng = random.Random(42), random.Random(42)
        fast_merged_mori_frozen(90, 2, 0.7, seed=fast_rng)
        merged_mori_graph(90, 2, 0.7, seed=serial_rng, keep_tree=False)
        assert self._tail(fast_rng) == self._tail(serial_rng)

    def test_edges_per_step(self):
        fast_rng, serial_rng = random.Random(42), random.Random(42)
        fast_mori_edges_per_step_frozen(90, 2, 0.4, seed=fast_rng)
        mori_edges_per_step_graph(90, 2, 0.4, seed=serial_rng)
        assert self._tail(fast_rng) == self._tail(serial_rng)

    def test_barabasi_albert(self):
        fast_rng, serial_rng = random.Random(42), random.Random(42)
        fast_barabasi_albert_frozen(110, 3, seed=fast_rng)
        barabasi_albert_graph(110, 3, seed=serial_rng)
        assert self._tail(fast_rng) == self._tail(serial_rng)

    def test_cooper_frieze(self):
        fast_rng, serial_rng = random.Random(42), random.Random(42)
        fast_cooper_frieze_frozen(70, seed=fast_rng)
        cooper_frieze_graph(70, seed=serial_rng)
        assert self._tail(fast_rng) == self._tail(serial_rng)

    def test_interleaved_builds_stay_faithful(self):
        """Fast, serial, fast on ONE stream == all-serial on another."""
        mixed, pure = random.Random(9), random.Random(9)
        first = fast_merged_mori_frozen(60, 2, 0.5, seed=mixed)
        middle = merged_mori_graph(
            50, 1, 0.25, seed=mixed, keep_tree=False
        ).graph
        last = fast_barabasi_albert_frozen(40, 2, seed=mixed)
        assert_identical(
            first,
            merged_mori_graph(60, 2, 0.5, seed=pure, keep_tree=False)
            .graph,
        )
        assert freeze(middle) == freeze(
            merged_mori_graph(50, 1, 0.25, seed=pure, keep_tree=False)
            .graph
        )
        assert_identical(last, barabasi_albert_graph(40, 2, seed=pure))


# ----------------------------------------------------------------------
# Dispatch: snapshot helper, fallback families, engine gating
# ----------------------------------------------------------------------


class TestDispatch:
    @needs_numpy
    def test_build_graph_snapshot_frozen_backend(self):
        family = MoriFamily(p=0.5, m=2)
        fast = build_graph_snapshot(family, 80, 4, "frozen", "vectorized")
        serial = build_graph_snapshot(family, 80, 4, "frozen", "serial")
        assert isinstance(fast, FrozenGraph)
        assert fast == serial
        assert hash(fast) == hash(serial)

    @needs_numpy
    def test_build_graph_snapshot_multigraph_backend_thaws(self):
        family = MoriFamily(p=0.5, m=2)
        fast = build_graph_snapshot(
            family, 80, 4, "multigraph", "vectorized"
        )
        serial = build_graph_snapshot(
            family, 80, 4, "multigraph", "serial"
        )
        assert isinstance(fast, MultiGraph)
        assert freeze(fast) == freeze(serial)

    def test_unknown_generator_is_rejected(self):
        family = MoriFamily(p=0.5, m=1)
        with pytest.raises(ExperimentError, match="unknown graph generator"):
            build_graph_snapshot(family, 40, 0, "frozen", "warp")

    def test_kernel_less_family_falls_back_serially(self):
        """ConfigurationFamily has no kernel: vectorized == serial."""
        family = ConfigurationFamily(exponent=2.5)
        fast = family.build_frozen(120, seed=6, generator="vectorized")
        assert fast == freeze(family.build(120, seed=6))

    def test_generators_vocabulary(self):
        assert GENERATORS == ("serial", "vectorized")
        assert FASTGEN_MODELS == (
            "mori", "mori-edges-per-step", "ba", "cooper-frieze"
        )


class TestEngineGating:
    """Without numpy the engine refuses clearly; serial is unaffected."""

    def test_numpy_absent_raises_clean_error(self, monkeypatch):
        monkeypatch.setattr(fastgen_module, "HAVE_FASTGEN", False)
        with pytest.raises(
            EngineUnavailableError, match="requires numpy"
        ):
            require_fastgen_engine()
        with pytest.raises(
            EngineUnavailableError, match="use generator='serial'"
        ):
            fast_mori_tree_frozen(50, 0.5, seed=0)
        with pytest.raises(EngineUnavailableError):
            MoriFamily(p=0.5, m=1).build_frozen(
                50, seed=0, generator="vectorized"
            )
        with pytest.raises(EngineUnavailableError):
            fast_cooper_frieze_frozen(50, seed=0)

    def test_serial_generator_works_without_fastgen(self, monkeypatch):
        monkeypatch.setattr(fastgen_module, "HAVE_FASTGEN", False)
        family = MoriFamily(p=0.5, m=1)
        built = family.build_frozen(40, seed=0, generator="serial")
        assert built == freeze(family.build(40, seed=0))

    def test_parameter_validation_precedes_engine_check(self):
        with pytest.raises(InvalidParameterError):
            fast_mori_parents(1, 0.5, seed=0)
        with pytest.raises(InvalidParameterError):
            fast_mori_tree_frozen(50, 1.5, seed=0)
        with pytest.raises(InvalidParameterError):
            fast_merged_mori_frozen(50, 0, 0.5, seed=0)
        with pytest.raises(InvalidParameterError):
            fast_cooper_frieze_frozen(
                50, seed=0, checkpoints=(1, 20)
            )

"""Failure-injection gauntlet: every algorithm on pathological graphs.

Adversarial topologies that historically break search implementations:
stars (one vertex owns almost all edges), long paths (no shortcuts),
parallel-edge bundles, self-loop nests, lollipops (dense core + long
tail), and two-vertex multigraphs.  Every portfolio algorithm must
terminate, respect its budget, never raise, and find reachable targets
given enough budget — on all of them.

The golden-trace battery (:class:`TestGoldenTraces`) extends the
gauntlet across graph backends: for pinned seeds, every algorithm must
issue the *identical oracle request sequence* — and end in the
identical :class:`~repro.search.metrics.SearchResult` — whether the
oracle is backed by the mutable :class:`MultiGraph` or by its
:class:`~repro.graphs.frozen.FrozenGraph` snapshot.  The tracing
oracles are subclasses, so they also pin the guarantee that algorithm
fast paths (flooding's CSR kernel) never engage for oracle subclasses:
what is traced is the genuine request-by-request protocol.
"""

from __future__ import annotations

import pytest

from repro.graphs import freeze
from repro.graphs.base import MultiGraph
from repro.graphs.mori import merged_mori_graph
from repro.rng import make_rng
from repro.search.algorithms import (
    HighDegreeStrongSearch,
    WeakSimulationOfStrong,
    strong_model_portfolio,
    weak_model_portfolio,
)
from repro.search.oracle import StrongOracle, WeakOracle
from repro.search.process import run_search


def star(num_leaves: int = 12) -> MultiGraph:
    graph = MultiGraph(num_leaves + 1)
    for leaf in range(2, num_leaves + 2):
        graph.add_edge(leaf, 1)
    return graph


def long_path(length: int = 30) -> MultiGraph:
    graph = MultiGraph(length)
    for v in range(2, length + 1):
        graph.add_edge(v, v - 1)
    return graph


def parallel_bundle(copies: int = 10) -> MultiGraph:
    graph = MultiGraph(3)
    for _ in range(copies):
        graph.add_edge(2, 1)
    graph.add_edge(3, 2)
    return graph


def loop_nest(loops: int = 8) -> MultiGraph:
    graph = MultiGraph(3)
    for _ in range(loops):
        graph.add_edge(1, 1)
    graph.add_edge(2, 1)
    graph.add_edge(3, 2)
    return graph


def lollipop(clique: int = 6, tail: int = 10) -> MultiGraph:
    n = clique + tail
    graph = MultiGraph(n)
    for i in range(1, clique + 1):
        for j in range(i + 1, clique + 1):
            graph.add_edge(j, i)
    previous = clique
    for v in range(clique + 1, n + 1):
        graph.add_edge(v, previous)
        previous = v
    return graph


def two_vertex_mess() -> MultiGraph:
    graph = MultiGraph(2)
    graph.add_edge(1, 1)
    graph.add_edge(2, 2)
    graph.add_edge(2, 1)
    graph.add_edge(1, 2)
    return graph


GRAPHS = {
    "star": star(),
    "path": long_path(),
    "parallel": parallel_bundle(),
    "loops": loop_nest(),
    "lollipop": lollipop(),
    "two-vertex": two_vertex_mess(),
}

ALGORITHMS = (
    weak_model_portfolio()
    + strong_model_portfolio()
    + [WeakSimulationOfStrong(HighDegreeStrongSearch())]
)


@pytest.mark.parametrize(
    "graph_name", sorted(GRAPHS), ids=sorted(GRAPHS)
)
@pytest.mark.parametrize(
    "algorithm", ALGORITHMS, ids=lambda a: f"{a.name}-{a.model}"
)
class TestGauntlet:
    def test_finds_last_vertex(self, graph_name, algorithm):
        if algorithm.name.startswith("restart-walk") and graph_name in (
            "path",
            "lollipop",
        ):
            # Genuine strategy weakness, not a bug: an excursion of
            # length d survives restarts with probability 0.9^d, so a
            # restart walk essentially never crosses a long path.
            pytest.skip("restart walks cannot traverse long paths")
        graph = GRAPHS[graph_name]
        target = graph.num_vertices
        result = run_search(
            algorithm,
            graph,
            start=1,
            target=target,
            budget=20 * graph.num_edges + 50,
            seed=5,
        )
        assert result.found, f"{algorithm.name} lost on {graph_name}"

    def test_budget_zero_is_clean(self, graph_name, algorithm):
        graph = GRAPHS[graph_name]
        result = run_search(
            algorithm,
            graph,
            start=1,
            target=graph.num_vertices,
            budget=0,
            seed=5,
        )
        assert result.requests == 0
        # target == start is the only way to succeed with no requests.
        assert result.found == (graph.num_vertices == 1)

    def test_tiny_budget_respected(self, graph_name, algorithm):
        graph = GRAPHS[graph_name]
        result = run_search(
            algorithm,
            graph,
            start=1,
            target=graph.num_vertices,
            budget=2,
            seed=5,
        )
        assert result.requests <= 2

    def test_found_on_frozen_backend_too(self, graph_name, algorithm):
        """The gauntlet's success guarantee holds on the snapshot."""
        if algorithm.name.startswith("restart-walk") and graph_name in (
            "path",
            "lollipop",
        ):
            pytest.skip("restart walks cannot traverse long paths")
        graph = GRAPHS[graph_name]
        frozen = freeze(graph)
        result = run_search(
            algorithm,
            frozen,
            start=1,
            target=graph.num_vertices,
            budget=20 * graph.num_edges + 50,
            seed=5,
        )
        assert result.found, (
            f"{algorithm.name} lost on frozen {graph_name}"
        )


# ----------------------------------------------------------------------
# Golden traces: identical request sequences on both backends
# ----------------------------------------------------------------------


class TracingWeakOracle(WeakOracle):
    """Weak oracle that journals every (request, answer) pair."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.trace = []

    def request(self, u, eid):
        answer = super().request(u, eid)
        self.trace.append(("weak", u, eid, answer))
        return answer


class TracingStrongOracle(StrongOracle):
    """Strong oracle that journals every (request, answer) pair."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.trace = []

    def request(self, u):
        answer = super().request(u)
        self.trace.append(("strong", u, answer))
        return answer


def traced_run(algorithm, graph, start, target, seed):
    """Run one search through a tracing oracle; return (trace, result)."""
    oracle_cls = (
        TracingWeakOracle
        if algorithm.model == "weak"
        else TracingStrongOracle
    )
    oracle = oracle_cls(graph, start, target)
    budget = 20 * graph.num_edges + 50
    result = algorithm.run(oracle, make_rng(seed), budget)
    return oracle.trace, result


@pytest.mark.parametrize(
    "graph_name", sorted(GRAPHS), ids=sorted(GRAPHS)
)
@pytest.mark.parametrize(
    "algorithm", ALGORITHMS, ids=lambda a: f"{a.name}-{a.model}"
)
def test_golden_trace_identical_across_backends(graph_name, algorithm):
    """Pinned seeds: same requests, same answers, same result."""
    graph = GRAPHS[graph_name]
    frozen = freeze(graph)
    target = graph.num_vertices
    for seed in (5, 23):
        trace_mutable, result_mutable = traced_run(
            algorithm, graph, 1, target, seed
        )
        trace_frozen, result_frozen = traced_run(
            algorithm, frozen, 1, target, seed
        )
        assert trace_frozen == trace_mutable, (
            f"{algorithm.name} diverged on {graph_name} (seed {seed})"
        )
        assert result_frozen == result_mutable


@pytest.mark.parametrize(
    "algorithm", ALGORITHMS, ids=lambda a: f"{a.name}-{a.model}"
)
def test_golden_trace_on_model_graph(algorithm):
    """Same invariant on a realistic Móri instance (loops, parallels)."""
    graph = merged_mori_graph(120, 2, 0.5, seed=31).graph
    frozen = freeze(graph)
    target = graph.num_vertices
    trace_mutable, result_mutable = traced_run(
        algorithm, graph, 1, target, 5
    )
    trace_frozen, result_frozen = traced_run(
        algorithm, frozen, 1, target, 5
    )
    assert trace_frozen == trace_mutable
    assert result_frozen == result_mutable
    assert trace_mutable, "search made no requests at all"

"""Smoke tests: every example script runs end to end.

Examples are part of the public contract; each is executed as a real
subprocess (its own interpreter, its own argv) at a reduced size, and
its output is checked for the landmark lines a reader is promised.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "examples",
)


def run_example(script: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script), *args],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_all_examples_present(self):
        scripts = sorted(
            f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py")
        )
        assert scripts == [
            "lower_bound_audit.py",
            "navigable_vs_scalefree.py",
            "p2p_file_search.py",
            "quickstart.py",
        ]

    def test_quickstart(self):
        out = run_example("quickstart.py", "400")
        assert "Theorem 1 floor" in out
        assert "flooding" in out
        assert "True" in out

    def test_p2p_file_search(self):
        out = run_example("p2p_file_search.py", "800")
        assert "P2P network" in out
        assert "high-degree" in out
        assert "percolation" in out
        assert "hit rate" in out

    @pytest.mark.slow
    def test_navigable_vs_scalefree(self):
        out = run_example("navigable_vs_scalefree.py")
        assert "kleinberg" in out
        assert "sqrt(n)" in out

    def test_lower_bound_audit_sections(self):
        out = run_example("lower_bound_audit.py")
        assert "Step 1" in out
        assert "holds: True" in out
        assert "Step 2" in out
        assert "margin=+" in out
        assert "Step 3" in out

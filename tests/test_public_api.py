"""Public-API surface tests.

Downstream users import from ``repro`` and its documented subpackages;
these tests pin the surface: everything in ``__all__`` exists, is
importable, and the headline entry points are callable with their
documented signatures.  A rename or accidental removal fails here
before it fails in a user's code.
"""

from __future__ import annotations

import importlib
import inspect

import pytest

import repro

SUBPACKAGES = [
    "repro.graphs",
    "repro.search",
    "repro.search.algorithms",
    "repro.equivalence",
    "repro.analysis",
    "repro.core",
    "repro.runner",
]


class TestSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_top_level_all_resolves(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_subpackage_all_resolves(self, module_name):
        module = importlib.import_module(module_name)
        assert hasattr(module, "__all__")
        for name in module.__all__:
            assert hasattr(module, name), f"{module_name}.{name}"

    def test_docstrings_everywhere(self):
        """Every public callable in __all__ carries a docstring."""
        for module_name in ["repro"] + SUBPACKAGES:
            module = importlib.import_module(module_name)
            for name in module.__all__:
                obj = getattr(module, name)
                if callable(obj):
                    assert inspect.getdoc(obj), (
                        f"{module_name}.{name} lacks a docstring"
                    )

    def test_quickstart_snippet_from_readme(self):
        """The README's quickstart code runs verbatim."""
        from repro import (
            merged_mori_graph,
            run_search,
            theorem1_weak_bound,
        )
        from repro.search.algorithms import HighDegreeWeakSearch

        g = merged_mori_graph(n=200, m=2, p=0.5, seed=7)
        result = run_search(
            HighDegreeWeakSearch(), g.graph, start=1, target=190, seed=0
        )
        assert isinstance(result.found, bool)
        assert theorem1_weak_bound(190, p=0.5) > 0

    def test_docstring_example_in_package_init(self):
        """The module docstring's example names real symbols."""
        doc = repro.__doc__
        assert "merged_mori_graph" in doc
        assert "run_search" in doc

    def test_error_hierarchy(self):
        from repro import (
            AnalysisError,
            ExperimentError,
            GraphConstructionError,
            InvalidParameterError,
            OracleProtocolError,
            ReproError,
            SearchError,
        )

        for exc in (
            InvalidParameterError,
            GraphConstructionError,
            OracleProtocolError,
            SearchError,
            AnalysisError,
            ExperimentError,
        ):
            assert issubclass(exc, ReproError)
        assert issubclass(InvalidParameterError, ValueError)

    def test_multigraph_doctest_example(self):
        """The MultiGraph class docstring example holds."""
        from repro import MultiGraph

        g = MultiGraph(2)
        eid = g.add_edge(2, 1)
        assert (g.degree(1), g.degree(2)) == (1, 1)
        assert g.other_endpoint(eid, 2) == 1

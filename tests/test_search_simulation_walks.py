"""Unit tests for the simulation adapter and the extra walk strategies."""

from __future__ import annotations

import pytest

from repro.analysis.degrees import max_degree
from repro.errors import InvalidParameterError, OracleProtocolError
from repro.graphs.base import MultiGraph
from repro.graphs.mori import merged_mori_graph, mori_tree
from repro.search.algorithms import (
    DegreeBiasedWalkSearch,
    HighDegreeStrongSearch,
    RandomWalkSearch,
    RestartingWalkSearch,
    SelfAvoidingWalkSearch,
    WeakSimulationOfStrong,
)
from repro.search.process import run_search


@pytest.fixture(scope="module")
def mori_instance():
    return merged_mori_graph(80, 2, 0.5, seed=23).graph


class TestWeakSimulationOfStrong:
    def test_rejects_weak_inner(self):
        with pytest.raises(OracleProtocolError):
            WeakSimulationOfStrong(RandomWalkSearch())

    def test_name_and_model(self):
        simulated = WeakSimulationOfStrong(HighDegreeStrongSearch())
        assert simulated.model == "weak"
        assert "high-degree" in simulated.name

    def test_finds_target(self, mori_instance):
        simulated = WeakSimulationOfStrong(HighDegreeStrongSearch())
        result = run_search(simulated, mori_instance, 1, 75, seed=0)
        assert result.found
        assert result.model == "weak"
        assert result.extra["strong_requests"] >= 1

    def test_same_outcome_as_native_strong(self, mori_instance):
        """The emulation is faithful: the inner algorithm sees the same
        neighbor sets, so a deterministic inner algorithm succeeds on
        exactly the same instances."""
        native = run_search(
            HighDegreeStrongSearch(), mori_instance, 1, 75, seed=0
        )
        simulated = run_search(
            WeakSimulationOfStrong(HighDegreeStrongSearch()),
            mori_instance,
            1,
            75,
            seed=0,
        )
        assert native.found == simulated.found

    def test_slowdown_inequality(self):
        """The paper's Section-2 argument, instance by instance."""
        for seed in range(5):
            graph = mori_tree(150, 0.25, seed=seed).graph
            native = run_search(
                HighDegreeStrongSearch(), graph, 1, 140, seed=0
            )
            simulated = run_search(
                WeakSimulationOfStrong(HighDegreeStrongSearch()),
                graph,
                1,
                140,
                seed=0,
            )
            bound = max(native.requests, 1) * max_degree(graph)
            assert simulated.requests <= bound

    def test_budget_respected(self, mori_instance):
        simulated = WeakSimulationOfStrong(HighDegreeStrongSearch())
        result = run_search(
            simulated, mori_instance, 1, 75, budget=5, seed=0
        )
        assert result.requests <= 5

    def test_works_with_randomized_inner(self, mori_instance):
        simulated = WeakSimulationOfStrong(
            DegreeBiasedWalkSearch(beta=1.0)
        )
        result = run_search(simulated, mori_instance, 1, 75, seed=3)
        assert result.found


class TestSelfAvoidingWalk:
    def test_finds_target(self, mori_instance):
        result = run_search(
            SelfAvoidingWalkSearch(), mori_instance, 1, 75, seed=1
        )
        assert result.found

    def test_never_wastes_requests_on_resolved_edges(self, triangle):
        # On a triangle every edge gets requested at most once.
        result = run_search(
            SelfAvoidingWalkSearch(), triangle, 1, 3, seed=0
        )
        assert result.found
        assert result.requests <= 3

    def test_isolated_start(self):
        graph = MultiGraph(2)
        result = run_search(
            SelfAvoidingWalkSearch(), graph, 1, 2, seed=0
        )
        assert not result.found
        assert result.requests == 0

    def test_no_cheaper_than_plain_walk_on_average(self, mori_instance):
        """Self-avoidance helps (fewer or equal requests on average)."""
        plain_total = 0
        avoiding_total = 0
        for seed in range(10):
            plain_total += run_search(
                RandomWalkSearch(), mori_instance, 1, 75, seed=seed
            ).requests
            avoiding_total += run_search(
                SelfAvoidingWalkSearch(),
                mori_instance,
                1,
                75,
                seed=seed,
            ).requests
        assert avoiding_total <= plain_total


class TestRestartingWalk:
    def test_restart_prob_validation(self):
        with pytest.raises(InvalidParameterError):
            RestartingWalkSearch(-0.1)
        with pytest.raises(InvalidParameterError):
            RestartingWalkSearch(1.0)

    def test_name_encodes_parameter(self):
        assert "r0.2" in RestartingWalkSearch(0.2).name

    def test_finds_target(self, mori_instance):
        result = run_search(
            RestartingWalkSearch(0.1), mori_instance, 1, 75, seed=2
        )
        assert result.found
        assert "restarts" in result.extra

    def test_zero_restart_behaves_like_walk(self, path4):
        result = run_search(RestartingWalkSearch(0.0), path4, 1, 4, seed=1)
        assert result.found
        assert result.extra["restarts"] == 0

    def test_heavy_restarts_terminate(self, mori_instance):
        result = run_search(
            RestartingWalkSearch(0.9),
            mori_instance,
            1,
            75,
            budget=50,
            seed=3,
        )
        assert result.requests <= 50

"""Property-based tests (hypothesis) for the graph substrates."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.barabasi_albert import barabasi_albert_graph
from repro.graphs.configuration import configuration_model_graph
from repro.graphs.cooper_frieze import (
    CooperFriezeParams,
    cooper_frieze_graph,
)
from repro.graphs.merge import merge_consecutive
from repro.graphs.mori import merged_mori_graph, mori_tree
from repro.graphs.power_law import power_law_degree_sequence

# Shared strategies: keep sizes modest so the whole module runs in
# seconds while still exploring the parameter space.
sizes = st.integers(min_value=2, max_value=60)
probabilities = st.floats(
    min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False
)
seeds = st.integers(min_value=0, max_value=2**32 - 1)


class TestMoriProperties:
    @given(n=sizes, p=probabilities, seed=seeds)
    @settings(max_examples=60, deadline=None)
    def test_tree_invariants(self, n, p, seed):
        tree = mori_tree(n, p, seed=seed)
        graph = tree.graph
        # It is a tree.
        assert graph.num_edges == n - 1
        assert graph.is_connected()
        # Every parent is strictly older.
        assert all(
            1 <= tree.parents[k] < k for k in range(2, n + 1)
        )
        # Degree sum identity.
        assert sum(graph.degree_sequence()) == 2 * graph.num_edges
        # Construction orientation: out-degree 1 except the root.
        assert graph.out_degree(1) == 0
        assert all(
            graph.out_degree(v) == 1 for v in range(2, n + 1)
        )

    @given(
        n=st.integers(min_value=2, max_value=25),
        m=st.integers(min_value=1, max_value=5),
        p=probabilities,
        seed=seeds,
    )
    @settings(max_examples=40, deadline=None)
    def test_merged_invariants(self, n, m, p, seed):
        merged = merged_mori_graph(n, m, p, seed=seed)
        graph = merged.graph
        assert graph.num_vertices == n
        assert graph.num_edges == n * m - 1
        assert graph.is_connected()
        # Degree mass conserved by merging.
        assert sum(graph.degree_sequence()) == sum(
            merged.tree.graph.degree_sequence()
        )

    @given(
        n=st.integers(min_value=4, max_value=40),
        block=st.integers(min_value=1, max_value=4),
        seed=seeds,
    )
    @settings(max_examples=40, deadline=None)
    def test_generic_merge_conserves_degree_mass(self, n, block, seed):
        tree = mori_tree(n * block, 0.5, seed=seed).graph
        merged = merge_consecutive(tree, block)
        assert sum(merged.degree_sequence()) == sum(
            tree.degree_sequence()
        )
        assert merged.num_edges == tree.num_edges


class TestCooperFriezeProperties:
    @given(
        n=st.integers(min_value=2, max_value=50),
        alpha=st.floats(min_value=0.3, max_value=1.0),
        beta=probabilities,
        gamma=probabilities,
        delta=probabilities,
        seed=seeds,
    )
    @settings(max_examples=40, deadline=None)
    def test_invariants(self, n, alpha, beta, gamma, delta, seed):
        params = CooperFriezeParams(
            alpha=alpha, beta=beta, gamma=gamma, delta=delta
        )
        result = cooper_frieze_graph(n, params, seed=seed)
        graph = result.graph
        assert graph.num_vertices == n
        assert graph.is_connected()
        assert result.num_new_steps == n - 1
        assert result.num_steps >= result.num_new_steps
        assert sum(graph.degree_sequence()) == 2 * graph.num_edges


class TestBAProperties:
    @given(
        n=st.integers(min_value=2, max_value=50),
        m=st.integers(min_value=1, max_value=4),
        seed=seeds,
    )
    @settings(max_examples=40, deadline=None)
    def test_invariants(self, n, m, seed):
        graph = barabasi_albert_graph(n, m, seed=seed)
        assert graph.num_vertices == n
        assert graph.num_edges == 1 + m * (n - 1)
        assert graph.is_connected()


class TestConfigurationProperties:
    @given(
        n=st.integers(min_value=2, max_value=60),
        exponent=st.floats(min_value=1.5, max_value=3.5),
        seed=seeds,
    )
    @settings(max_examples=40, deadline=None)
    def test_degrees_realized_exactly(self, n, exponent, seed):
        degrees = power_law_degree_sequence(n, exponent, seed=seed)
        graph = configuration_model_graph(degrees, seed=seed)
        assert graph.degree_sequence() == degrees

    @given(
        n=st.integers(min_value=1, max_value=80),
        exponent=st.floats(min_value=1.5, max_value=3.5),
        seed=seeds,
    )
    @settings(max_examples=40, deadline=None)
    def test_sequence_sum_even(self, n, exponent, seed):
        degrees = power_law_degree_sequence(n, exponent, seed=seed)
        assert sum(degrees) % 2 == 0
        assert len(degrees) == n

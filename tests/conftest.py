"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.graphs.base import MultiGraph
from repro.graphs.mori import merged_mori_graph, mori_tree


@pytest.fixture
def triangle() -> MultiGraph:
    """A 3-cycle: the smallest graph with a real choice at every vertex."""
    return MultiGraph.from_edges(3, [(2, 1), (3, 2), (3, 1)])


@pytest.fixture
def path4() -> MultiGraph:
    """A path 1-2-3-4."""
    return MultiGraph.from_edges(4, [(2, 1), (3, 2), (4, 3)])


@pytest.fixture
def loop_graph() -> MultiGraph:
    """Two vertices, a connecting edge, and a self-loop at vertex 2."""
    graph = MultiGraph(2)
    graph.add_edge(2, 1)
    graph.add_edge(2, 2)
    return graph


@pytest.fixture
def parallel_graph() -> MultiGraph:
    """Two vertices joined by two parallel edges."""
    return MultiGraph.from_edges(2, [(2, 1), (2, 1)])


@pytest.fixture
def small_tree():
    """A deterministic small Móri tree (seeded)."""
    return mori_tree(30, 0.5, seed=42)


@pytest.fixture
def small_merged():
    """A deterministic small merged Móri graph (seeded)."""
    return merged_mori_graph(20, 2, 0.5, seed=42)

"""Tests for the search service (`repro.service`).

The properties that make a long-lived daemon trustworthy: served
answers are bit-identical to the batch path, every failure mode (bad
query, unknown ids, client disconnects, double-start, SIGTERM) ends in
a clean error or clean exit — never a stuck daemon — and shared-memory
segments never outlive their service.
"""

from __future__ import annotations

import json
import http.client
import os
import signal
import socket
import subprocess
import sys
import time

import pytest

from repro.core.families import MoriFamily
from repro.core.trials import batched_search_trial, family_spec
from repro.graphs.shm import attach_graph
from repro.service import (
    QueryError,
    SearchService,
    ServiceClient,
    build_grid_entries,
    run_load,
    validate_query,
)
from repro.service.client import ServiceHTTPError
from repro.service.core import portfolio_algorithms
from repro.service.loadgen import build_queries

SIZE = 120
SEED = 3
PORTFOLIO = "adamic"


@pytest.fixture(scope="module")
def service():
    entries = build_grid_entries(
        MoriFamily(p=0.5, m=1), [SIZE], [SEED]
    )
    with SearchService(
        entries, portfolio=PORTFOLIO, workers=2
    ) as running:
        yield running


@pytest.fixture()
def client(service):
    with ServiceClient(service.host, service.port) as handle:
        yield handle


GRAPH_ID = f"mori-n{SIZE}-s{SEED}"


class TestServing:
    def test_health_and_catalog(self, client):
        assert client.health()["status"] == "ok"
        graphs = client.graphs()
        assert [graph["id"] for graph in graphs] == [GRAPH_ID]
        assert graphs[0]["n"] == SIZE
        assert graphs[0]["shm"]

    def test_answers_bit_identical_to_batch_path(self, service):
        algorithms = list(portfolio_algorithms(PORTFOLIO))
        queries = [
            {
                "graph": GRAPH_ID,
                "algorithm": algorithm,
                "run_index": run_index,
            }
            for algorithm in algorithms
            for run_index in range(3)
        ]
        responses, stats = run_load(
            service.host, service.port, queries, clients=4
        )
        cells = [
            {
                "algorithm": query["algorithm"],
                "run_index": query["run_index"],
            }
            for query in queries
        ]
        expected = batched_search_trial(
            family=family_spec(MoriFamily(p=0.5, m=1)),
            size=SIZE,
            portfolio=PORTFOLIO,
            cells=cells,
            seed=SEED,
        )
        assert responses == expected
        assert stats["queries"] == len(queries)

    def test_explicit_start_target_overrides(self, client):
        response = client.search(
            GRAPH_ID, "random-walk", 0, start=7, target=2
        )
        assert response["start"] == 7
        assert response["target"] == 2


class TestFailureModes:
    def test_malformed_json_body_is_400(self, service):
        conn = http.client.HTTPConnection(
            service.host, service.port, timeout=10
        )
        try:
            conn.request(
                "POST", "/search", body=b"{not json",
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            payload = json.loads(response.read())
            assert response.status == 400
            assert "JSON" in payload["error"]
        finally:
            conn.close()

    def test_missing_fields_are_400(self, client):
        with pytest.raises(ServiceHTTPError) as info:
            client._request("POST", "/search", payload={})
        assert info.value.status == 400

    def test_unknown_graph_is_404(self, client):
        with pytest.raises(ServiceHTTPError) as info:
            client.search("no-such-graph", "random-walk")
        assert info.value.status == 404
        assert GRAPH_ID in str(info.value)

    def test_unknown_algorithm_is_404(self, client):
        with pytest.raises(ServiceHTTPError) as info:
            client.search(GRAPH_ID, "quantum-oracle")
        assert info.value.status == 404

    def test_bad_run_index_and_vertices_are_400(self, client):
        for payload in (
            {"graph": GRAPH_ID, "algorithm": "random-walk",
             "run_index": -1},
            {"graph": GRAPH_ID, "algorithm": "random-walk",
             "run_index": 1 << 16},
            {"graph": GRAPH_ID, "algorithm": "random-walk",
             "start": 0},
            {"graph": GRAPH_ID, "algorithm": "random-walk",
             "target": SIZE + 1},
            {"graph": GRAPH_ID, "algorithm": "random-walk",
             "bogus": 1},
        ):
            with pytest.raises(ServiceHTTPError) as info:
                client._request("POST", "/search", payload=payload)
            assert info.value.status == 400, payload

    def test_client_disconnect_mid_response_not_fatal(
        self, service, client
    ):
        # Open a raw connection, fire a valid query, and slam the
        # socket shut without reading the response; the daemon must
        # keep serving other clients.
        raw = socket.create_connection(
            (service.host, service.port), timeout=10
        )
        body = json.dumps({
            "graph": GRAPH_ID, "algorithm": "random-walk",
        }).encode()
        raw.sendall(
            b"POST /search HTTP/1.1\r\n"
            b"Host: x\r\nContent-Type: application/json\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        raw.close()
        time.sleep(0.1)
        assert client.health()["status"] == "ok"
        assert client.search(GRAPH_ID, "random-walk")["requests"] >= 0

    def test_double_start_on_bound_port_fails_clean(self, service):
        entries = build_grid_entries(
            MoriFamily(p=0.5, m=1), [60], [1]
        )
        second = SearchService(
            entries,
            portfolio=PORTFOLIO,
            workers=1,
            host=service.host,
            port=service.port,
        )
        with pytest.raises(OSError):
            second.start()
        # The failed start must not leak what it published.
        for entry in second.entries.values():
            assert entry.segment is None
            if entry.shm_name:
                with pytest.raises(FileNotFoundError):
                    attach_graph(entry.shm_name)
        # And the original daemon is untouched.
        with ServiceClient(service.host, service.port) as probe:
            assert probe.health()["status"] == "ok"


class TestValidateQuery:
    def _entries(self):
        family = MoriFamily(p=0.5, m=1)
        return {
            entry.graph_id: entry
            for entry in build_grid_entries(family, [60], [1])
        }

    def test_rejects_non_object(self):
        with pytest.raises(QueryError) as info:
            validate_query([], self._entries(), PORTFOLIO)
        assert info.value.status == 400

    def test_boolean_run_index_rejected(self):
        entries = self._entries()
        graph_id = next(iter(entries))
        with pytest.raises(QueryError) as info:
            validate_query(
                {"graph": graph_id, "algorithm": "random-walk",
                 "run_index": True},
                entries, PORTFOLIO,
            )
        assert info.value.status == 400


class TestLifecycle:
    def test_stop_unlinks_segments_and_is_idempotent(self):
        entries = build_grid_entries(
            MoriFamily(p=0.5, m=1), [60], [2]
        )
        running = SearchService(
            entries, portfolio=PORTFOLIO, workers=1
        )
        running.start()
        names = [
            entry.shm_name for entry in running.entries.values()
        ]
        assert all(names)
        for name in names:
            attached = attach_graph(name)
            attached.close()
        running.stop()
        running.stop()  # idempotent
        for name in names:
            with pytest.raises(FileNotFoundError):
                attach_graph(name)

    def test_sigterm_cleans_up_daemon_subprocess(self, tmp_path):
        port_file = tmp_path / "serve.port"
        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + (
            os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH") else ""
        )
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--sizes", "60", "--seeds", "1",
                "--workers", "1", "--port", "0",
                "--port-file", str(port_file),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            deadline = time.monotonic() + 60
            while not port_file.exists():
                assert process.poll() is None, process.stderr.read()
                assert time.monotonic() < deadline, "daemon never bound"
                time.sleep(0.05)
            port = int(port_file.read_text().strip())
            with ServiceClient("127.0.0.1", port) as probe:
                graphs = probe.graphs()
                shm_names = [graph["shm"] for graph in graphs]
                assert shm_names and all(shm_names)
                assert probe.search(
                    graphs[0]["id"], "random-walk"
                )["target"] == graphs[0]["target"]
            process.send_signal(signal.SIGTERM)
            stdout, stderr = process.communicate(timeout=30)
            assert process.returncode == 0, stderr
            assert "shutting down" in stdout
            for name in shm_names:
                with pytest.raises(FileNotFoundError):
                    attach_graph(name)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()

    @pytest.mark.skipif(
        not pytest.importorskip(
            "repro.graphs.corpus"
        ).HAVE_CORPUS,
        reason="corpus (hot reload source) requires numpy",
    )
    def test_corpus_hot_reload_serves_new_graphs(self, tmp_path):
        from repro.graphs.corpus import GraphCorpus
        from repro.service import load_corpus_entries

        family = MoriFamily(p=0.5, m=1)
        spec = family_spec(family)
        corpus = GraphCorpus(tmp_path)
        corpus.put(spec, 60, 1, family.build_frozen(60, seed=1), )
        entries = load_corpus_entries(str(tmp_path))
        running = SearchService(
            entries,
            portfolio=PORTFOLIO,
            workers=1,
            corpus_dir=str(tmp_path),
        )
        with running:
            with ServiceClient(
                running.host, running.port
            ) as probe:
                assert probe.reload() == {
                    "added": [], "total": 1,
                }
                corpus.put(
                    spec, 60, 2, family.build_frozen(60, seed=2)
                )
                report = probe.reload()
                assert report["added"] == ["mori-n60-s2"]
                assert report["total"] == 2
                response = probe.search("mori-n60-s2", "random-walk")
        expected = batched_search_trial(
            family=spec, size=60, portfolio=PORTFOLIO,
            cells=[{"algorithm": "random-walk", "run_index": 0}],
            seed=2,
        )[0]
        assert response == expected

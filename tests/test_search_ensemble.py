"""Ensemble-vs-serial equivalence battery for the walker kernel.

The vectorized ensemble engine (:mod:`repro.search.ensemble`) claims
*bit-identical* equivalence to the serial oracle path: per-run request
counts, success flags, result extras, and the oracle request journal
itself.  This battery pins that claim for every walk-family algorithm
across all five graph models and both graph backends, plus:

* the trial layer's ``engine`` axis (grouped ensemble dispatch and the
  serial fallback for non-walk algorithms give the same cell values);
* the cache-key policy (a non-default engine — like a non-default
  backend — is the only thing that enters trial params);
* the numpy-absent behaviour: ``engine='ensemble'`` raises a clean
  :class:`~repro.errors.EngineUnavailableError` instead of silently
  degrading, while ``engine='serial'`` keeps working;
* golden pins of :func:`repro.rng.run_substream` — the one derivation
  both paths draw their per-run seeds from — including the first-draw
  traces of the generators it seeds.
"""

from __future__ import annotations

import pytest

from repro.core.families import (
    BarabasiAlbertFamily,
    CooperFriezeFamily,
    MoriFamily,
)
from repro.core.trials import batched_search_trial, search_cost_graph_trial
from repro.errors import (
    EngineUnavailableError,
    ExperimentError,
    InvalidParameterError,
)
from repro.graphs import freeze
from repro.graphs.base import MultiGraph
from repro.graphs.configuration import power_law_configuration_graph
from repro.graphs.frozen import HAVE_NUMPY
from repro.graphs.kleinberg import kleinberg_grid
from repro.rng import make_rng, run_substream, substream
from repro.search.algorithms import (
    DegreeBiasedWalkSearch,
    FloodingSearch,
    RandomWalkSearch,
    RestartingWalkSearch,
    SelfAvoidingWalkSearch,
)
from repro.search.ensemble import (
    ENSEMBLE_ALGORITHMS,
    ensemble_supported,
    run_ensemble,
)
from repro.search.oracle import StrongOracle, WeakOracle
from repro.search.process import run_search

needs_numpy = pytest.mark.skipif(
    not HAVE_NUMPY, reason="ensemble engine requires numpy"
)


def model_graph(model: str, seed: int) -> MultiGraph:
    """One modest instance of each model the paper touches."""
    if model == "mori":
        return MoriFamily(p=0.5, m=2).build(150, seed=seed)
    if model == "cooper-frieze":
        return CooperFriezeFamily().build(120, seed=seed)
    if model == "ba":
        return BarabasiAlbertFamily(m=2).build(150, seed=seed)
    if model == "config":
        # Unrestricted configuration graph: disconnected, with loops
        # and parallel edges — the adversarial case for the kernel.
        return power_law_configuration_graph(150, 2.5, seed=seed)
    if model == "kleinberg":
        return kleinberg_grid(10, r=2.0, q=1, seed=seed).graph
    raise AssertionError(model)


MODELS = ("mori", "cooper-frieze", "ba", "config", "kleinberg")

#: Fresh walk-family instances, every ensemble-capable shape.
WALK_BUILDERS = (
    RandomWalkSearch,
    SelfAvoidingWalkSearch,
    lambda: RestartingWalkSearch(restart_prob=0.1),
    lambda: DegreeBiasedWalkSearch(beta=0.0),
    lambda: DegreeBiasedWalkSearch(beta=1.0),
)


class TracingWeakOracle(WeakOracle):
    """Weak oracle that journals every (request, answer) pair."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.trace = []

    def request(self, u, eid):
        answer = super().request(u, eid)
        self.trace.append(("weak", u, eid, answer))
        return answer


class TracingStrongOracle(StrongOracle):
    """Strong oracle that journals every (request, answer) pair."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.trace = []

    def request(self, u):
        answer = super().request(u)
        self.trace.append(("strong", u, answer))
        return answer


def serial_traced(
    algorithm, graph, start, target, budget, seed, neighbor_success=False
):
    """One serial run through a tracing oracle: (result, trace)."""
    oracle_cls = (
        TracingWeakOracle
        if algorithm.model == "weak"
        else TracingStrongOracle
    )
    oracle = oracle_cls(
        graph, start, target, neighbor_success=neighbor_success
    )
    result = algorithm.run(oracle, make_rng(seed), budget)
    return result, oracle.trace


@needs_numpy
@pytest.mark.parametrize("model", MODELS)
@pytest.mark.parametrize(
    "builder", WALK_BUILDERS, ids=lambda b: b().name
)
class TestEnsembleEquivalence:
    """Costs, flags, extras, and traces identical, run for run."""

    def test_bit_identical_on_both_backends(self, model, builder):
        graph = model_graph(model, seed=3)
        target = graph.num_vertices
        budget = 2 * graph.num_edges + 17
        algorithm = builder()
        seeds = [
            run_substream(31, algorithm.name, run) for run in range(6)
        ]
        expected = [
            serial_traced(builder(), graph, 1, target, budget, s)
            for s in seeds
        ]
        for backend in (graph, freeze(graph)):
            results, traces = run_ensemble(
                builder(),
                backend,
                1,
                target,
                seeds,
                budget=budget,
                collect_traces=True,
            )
            for run, (serial_result, serial_trace) in enumerate(
                expected
            ):
                assert results[run] == serial_result
                assert traces[run] == serial_trace

    def test_truncating_budgets_identical(self, model, builder):
        graph = model_graph(model, seed=7)
        target = graph.num_vertices
        algorithm = builder()
        seeds = [
            run_substream(5, algorithm.name, run) for run in range(3)
        ]
        for budget in (0, 1, 5):
            results = run_ensemble(
                builder(), graph, 1, target, seeds, budget=budget
            )
            for run, seed in enumerate(seeds):
                serial = run_search(
                    builder(), graph, 1, target,
                    budget=budget, seed=seed,
                )
                assert results[run] == serial
                assert results[run].requests <= budget


@needs_numpy
class TestEnsembleSpecialCases:
    def test_neighbor_success_zone_identical(self):
        graph = model_graph("mori", seed=11)
        target = graph.num_vertices
        budget = graph.num_edges
        for builder in WALK_BUILDERS:
            algorithm = builder()
            seeds = [
                run_substream(13, algorithm.name, run)
                for run in range(4)
            ]
            results, traces = run_ensemble(
                builder(), graph, 1, target, seeds,
                budget=budget, neighbor_success=True,
                collect_traces=True,
            )
            for run, seed in enumerate(seeds):
                serial_result, serial_trace = serial_traced(
                    builder(), graph, 1, target, budget, seed,
                    neighbor_success=True,
                )
                assert results[run] == serial_result
                assert traces[run] == serial_trace

    def test_isolated_start_identical(self):
        # Vertex 3 has no edges at all: walks must stop cleanly.
        graph = MultiGraph(3)
        graph.add_edge(2, 1)
        for builder in WALK_BUILDERS:
            algorithm = builder()
            seeds = [
                run_substream(3, algorithm.name, run)
                for run in range(4)
            ]
            results = run_ensemble(
                builder(), graph, 3, 1, seeds, budget=9
            )
            for run, seed in enumerate(seeds):
                serial = run_search(
                    builder(), graph, 3, 1, budget=9, seed=seed
                )
                assert results[run] == serial

    def test_loops_and_parallel_edges_identical(self):
        graph = MultiGraph(3)
        graph.add_edge(1, 1)
        graph.add_edge(2, 1)
        graph.add_edge(2, 1)
        graph.add_edge(2, 2)
        graph.add_edge(3, 2)
        for builder in WALK_BUILDERS:
            algorithm = builder()
            seeds = [
                run_substream(17, algorithm.name, run)
                for run in range(8)
            ]
            results, traces = run_ensemble(
                builder(), graph, 1, 3, seeds, budget=40,
                collect_traces=True,
            )
            for run, seed in enumerate(seeds):
                serial_result, serial_trace = serial_traced(
                    builder(), graph, 1, 3, 40, seed
                )
                assert results[run] == serial_result
                assert traces[run] == serial_trace

    def test_empty_ensemble_is_empty(self):
        graph = model_graph("mori", seed=1)
        assert run_ensemble(
            RandomWalkSearch(), graph, 1, 5, [], budget=3
        ) == []

    def test_unsupported_algorithm_rejected(self):
        graph = model_graph("mori", seed=1)
        with pytest.raises(InvalidParameterError, match="no ensemble"):
            run_ensemble(FloodingSearch(), graph, 1, 5, [0], budget=3)

    def test_subclass_not_supported(self):
        class TweakedWalk(RandomWalkSearch):
            pass

        assert not ensemble_supported(TweakedWalk())
        assert all(
            ensemble_supported(builder()) for builder in WALK_BUILDERS
        )
        assert len(ENSEMBLE_ALGORITHMS) == 4


@needs_numpy
class TestEngineTrialAxis:
    """engine='ensemble' through the trial layer: same values."""

    FAMILY = {"model": "mori", "p": 0.5, "m": 2}

    @pytest.mark.parametrize("backend", ("frozen", "multigraph"))
    def test_batched_search_trial_engine_equality(self, backend):
        # A batch mixing walk cells (ensemble kernel) with non-walk
        # cells (serial fallback) and explicit overrides.
        cells = [
            {"algorithm": "random-walk", "run_index": 1},
            {"algorithm": "flooding", "run_index": 0},
            {"algorithm": "self-avoiding-walk", "run_index": 0},
            {"algorithm": "random-walk", "run_index": 0, "start": 7},
            {"algorithm": "restart-walk-0.1", "run_index": 2},
            {"algorithm": "high-degree", "run_index": 0},
        ]
        kwargs = dict(
            family=self.FAMILY,
            size=120,
            portfolio="weak",
            cells=cells,
            backend=backend,
            seed=23,
        )
        serial = batched_search_trial(engine="serial", **kwargs)
        ensemble = batched_search_trial(engine="ensemble", **kwargs)
        assert ensemble == serial

    @pytest.mark.parametrize("portfolio", ("weak", "strong"))
    def test_search_cost_graph_trial_engine_equality(self, portfolio):
        kwargs = dict(
            family=self.FAMILY,
            size=100,
            portfolio=portfolio,
            runs_per_graph=3,
            seed=29,
        )
        serial = search_cost_graph_trial(engine="serial", **kwargs)
        ensemble = search_cost_graph_trial(engine="ensemble", **kwargs)
        assert ensemble == serial

    def test_trajectory_trial_engine_equality(self):
        from repro.core.trials import trajectory_scaling_trial

        kwargs = dict(
            family={"model": "mori", "p": 0.5, "m": 1},
            sizes=[60, 100],
            portfolio="weak",
            runs_per_graph=2,
            seed=31,
        )
        serial = trajectory_scaling_trial(engine="serial", **kwargs)
        ensemble = trajectory_scaling_trial(engine="ensemble", **kwargs)
        assert ensemble == serial

    def test_batched_specs_engine_cache_policy(self):
        from repro.runner import batched_specs

        cells = [{"algorithm": "random-walk", "run_index": 0}]
        base = {"family": self.FAMILY, "size": 60, "portfolio": "weak"}
        default = batched_specs("EX", "m:f", base, cells, [0])
        assert "engine" not in default[0].params
        forced = batched_specs(
            "EX", "m:f", base, cells, [0], engine="ensemble"
        )
        assert forced[0].params["engine"] == "ensemble"
        assert forced[0].key() != default[0].key()


class TestEngineValidation:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ExperimentError, match="serial, ensemble"):
            batched_search_trial(
                family={"model": "mori", "p": 0.5, "m": 1},
                size=40,
                portfolio="weak",
                cells=[{"algorithm": "random-walk"}],
                engine="warp",
                seed=1,
            )

    def test_numpy_absent_raises_clean_error(self, monkeypatch):
        import repro.search.ensemble as ensemble_module

        monkeypatch.setattr(ensemble_module, "HAVE_NUMPY", False)
        graph = model_graph("mori", seed=1)
        with pytest.raises(
            EngineUnavailableError, match="engine unavailable"
        ):
            run_ensemble(
                RandomWalkSearch(), graph, 1, 5, [0], budget=3
            )
        with pytest.raises(
            EngineUnavailableError, match="use engine='serial'"
        ):
            batched_search_trial(
                family={"model": "mori", "p": 0.5, "m": 1},
                size=40,
                portfolio="weak",
                cells=[{"algorithm": "random-walk"}],
                engine="ensemble",
                seed=1,
            )

    def test_serial_engine_works_without_numpy(self, monkeypatch):
        import repro.search.ensemble as ensemble_module

        monkeypatch.setattr(ensemble_module, "HAVE_NUMPY", False)
        values = batched_search_trial(
            family={"model": "mori", "p": 0.5, "m": 1},
            size=40,
            portfolio="weak",
            cells=[{"algorithm": "random-walk"}],
            backend="multigraph",
            engine="serial",
            seed=1,
        )
        assert len(values) == 1
        assert values[0]["algorithm"] == "random-walk"


class TestRunSubstreamGolden:
    """Golden pins of the one per-run seed derivation.

    These values were produced by the pre-ensemble serial formula
    ``substream(seed, (crc32(name) << 16) ^ run_index)``; they must
    never change, or every cached trial and published number drifts.
    """

    GOLDEN = {
        (0, "random-walk", 0): 3377021487772509732,
        (0, "random-walk", 1): 352815842856230813,
        (97, "self-avoiding-walk", 5): 7399835566238392520,
        (1234, "restart-walk-r0.1", 7): 3677803635822176180,
        (42, "biased-walk-b1", 0): 17998675025207313459,
    }

    def test_golden_values(self):
        for (seed, name, run), expected in self.GOLDEN.items():
            assert run_substream(seed, name, run) == expected

    def test_matches_legacy_inline_formula(self):
        import zlib

        for seed in (0, 7, 2**63):
            for name in ("random-walk", "flooding"):
                for run in (0, 1, 13, 65535):
                    code = zlib.crc32(name.encode("utf-8"))
                    assert run_substream(seed, name, run) == substream(
                        seed, (code << 16) ^ run
                    )

    def test_distinct_across_runs_and_names(self):
        seeds = {
            run_substream(3, name, run)
            for name in ("random-walk", "self-avoiding-walk")
            for run in range(64)
        }
        assert len(seeds) == 128

    def test_out_of_field_run_index_rejected(self):
        with pytest.raises(ValueError, match="16-bit"):
            run_substream(0, "random-walk", 1 << 16)
        with pytest.raises(ValueError, match="16-bit"):
            run_substream(0, "random-walk", -1)

    def test_golden_draw_trace(self):
        """First draws of an ensemble run seed, pinned forever."""
        rng = make_rng(run_substream(42, "random-walk", 3))
        assert [rng.randrange(d) for d in (7, 7, 3, 100, 2)] == [
            1, 3, 1, 68, 1,
        ]
        rng = make_rng(run_substream(42, "random-walk", 3))
        assert [rng.random() for _ in range(3)] == [
            0.9266951468051364,
            0.4377196728748688,
            0.3318692634372482,
        ]

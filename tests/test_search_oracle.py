"""Unit tests for the weak/strong oracles and the Knowledge view."""

from __future__ import annotations

import pytest

from repro.errors import OracleProtocolError
from repro.graphs.base import MultiGraph
from repro.search.oracle import Knowledge, StrongOracle, WeakOracle


class TestKnowledge:
    def test_initial_discovery(self, triangle):
        oracle = WeakOracle(triangle, start=1, target=3)
        knowledge = oracle.knowledge
        assert knowledge.is_discovered(1)
        assert not knowledge.is_discovered(2)
        assert knowledge.discovered() == (1,)
        assert knowledge.num_discovered == 1
        assert knowledge.degree(1) == 2

    def test_undiscovered_queries_raise(self, triangle):
        oracle = WeakOracle(triangle, start=1, target=3)
        with pytest.raises(OracleProtocolError):
            oracle.knowledge.edges_of(2)
        with pytest.raises(OracleProtocolError):
            oracle.knowledge.degree(2)
        with pytest.raises(OracleProtocolError):
            oracle.knowledge.unresolved_edges(2)

    def test_far_endpoint_inference(self, triangle):
        # Triangle edges: 0=(2,1), 1=(3,2), 2=(3,1).
        oracle = WeakOracle(triangle, start=1, target=99 if False else 2)
        oracle = WeakOracle(triangle, start=1, target=2)
        knowledge = oracle.knowledge
        # Before any request nothing is resolvable.
        assert knowledge.far_endpoint(1, 0) is None
        oracle.request(1, 0)  # reveals vertex 2
        # Edge 0 now resolved from both sides.
        assert knowledge.far_endpoint(1, 0) == 2
        assert knowledge.far_endpoint(2, 0) == 1
        # Edge 2 (3,1): only vertex 1's list seen; still unresolved.
        assert knowledge.far_endpoint(1, 2) is None

    def test_inference_without_request(self, triangle):
        # Discover 2 and 3 via requests on vertex 1's edges; edge 1=(3,2)
        # then resolves *by inference*, with no request about it.
        oracle = WeakOracle(triangle, start=1, target=3)
        oracle.request(1, 0)  # reveals 2
        oracle.request(1, 2)  # reveals 3
        knowledge = oracle.knowledge
        assert knowledge.far_endpoint(2, 1) == 3
        assert knowledge.far_endpoint(3, 1) == 2
        assert oracle.request_count == 2

    def test_self_loop_resolution(self, loop_graph):
        # Edges: 0=(2,1), 1=(2,2) loop.
        oracle = WeakOracle(loop_graph, start=2, target=1)
        knowledge = oracle.knowledge
        # The loop appears twice in 2's own list, so it resolves to 2
        # immediately at discovery.
        assert knowledge.far_endpoint(2, 1) == 2
        assert knowledge.unresolved_edges(2) == [0]

    def test_unresolved_edges_shrink(self, triangle):
        oracle = WeakOracle(triangle, start=1, target=3)
        assert oracle.knowledge.unresolved_edges(1) == [0, 2]
        oracle.request(1, 0)
        assert oracle.knowledge.unresolved_edges(1) == [2]


class TestWeakOracle:
    def test_start_equals_target(self, triangle):
        oracle = WeakOracle(triangle, start=2, target=2)
        assert oracle.found
        assert oracle.request_count == 0

    def test_request_counts(self, triangle):
        oracle = WeakOracle(triangle, start=1, target=3)
        oracle.request(1, 0)
        assert oracle.request_count == 1
        # Re-requesting a resolved edge still costs a request.
        oracle.request(1, 0)
        assert oracle.request_count == 2

    def test_found_on_reveal(self, triangle):
        oracle = WeakOracle(triangle, start=1, target=3)
        assert not oracle.found
        result = oracle.request(1, 2)  # edge 2 = (3,1)
        assert result == 3
        assert oracle.found

    def test_request_undiscovered_vertex_rejected(self, triangle):
        oracle = WeakOracle(triangle, start=1, target=3)
        with pytest.raises(OracleProtocolError):
            oracle.request(2, 0)

    def test_request_non_incident_edge_rejected(self, triangle):
        oracle = WeakOracle(triangle, start=1, target=3)
        with pytest.raises(OracleProtocolError):
            oracle.request(1, 1)  # edge 1 = (3,2), not incident to 1

    def test_invalid_start_or_target(self, triangle):
        with pytest.raises(OracleProtocolError):
            WeakOracle(triangle, start=9, target=1)
        with pytest.raises(OracleProtocolError):
            WeakOracle(triangle, start=1, target=9)

    def test_answer_includes_edge_list(self, triangle):
        oracle = WeakOracle(triangle, start=1, target=3)
        v = oracle.request(1, 0)
        assert v == 2
        assert oracle.knowledge.edges_of(2) == triangle.incident_edges(2)

    def test_parallel_edges_are_distinct_requests(self, parallel_graph):
        oracle = WeakOracle(parallel_graph, start=1, target=2)
        assert oracle.knowledge.unresolved_edges(1) == [0, 1]
        oracle.request(1, 0)
        # Both copies resolve once vertex 2's list is revealed.
        assert oracle.knowledge.far_endpoint(1, 1) == 2


class TestStrongOracle:
    def test_start_equals_target(self, triangle):
        oracle = StrongOracle(triangle, start=2, target=2)
        assert oracle.found

    def test_request_reveals_neighborhood(self, path4):
        oracle = StrongOracle(path4, start=2, target=4)
        neighbors = oracle.request(2)
        assert neighbors == (1, 3)
        assert oracle.knowledge.is_discovered(1)
        assert oracle.knowledge.is_discovered(3)
        assert not oracle.found

    def test_found_when_target_is_neighbor(self, path4):
        oracle = StrongOracle(path4, start=2, target=4)
        oracle.request(2)
        oracle.request(3)
        assert oracle.found
        assert oracle.request_count == 2

    def test_request_undiscovered_rejected(self, path4):
        oracle = StrongOracle(path4, start=1, target=4)
        with pytest.raises(OracleProtocolError):
            oracle.request(3)  # not yet revealed

    def test_was_requested(self, path4):
        oracle = StrongOracle(path4, start=2, target=4)
        assert not oracle.was_requested(2)
        oracle.request(2)
        assert oracle.was_requested(2)

    def test_neighbors_include_loop_self(self, loop_graph):
        oracle = StrongOracle(loop_graph, start=1, target=2)
        neighbors = oracle.request(1)
        assert neighbors == (2,)
        # Requesting 2 now reveals 1 and 2 (loop).
        neighbors2 = oracle.request(2)
        assert neighbors2 == (1, 2)

    def test_degrees_of_neighbors_known(self, path4):
        # The Adamic premise: one request exposes neighbor degrees.
        oracle = StrongOracle(path4, start=2, target=4)
        oracle.request(2)
        assert oracle.knowledge.degree(1) == 1
        assert oracle.knowledge.degree(3) == 2

    def test_invalid_start_or_target(self, triangle):
        with pytest.raises(OracleProtocolError):
            StrongOracle(triangle, start=0, target=1)
        with pytest.raises(OracleProtocolError):
            StrongOracle(triangle, start=1, target=0)


class TestModelSeparation:
    def test_weak_never_reveals_unrequested_neighbors(self, path4):
        """The weak oracle must not leak neighbor identities."""
        oracle = WeakOracle(path4, start=2, target=4)
        # After discovering vertex 3 we know its edge ids but NOT the
        # identity of its other neighbor (vertex 4).
        oracle.request(2, 1)  # edge 1 = (3,2)
        knowledge = oracle.knowledge
        assert knowledge.is_discovered(3)
        assert not knowledge.is_discovered(4)
        assert knowledge.far_endpoint(3, 2) is None  # edge 2 = (4,3)

    def test_strong_is_strictly_more_informative(self, path4):
        weak = WeakOracle(path4, start=2, target=4)
        strong = StrongOracle(path4, start=2, target=4)
        weak.request(2, 1)
        strong.request(2)
        # One request: weak discovered one vertex, strong discovered two.
        assert weak.knowledge.num_discovered == 2
        assert strong.knowledge.num_discovered == 3

"""Unit tests for the core experiment engine (families, measurements, results)."""

from __future__ import annotations

import math

import pytest

from repro.core.families import (
    BarabasiAlbertFamily,
    ConfigurationFamily,
    CooperFriezeFamily,
    MoriFamily,
    theorem_target_for_size,
)
from repro.core.results import ExperimentResult, Table, load_result, save_result
from repro.core.searchability import (
    constant_factory,
    measure_scaling,
    measure_search_cost,
    omniscient_factory,
)
from repro.core.sweep import geometric_sizes, grid
from repro.errors import ExperimentError, InvalidParameterError
from repro.search.algorithms import FloodingSearch, HighDegreeWeakSearch


class TestTheoremTarget:
    def test_window_fits(self):
        for size in (10, 100, 1000):
            target = theorem_target_for_size(size)
            b = (target - 1) + math.isqrt(target - 2)
            assert b <= size
            # Next target up would overflow.
            b_next = target + math.isqrt(target - 1)
            assert b_next > size or target == size

    def test_small_sizes(self):
        assert theorem_target_for_size(4) >= 3
        with pytest.raises(InvalidParameterError):
            theorem_target_for_size(3)


class TestFamilies:
    def test_mori_family(self):
        family = MoriFamily(p=0.5, m=2)
        graph = family.build(50, seed=0)
        assert graph.num_vertices == 50
        assert graph.is_connected()
        assert "mori" in family.name
        assert family.default_start(graph) == 1

    def test_cooper_frieze_family(self):
        family = CooperFriezeFamily()
        graph = family.build(50, seed=0)
        assert graph.num_vertices == 50
        assert graph.is_connected()

    def test_ba_family(self):
        family = BarabasiAlbertFamily(m=2)
        graph = family.build(50, seed=0)
        assert graph.num_vertices == 50

    def test_configuration_family_giant_component(self):
        family = ConfigurationFamily(exponent=2.3, min_degree=2)
        graph = family.build(300, seed=0)
        assert graph.is_connected()
        assert graph.num_vertices <= 300
        assert family.theorem_target(graph) == graph.num_vertices

    def test_family_determinism(self):
        family = MoriFamily(p=0.5, m=1)
        assert family.build(40, seed=5) == family.build(40, seed=5)


class TestMeasureSearchCost:
    def test_basic_measurement(self):
        family = MoriFamily(p=0.5, m=1)
        factories = {
            "flooding": constant_factory(FloodingSearch()),
            "high-degree": constant_factory(HighDegreeWeakSearch()),
        }
        cell = measure_search_cost(
            family, 60, factories, num_graphs=3, runs_per_graph=2, seed=0
        )
        assert set(cell.summaries) == {"flooding", "high-degree"}
        for summary in cell.summaries.values():
            assert summary.num_runs == 6
            assert summary.success_rate == 1.0
            assert summary.mean_requests > 0

    def test_omniscient_factory_integration(self):
        family = MoriFamily(p=0.5, m=1)
        cell = measure_search_cost(
            family,
            100,
            {"omniscient": omniscient_factory()},
            num_graphs=2,
            runs_per_graph=2,
            seed=1,
        )
        assert cell.summaries["omniscient"].success_rate == 1.0

    def test_determinism(self):
        family = MoriFamily(p=0.5, m=1)
        factories = {"flooding": constant_factory(FloodingSearch())}
        c1 = measure_search_cost(
            family, 50, factories, num_graphs=2, runs_per_graph=1, seed=7
        )
        c2 = measure_search_cost(
            family, 50, factories, num_graphs=2, runs_per_graph=1, seed=7
        )
        assert (
            c1.summaries["flooding"].mean_requests
            == c2.summaries["flooding"].mean_requests
        )

    def test_validation(self):
        family = MoriFamily()
        with pytest.raises(ExperimentError):
            measure_search_cost(family, 50, {}, num_graphs=0)


class TestOmniscientWindowClip:
    """Exact audit of the factory's window clip against Lemma 1.

    Lemma 1's window is ``V = [[target, b]]`` with
    ``b = (target - 1) + ⌊√(target - 2)⌋`` (``equivalence_window``),
    both ends inclusive; the factory realises it as
    ``range(target, min(b, n) + 1)``.  These tests pin that the clip
    keeps exactly the members of ``[[target, b]]`` that exist in the
    graph — no off-by-one at either end, including targets at and near
    the newest vertex ``n`` where ``b`` overshoots the graph.
    """

    def _window_for(self, graph, target):
        factory = omniscient_factory()
        return factory(graph, target).window

    def test_theorem_target_window_is_unclipped_lemma1_set(self):
        import math

        family = MoriFamily(p=0.5, m=1)
        graph = family.build(200, seed=2)
        target = family.theorem_target(graph)
        window = self._window_for(graph, target)
        b = (target - 1) + math.isqrt(target - 2)
        # theorem_target_for_size guarantees b <= n: no clipping.
        assert b <= graph.num_vertices
        assert window == tuple(range(target, b + 1))
        assert len(window) == math.isqrt(target - 2)
        assert window[0] == target

    def test_target_at_newest_vertex_degenerates_to_singleton(self):
        import math

        family = MoriFamily(p=0.5, m=1)
        graph = family.build(100, seed=3)
        n = graph.num_vertices
        b = (n - 1) + math.isqrt(n - 2)
        assert b > n  # the unclipped window would leave the graph
        window = self._window_for(graph, n)
        assert window == (n,)  # [[n, b]] ∩ [1, n] — the target alone

    def test_targets_near_n_clip_to_existing_vertices_exactly(self):
        import math

        family = MoriFamily(p=0.5, m=1)
        graph = family.build(100, seed=4)
        n = graph.num_vertices
        for target in range(n - 6, n + 1):
            window = self._window_for(graph, target)
            b = (target - 1) + math.isqrt(target - 2)
            expected = tuple(
                k for k in range(target, b + 1) if k <= n
            )
            assert window == expected, target
            # Inclusive at both surviving ends, never beyond n.
            assert window[0] == target
            assert window[-1] == min(b, n)
            assert all(graph.has_vertex(k) for k in window)

    def test_clipped_window_searches_still_succeed(self):
        from repro.search.process import run_search

        family = MoriFamily(p=0.5, m=1)
        graph = family.build(100, seed=5)
        n = graph.num_vertices
        factory = omniscient_factory()
        for target in (n, n - 1):
            algorithm = factory(graph, target)
            result = run_search(algorithm, graph, 1, target, seed=0)
            assert result.found

class TestMeasureScaling:
    def test_scaling_and_exponent(self):
        family = MoriFamily(p=0.5, m=1)
        factories = {"flooding": constant_factory(FloodingSearch())}
        measurement = measure_scaling(
            family,
            (50, 100, 200),
            factories,
            num_graphs=3,
            runs_per_graph=1,
            seed=2,
        )
        assert measurement.sizes == [50, 100, 200]
        means = measurement.mean_requests("flooding")
        assert len(means) == 3
        # Flooding cost grows with n.
        assert means[-1] > means[0]
        exponent = measurement.fitted_exponent("flooding")
        assert 0.3 < exponent < 1.5

    def test_needs_two_sizes(self):
        family = MoriFamily()
        with pytest.raises(ExperimentError):
            measure_scaling(
                family, (50,), {"f": constant_factory(FloodingSearch())}
            )


class TestTable:
    def test_add_row_validates_width(self):
        table = Table(title="t", columns=("a", "b"))
        table.add_row(1, 2)
        with pytest.raises(ExperimentError):
            table.add_row(1)

    def test_format_contains_data(self):
        table = Table(title="My Table", columns=("x", "value"))
        table.add_row(10, 0.125)
        table.notes.append("a note")
        text = table.format()
        assert "My Table" in text
        assert "0.125" in text
        assert "a note" in text

    def test_format_scientific_for_extremes(self):
        table = Table(title="t", columns=("v",))
        table.add_row(1.5e-7)
        assert "e-07" in table.format()

    def test_roundtrip(self):
        table = Table(title="t", columns=("a",), rows=[(1,)], notes=["n"])
        assert Table.from_dict(table.to_dict()) == table


class TestExperimentResult:
    def test_format(self):
        result = ExperimentResult(
            experiment_id="E0",
            title="demo",
            params={"n": 10},
            derived={"x": 1.5},
        )
        text = result.format()
        assert "E0" in text
        assert "n=10" in text
        assert "x = 1.5" in text

    def test_json_roundtrip(self, tmp_path):
        table = Table(title="t", columns=("a", "b"))
        table.add_row("row", 2.5)
        result = ExperimentResult(
            experiment_id="E99",
            title="roundtrip",
            params={"seed": 3},
            tables=[table],
            derived={"metric": 0.25},
        )
        path = tmp_path / "result.json"
        save_result(result, path)
        loaded = load_result(path)
        assert loaded.experiment_id == "E99"
        assert loaded.params == {"seed": 3}
        assert loaded.derived == {"metric": 0.25}
        assert loaded.tables[0].rows == [("row", 2.5)]


class TestSweep:
    def test_grid_order(self):
        combos = list(grid(b=["x"], a=[1, 2]))
        assert combos == [{"a": 1, "b": "x"}, {"a": 2, "b": "x"}]

    def test_grid_empty(self):
        assert list(grid()) == []

    def test_grid_empty_list_rejected(self):
        with pytest.raises(InvalidParameterError):
            list(grid(a=[]))

    def test_geometric_sizes(self):
        assert geometric_sizes(100, 2.0, 3) == [100, 200, 400]
        assert geometric_sizes(10, 1.5, 4) == [10, 15, 22, 34]

    def test_geometric_validation(self):
        with pytest.raises(InvalidParameterError):
            geometric_sizes(0, 2.0, 3)
        with pytest.raises(InvalidParameterError):
            geometric_sizes(10, 1.0, 3)
        with pytest.raises(InvalidParameterError):
            geometric_sizes(10, 2.0, 0)


class TestCompareResults:
    def _make(self, **overrides):
        from repro.core.results import ExperimentResult

        base = dict(
            experiment_id="E1",
            title="t",
            params={"n": 100, "seed": 1},
            derived={"exponent": 0.95, "floor": 10.0},
        )
        base.update(overrides)
        return ExperimentResult(**base)

    def test_identical_records_match(self):
        from repro.core.compare import compare_results

        report = compare_results(self._make(), self._make())
        assert report.matches
        assert report.num_compared == 2
        assert "MATCH" in report.format()

    def test_within_tolerance_matches(self):
        from repro.core.compare import compare_results

        new = self._make(derived={"exponent": 1.05, "floor": 10.0})
        assert compare_results(self._make(), new, rtol=0.25).matches

    def test_outside_tolerance_reported(self):
        from repro.core.compare import compare_results

        new = self._make(derived={"exponent": 3.0, "floor": 10.0})
        report = compare_results(self._make(), new, rtol=0.25)
        assert not report.matches
        assert any("exponent" in d for d in report.metric_diffs)

    def test_parameter_change_reported(self):
        from repro.core.compare import compare_results

        new = self._make(params={"n": 200, "seed": 1})
        report = compare_results(self._make(), new)
        assert not report.matches
        assert any("n:" in d for d in report.parameter_diffs)

    def test_missing_metric_reported(self):
        from repro.core.compare import compare_results

        new = self._make(derived={"exponent": 0.95})
        report = compare_results(self._make(), new)
        assert "floor" in report.missing_metrics

    def test_different_experiments_rejected(self):
        from repro.core.compare import compare_results
        from repro.errors import ExperimentError

        other = self._make(experiment_id="E2")
        with pytest.raises(ExperimentError):
            compare_results(self._make(), other)

    def test_negative_rtol_rejected(self):
        from repro.core.compare import compare_results
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError):
            compare_results(self._make(), self._make(), rtol=-0.1)

    def test_zero_metrics_compare_clean(self):
        from repro.core.compare import compare_results

        a = self._make(derived={"x": 0.0})
        b = self._make(derived={"x": 0.0})
        assert compare_results(a, b).matches


class TestStartRules:
    def test_start_rules_accepted(self):
        from repro.core.families import MoriFamily
        from repro.core.searchability import (
            constant_factory,
            measure_search_cost,
        )
        from repro.search.algorithms import FloodingSearch

        family = MoriFamily()
        factories = {"f": constant_factory(FloodingSearch())}
        for rule in ("default", "random", "newest-other"):
            cell = measure_search_cost(
                family, 60, factories, num_graphs=2,
                runs_per_graph=1, seed=0, start_rule=rule,
            )
            assert cell.summaries["f"].success_rate == 1.0

    def test_unknown_start_rule_rejected(self):
        from repro.core.families import MoriFamily
        from repro.core.searchability import (
            constant_factory,
            measure_search_cost,
        )
        from repro.search.algorithms import FloodingSearch

        with pytest.raises(ExperimentError):
            measure_search_cost(
                MoriFamily(),
                60,
                {"f": constant_factory(FloodingSearch())},
                start_rule="teleport",
            )

    def test_random_start_never_equals_target(self):
        from repro.core.families import MoriFamily, theorem_target_for_size
        from repro.core.searchability import (
            constant_factory,
            measure_search_cost,
        )
        from repro.search.algorithms import FloodingSearch

        family = MoriFamily()
        cell = measure_search_cost(
            family,
            50,
            {"f": constant_factory(FloodingSearch())},
            num_graphs=5,
            runs_per_graph=1,
            seed=3,
            start_rule="random",
        )
        target = theorem_target_for_size(50)
        for result in cell.results["f"]:
            assert result.start != target


class TestBenchRecording:
    def test_record_result_writes_both_artifacts(self, tmp_path, capsys):
        """The bench helper persists JSON + text and prints the table."""
        import importlib.util
        import os
        import sys

        spec = importlib.util.spec_from_file_location(
            "bench_utils_under_test",
            os.path.join(
                os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                "benchmarks",
                "bench_utils.py",
            ),
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        module.RESULTS_DIR = str(tmp_path)

        from repro.core.results import ExperimentResult, load_result

        result = ExperimentResult(
            experiment_id="E99", title="probe", derived={"x": 1.0}
        )
        returned = module.record_result(result)
        assert returned is result
        assert load_result(tmp_path / "e99.json").derived == {"x": 1.0}
        assert "probe" in (tmp_path / "e99.txt").read_text()
        assert "E99" in capsys.readouterr().out

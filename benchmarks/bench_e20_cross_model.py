"""E20 — The cross-model search-cost grid, at paper scale.

The registry's pure-spec scenario: Móri merged graphs, Cooper–Frieze
graphs, and the configuration-model giant component at matched size
and degree scale, swept by both the weak and the strong portfolio on
one pipeline.  Shape claims, never absolute numbers: the evolving
models' cheapest weak algorithm stays polynomially expensive (the
paper's non-navigability), and every (portfolio, family) pair reports
a finite cost grid.
"""

from __future__ import annotations

from bench_utils import record_result, runner_kwargs

from repro.core.experiments import e20_cross_model

SIZES = (200, 400, 800)
FAMILIES = (
    "mori(m=2,p=0.5)",
    "cooper-frieze(a=0.75)",
    "config(k=2.5)",
)


def test_e20_cross_model(benchmark):
    result = benchmark.pedantic(
        lambda: e20_cross_model(
            sizes=SIZES, num_graphs=4, runs_per_graph=2, seed=20,
            **runner_kwargs(),
        ),
        rounds=1,
        iterations=1,
    )
    record_result(result)

    for portfolio in ("weak", "strong"):
        for family in FAMILIES:
            key = f"cheapest_exponent/{portfolio}/{family}"
            assert key in result.derived
            assert result.derived[
                f"mean@largest/{portfolio}/{family}"
            ] > 0
    # Non-navigability shape claim on the evolving models: even the
    # cheapest weak-model algorithm grows with n (exponent bounded
    # away from the navigable regime's ~0 at these grid sizes).
    for family in FAMILIES[:2]:
        assert result.derived[f"cheapest_exponent/weak/{family}"] > 0.0

"""E6 — Degree distributions: scale-free models vs the Kleinberg lattice.

The paper's premise: real networks have power-law degrees with exponent
k in [2, 3], Kleinberg's model does not ("close to a Poisson
distribution").  This bench fits discrete power laws to all five models
and checks that the evolving/configuration models land in (or near) the
scale-free band while the lattice is rejected.
"""

from __future__ import annotations

from bench_utils import record_result, runner_kwargs

from repro.core.experiments import e6_degree_distribution


def test_e6_degree_distribution(benchmark):
    result = benchmark.pedantic(
        lambda: e6_degree_distribution(n=20000, seed=6, **runner_kwargs()),
        rounds=1,
        iterations=1,
    )
    record_result(result)

    # The configuration model was *sampled* at k=2.5: the fit must
    # recover it closely (this also validates the fitter end-to-end).
    assert abs(result.derived["exponent/config(k=2.5)"] - 2.5) < 0.25

    # Evolving models: heavy tails with exponents in the scale-free
    # ballpark (BA theory: 3; Mori/CF depend on parameters).
    for name in ("mori(p=0.5, m=2)", "cooper-frieze(a=0.75)", "ba(m=2)"):
        exponent = result.derived[f"exponent/{name}"]
        assert 1.8 < exponent < 4.0, f"{name}: {exponent}"

    # The lattice is NOT scale-free: its concentrated degrees force the
    # fitted exponent to an extreme value and/or a poor KS fit.
    kleinberg_key = next(
        k
        for k in result.derived
        if k.startswith("exponent/kleinberg")
    )
    ks_key = kleinberg_key.replace("exponent/", "ks/")
    scale_free_like = (
        1.8 < result.derived[kleinberg_key] < 4.0
        and result.derived[ks_key] < 0.05
    )
    assert not scale_free_like

"""E8 — Kleinberg navigability crossover (the contrast positive result).

Greedy routing cost on the small-world torus as a function of the
clustering exponent r: poly-logarithmic at the critical r = 2,
polynomial away from it.  The fitted cost-vs-n exponent should dip at
r = 2 — the crossover Kleinberg proved and the searchability the
paper's scale-free graphs provably lack.
"""

from __future__ import annotations

from bench_utils import record_result

from repro.core.experiments import e8_kleinberg

R_VALUES = (0.0, 1.0, 2.0, 3.0, 4.0)


def test_e8_kleinberg(benchmark):
    result = benchmark.pedantic(
        lambda: e8_kleinberg(
            sides=(10, 16, 24, 36, 50, 70, 100),
            r_values=R_VALUES,
            pairs_per_grid=60,
            seed=8,
        ),
        rounds=1,
        iterations=1,
    )
    record_result(result)

    exponents = {
        r: result.derived[f"exponent/r={r:g}"] for r in R_VALUES
    }
    # The dip: r=2 is the unique navigable exponent.
    assert exponents[2.0] == min(exponents.values())
    # Poly-log at r=2 shows up as a small fitted power.
    assert exponents[2.0] < 0.35
    # Far from the critical value the cost is genuinely polynomial
    # (~ n^{1/2} at r=0 and r >= 3 in 2D).
    assert exponents[0.0] > 0.3
    assert exponents[4.0] > 0.3

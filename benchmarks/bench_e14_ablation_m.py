"""E14 — Ablation: merge arity m does not rescue searchability.

Theorem 1 covers every m >= 1.  Larger m makes the graph denser (every
vertex has out-degree m) and shrinks the diameter, yet the search
exponent must stay >= ~1/2 for all m — the bound is about label
indistinguishability, not sparsity.
"""

from __future__ import annotations

from bench_utils import record_result

from repro.core.experiments import e14_ablation_m

M_VALUES = (1, 2, 4, 8)


def test_e14_ablation_m(benchmark):
    result = benchmark.pedantic(
        lambda: e14_ablation_m(
            sizes=(200, 400, 800, 1600),
            m_values=M_VALUES,
            p=0.5,
            num_graphs=4,
            seed=14,
        ),
        rounds=1,
        iterations=1,
    )
    record_result(result)

    for m in M_VALUES:
        exponent = result.derived[f"exponent/m={m}"]
        assert exponent > 0.4, f"m={m}: fitted exponent {exponent}"

"""E1 — Theorem 1, weak model: Ω(√n) on merged Móri graphs.

Regenerates the central "figure" of the reproduction: mean request
counts of the full weak-model portfolio (plus the omniscient Lemma-1
baseline) across a size sweep, with the exact theorem floor overlaid,
and per-algorithm fitted scaling exponents.

Shape claims checked:
* every portfolio algorithm's mean cost exceeds the Lemma-1 floor;
* every fitted exponent clears ~0.5 (the paper's bound, with
  Monte-Carlo slack);
* the omniscient baseline is the cheapest (the floor is tight).
"""

from __future__ import annotations

from bench_utils import record_result, runner_kwargs

from repro.core.experiments import e1_mori_weak

SIZES = (200, 400, 800, 1600, 3200)


def test_e1_mori_weak(benchmark):
    result = benchmark.pedantic(
        lambda: e1_mori_weak(
            sizes=SIZES, p=0.5, m=1, num_graphs=5, runs_per_graph=2,
            seed=1, **runner_kwargs(),
        ),
        rounds=1,
        iterations=1,
    )
    record_result(result)

    exponents = {
        key.split("/", 1)[1]: value
        for key, value in result.derived.items()
        if key.startswith("exponent/")
    }
    # The lower bound: no algorithm's scaling exponent sits below ~1/2
    # (0.4 allows finite-size fit noise on a true >= 0.5 exponent).
    for name, exponent in exponents.items():
        assert exponent > 0.4, f"{name}: fitted exponent {exponent}"

    # The omniscient baseline attains the floor's order: cheapest at the
    # largest size.
    largest = max(SIZES)
    means = {
        key.split("/", 1)[1]: value
        for key, value in result.derived.items()
        if key.startswith(f"mean@{largest}/")
    }
    assert means["omniscient-window"] == min(means.values())

    # Every mean clears the concrete Lemma-1 floor (0.8 = MC slack on a
    # bound about expectations).
    floor = result.derived["floor@largest"]
    for name, mean in means.items():
        assert mean >= 0.8 * floor, f"{name}: {mean} < floor {floor}"

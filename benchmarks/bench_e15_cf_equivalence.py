"""E15 — The Θ(√n) equivalence window in Cooper–Frieze graphs.

The paper's Theorem-2 proof sketch: "the starting point is still the
existence of a set of Θ(√n) equivalent vertices".  This bench exhibits
that set: across a size sweep, the probability that the theorem-style
window is *untouched* (every member born by a single NEW edge below the
window and never referenced again) stays bounded away from zero, and
conditional on the event the per-position parent-degree profile is flat
(exchangeability).
"""

from __future__ import annotations

from bench_utils import record_result

from repro.core.experiments import e15_cf_equivalence

SIZES = (100, 200, 400, 800, 1600)


def test_e15_cf_equivalence(benchmark):
    result = benchmark.pedantic(
        lambda: e15_cf_equivalence(
            sizes=SIZES, alpha=0.75, num_samples=400, seed=15
        ),
        rounds=1,
        iterations=1,
    )
    record_result(result)

    # Bounded away from 0 across the whole sweep (Theorem 2's premise).
    assert result.derived["min_p_untouched"] > 0.3
    # No systematic drift: largest size still comparable to smallest.
    probabilities = [
        result.derived[f"p_untouched/n={n}"] for n in SIZES
    ]
    assert probabilities[-1] > 0.5 * probabilities[0]
    # Exchangeability: conditional parent-degree profile roughly flat
    # relative to its level.
    table = result.tables[1]
    means = [row[2] for row in table.rows]
    level = sum(means) / len(means)
    assert result.derived["profile_spread"] < 0.75 * level

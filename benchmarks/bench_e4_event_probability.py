"""E4 — Lemma 3: P(E_{a,b}) >= e^{-(1-p)} at b = a + ⌊√(a-1)⌋.

Regenerates the event-probability table: the exact closed-form product,
a Monte-Carlo cross-check from the actual tree sampler, and the paper's
bound, over a (p, a) grid.  The shape claims: the bound is never
violated, the exact and sampled values agree, and P(E) increases in p.
"""

from __future__ import annotations

from bench_utils import record_result

from repro.core.experiments import e4_event_probability


def test_e4_event_probability(benchmark):
    result = benchmark.pedantic(
        lambda: e4_event_probability(
            a_values=(10, 50, 100, 400, 1000),
            p_values=(0.1, 0.25, 0.5, 0.75, 1.0),
            num_samples=2000,
            seed=4,
        ),
        rounds=1,
        iterations=1,
    )
    record_result(result)

    # Lemma 3 is a theorem about the exact quantity: zero tolerance.
    assert result.derived["min_margin_exact_minus_bound"] >= 0

    # Monte Carlo tracks the exact value on every row.
    table = result.tables[0]
    columns = list(table.columns)
    exact_index = columns.index("exact P(E)")
    mc_index = columns.index("monte-carlo P(E)")
    for row in table.rows:
        assert abs(row[exact_index] - row[mc_index]) < 0.05, row

"""E5 — Max-degree growth: Móri t^p vs Barabási–Albert t^{1/2}.

The paper's strong-model bound is non-trivial exactly when the maximum
degree is o(√n) — true for Móri trees with p < 1/2 (Móri 2005), false
for total-degree preferential models like BA (Section 3).  This bench
fits the growth exponents and checks the ordering.
"""

from __future__ import annotations

from bench_utils import record_result

from repro.core.experiments import e5_max_degree

P_VALUES = (0.25, 0.5, 0.75, 1.0)


def test_e5_max_degree(benchmark):
    result = benchmark.pedantic(
        lambda: e5_max_degree(
            n=30000, p_values=P_VALUES, num_trees=5, seed=5
        ),
        rounds=1,
        iterations=1,
    )
    record_result(result)

    fitted = [
        result.derived[f"mori_exponent/p={p:g}"] for p in P_VALUES
    ]
    # Monotone in p, and each within a loose band of the theory value.
    assert fitted == sorted(fitted)
    for p, exponent in zip(P_VALUES, fitted):
        assert abs(exponent - p) < 0.25, f"p={p}: fitted {exponent}"

    # BA max degree grows ~ t^{1/2} — too fast for the strong bound.
    assert abs(result.derived["ba_exponent"] - 0.5) < 0.15
    # The Section-3 point: Mori with p < 1/2 grows strictly slower
    # than BA; with p > 1/2, faster.
    assert result.derived["mori_exponent/p=0.25"] < result.derived[
        "ba_exponent"
    ]
    assert result.derived["mori_exponent/p=1"] > result.derived[
        "ba_exponent"
    ]

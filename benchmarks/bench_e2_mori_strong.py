"""E2 — Theorem 1, strong model: Ω(n^{1/2-p-ε}) for p < 1/2.

Regenerates the strong-model table on Móri graphs with p = 0.25:
strong-model algorithms (degree-aware) beat weak-model ones in
absolute terms but stay polynomial, and no fitted exponent sinks below
the theorem's 1/2 - p - ε floor.
"""

from __future__ import annotations

from bench_utils import record_result, runner_kwargs

from repro.core.experiments import e2_mori_strong

SIZES = (200, 400, 800, 1600, 3200)
P = 0.25
EPSILON = 0.05


def test_e2_mori_strong(benchmark):
    result = benchmark.pedantic(
        lambda: e2_mori_strong(
            sizes=SIZES,
            p=P,
            m=1,
            epsilon=EPSILON,
            num_graphs=5,
            runs_per_graph=2,
            seed=2,
            **runner_kwargs(),
        ),
        rounds=1,
        iterations=1,
    )
    record_result(result)

    floor_exponent = result.derived["floor_exponent"]
    assert floor_exponent == 0.5 - P - EPSILON
    for key, value in result.derived.items():
        if key.startswith("exponent/"):
            # Fitted exponents must clear the theorem floor (with
            # fit-noise slack on these finite sizes).
            assert value > floor_exponent - 0.1, f"{key}: {value}"

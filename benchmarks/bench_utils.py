"""Shared helpers for the benchmark harness.

Every benchmark regenerates one experiment (a "table/figure" of the
reproduction — see DESIGN.md's index), records the result under
``benchmarks/results/`` (JSON for machines, text for humans), prints it
(visible with ``pytest -s``), and asserts the *shape* claims the paper
makes — who wins, which exponents clear which floors — never absolute
numbers.
"""

from __future__ import annotations

import os

from repro.core.results import ExperimentResult, save_result

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def record_result(result: ExperimentResult) -> ExperimentResult:
    """Persist and print an experiment result; returns it for chaining."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    stem = os.path.join(RESULTS_DIR, result.experiment_id.lower())
    save_result(result, stem + ".json")
    text = result.format()
    with open(stem + ".txt", "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    print()
    print(text)
    return result

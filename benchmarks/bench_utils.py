"""Shared helpers for the benchmark harness.

Every benchmark regenerates one experiment (a "table/figure" of the
reproduction — see DESIGN.md's index), records the result under
``benchmarks/results/`` (JSON for machines, text for humans), prints it
(visible with ``pytest -s``), and asserts the *shape* claims the paper
makes — who wins, which exponents clear which floors — never absolute
numbers.

Runner-dispatched benchmarks (E1, E2, E3, E6, E17) honour two
environment variables so BENCH numbers can exercise the parallel and
cached paths without editing code::

    REPRO_BENCH_JOBS=8 pytest -s benchmarks/bench_e1_mori_weak.py
    REPRO_BENCH_CACHE_DIR=.repro-cache pytest -s benchmarks/...

Neither changes a single published number: trial seeds are substream
functions of the experiment seed, so the parallel path is bit-identical
to serial, and the cache only replays values it previously computed.
"""

from __future__ import annotations

import os

from repro.core.results import ExperimentResult, save_result

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def runner_kwargs() -> dict:
    """``jobs``/``cache_dir`` overrides from the environment.

    Returns an empty dict when neither variable is set, so experiments
    that predate the runner keep their exact historical call shape.
    """
    kwargs = {}
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
    if jobs != 1:
        kwargs["jobs"] = jobs
    cache_dir = os.environ.get("REPRO_BENCH_CACHE_DIR")
    if cache_dir:
        kwargs["cache_dir"] = cache_dir
    return kwargs


def record_result(result: ExperimentResult) -> ExperimentResult:
    """Persist and print an experiment result; returns it for chaining."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    stem = os.path.join(RESULTS_DIR, result.experiment_id.lower())
    save_result(result, stem + ".json")
    text = result.format()
    with open(stem + ".txt", "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    print()
    print(text)
    return result

"""E10 — Lemma 2, verified exactly.

Exhaustive enumeration of all recursive trees at n = 8 (5040 trees),
exact Fraction probabilities, and permutation-invariance checks for
several windows and every mixture parameter — the lemma holds with
literal equality, not within tolerance.
"""

from __future__ import annotations

from bench_utils import record_result

from repro.core.experiments import e10_equivalence_exact


def test_e10_equivalence_exact(benchmark):
    result = benchmark.pedantic(
        lambda: e10_equivalence_exact(
            n=8, p_values=(0.25, 0.5, 0.75, 1.0)
        ),
        rounds=1,
        iterations=1,
    )
    record_result(result)

    assert result.derived["all_windows_hold"] == 1.0
    # The table carries exact event probabilities; all in (0, 1].
    table = result.tables[0]
    p_index = list(table.columns).index("P(E) exact")
    holds_index = list(table.columns).index("lemma2 holds")
    for row in table.rows:
        assert 0.0 < row[p_index] <= 1.0
        assert row[holds_index] == "True"

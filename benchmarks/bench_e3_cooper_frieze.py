"""E3 — Theorem 2: the Ω(√n) floor in the Cooper–Frieze model.

Same portfolio sweep as E1 but on Cooper–Frieze graphs (α = 0.75,
indegree-preferential).  The theorem covers every 0 < α < 1; the shape
claim is identical — all weak-model exponents clear ~1/2.
"""

from __future__ import annotations

from bench_utils import record_result, runner_kwargs

from repro.core.experiments import e3_cooper_frieze

SIZES = (200, 400, 800, 1600)


def test_e3_cooper_frieze(benchmark):
    result = benchmark.pedantic(
        lambda: e3_cooper_frieze(
            sizes=SIZES,
            alpha=0.75,
            num_graphs=4,
            runs_per_graph=2,
            seed=3,
            **runner_kwargs(),
        ),
        rounds=1,
        iterations=1,
    )
    record_result(result)

    for key, value in result.derived.items():
        if key.startswith("exponent/"):
            assert value > 0.4, f"{key}: fitted exponent {value}"

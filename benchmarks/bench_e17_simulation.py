"""E17 — The strong-to-weak simulation argument, executed.

Theorem 1's strong-model case rests on: any strong algorithm can be
simulated in the weak model at a slowdown of at most the maximum
degree.  This bench runs the high-degree strong searcher natively and
through the simulation adapter on the same instances and checks the
inequality instance-by-instance (deterministic inner algorithm, so the
check is exact).
"""

from __future__ import annotations

from bench_utils import record_result, runner_kwargs

from repro.core.experiments import e17_simulation_slowdown

SIZES = (200, 400, 800, 1600)


def test_e17_simulation_slowdown(benchmark):
    result = benchmark.pedantic(
        lambda: e17_simulation_slowdown(
            sizes=SIZES, p=0.25, num_graphs=5, seed=17,
            **runner_kwargs(),
        ),
        rounds=1,
        iterations=1,
    )
    record_result(result)

    # The paper's inequality, with zero slack.
    assert result.derived["worst_ratio"] <= 1.0
    for n in SIZES:
        assert result.derived[f"worst_ratio/n={n}"] <= 1.0

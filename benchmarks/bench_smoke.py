"""Bench-trajectory smoke run: the growth-trajectory checkpoint point.

``make bench-smoke`` runs this script.  It records the PR's trajectory
point in ``BENCH_PR3.json`` at the repository root:

1. downsized end-to-end experiment timings — E17 in both construction
   modes and E19 (trajectory by definition) — per graph backend.  These
   are honest end-to-end numbers: E17's wall clock is dominated by its
   deterministic searches (whose cost is realisation-dependent), so its
   mode ratio is noisy and close to 1;
2. the headline measurement, ``e17-grid-realisations``: the wall-clock
   cost of *materialising the per-size graph snapshots* of a downsized
   E17-shaped scaling grid (Móri ``p = 0.25``, the construction work the
   checkpoint engine exists to optimise), under two layouts per
   backend —

   * ``independent`` — every grid size evolves a fresh realisation from
     scratch (``Σ nᵢ`` construction work, the pre-PR layout),
   * ``trajectory``  — one realisation evolves to ``max(sizes)`` once
     and every size is served by a bit-identical checkpoint snapshot
     (prefix freeze; buffer-reusing CSR slices on the frozen backend).

Record schema (validated by ``tests/test_bench_schema.py``)::

    {"schema": "repro-bench/v1",
     "records": [{"experiment": "E17", "n": 4000, "wall_seconds": ...,
                  "backend": "frozen", "mode": "trajectory"}, ...],
     "trajectory_speedup": {
         "workload": "e17-grid-realisations",
         "family": "mori(m=1,p=0.25)", "sizes": [...],
         "per_backend": {
             "frozen":     {"independent_seconds": ...,
                            "trajectory_seconds": ...,
                            "speedup": ...},
             "multigraph": {...}},
         "acceptance_backend": "frozen"}}

Wall-clock numbers vary with the machine; the committed file records
the run that accompanied the PR (speedup >= 2x on both backends, with
the acceptance gate on the default ``frozen`` backend).

``PYTHONPATH=src python benchmarks/bench_smoke.py --pr2``
regenerates the previous
PR's ``BENCH_PR2.json`` artifact instead (FrozenGraph cell batching).
"""

from __future__ import annotations

import json
import os
import sys
import time

from repro.analysis.diameter import bfs_distances
from repro.core.experiments import (
    e1_mori_weak,
    e3_cooper_frieze,
    e17_simulation_slowdown,
    e19_trajectory_scaling,
)
from repro.core.families import MoriFamily
from repro.core.trials import snapshot_graph, trajectory_snapshots
from repro.graphs import freeze
from repro.rng import make_rng, substream
from repro.search.algorithms import FloodingSearch
from repro.search.process import run_search

SCHEMA = "repro-bench/v1"
_ROOT = os.path.join(os.path.dirname(__file__), os.pardir)
OUTPUT_PATH = os.path.join(_ROOT, "BENCH_PR3.json")
PR2_OUTPUT_PATH = os.path.join(_ROOT, "BENCH_PR2.json")

# ----------------------------------------------------------------------
# PR3: growth-trajectory checkpoint engine
# ----------------------------------------------------------------------

#: Downsized end-to-end runs timed per backend (and, for E17, per mode).
SMOKE_SIZES_E17 = (500, 676, 913, 1233, 1665, 2248, 3035, 4000)
SMOKE_SIZES_E19 = (200, 400, 800, 1600)

#: The grid whose *realisation* cost the speedup block measures: E17's
#: family at a dense geometric checkpoint grid, where the independent
#: layout pays `sum(sizes)` construction work against the trajectory's
#: one pass.
GRID_FAMILY = MoriFamily(p=0.25, m=1)
GRID_SIZES = (
    2000, 2601, 3382, 4397, 5717, 7433, 9663, 12562,
    16331, 21231, 27601, 32000,
)
GRID_SEED = 17


def time_experiments() -> list:
    """Downsized E17 (both modes) and E19, per backend, timed."""
    records = []
    runs = [
        ("E17", e17_simulation_slowdown,
         {"sizes": SMOKE_SIZES_E17, "num_graphs": 2, "seed": 17},
         max(SMOKE_SIZES_E17), ("independent", "trajectory")),
        ("E19", e19_trajectory_scaling,
         {"sizes": SMOKE_SIZES_E19, "num_graphs": 2,
          "runs_per_graph": 1, "seed": 19},
         max(SMOKE_SIZES_E19), ("trajectory",)),
    ]
    for experiment_id, function, kwargs, n, modes in runs:
        for backend in ("multigraph", "frozen"):
            for mode in modes:
                extra = (
                    {} if experiment_id == "E19" else {"mode": mode}
                )
                began = time.perf_counter()
                function(**kwargs, backend=backend, **extra)
                elapsed = time.perf_counter() - began
                records.append(
                    {
                        "experiment": experiment_id,
                        "n": n,
                        "wall_seconds": round(elapsed, 4),
                        "backend": backend,
                        "mode": mode,
                    }
                )
                print(
                    f"  {experiment_id:>4} backend={backend:<10} "
                    f"mode={mode:<12} {elapsed:7.2f}s"
                )
    return records


def measure_trajectory_speedup() -> dict:
    """Grid-realisation wall clock: independent builds vs one trajectory."""
    per_backend = {}
    for backend in ("frozen", "multigraph"):
        began = time.perf_counter()
        for size in GRID_SIZES:
            snapshot_graph(
                GRID_FAMILY.build(size, seed=GRID_SEED), backend
            )
        independent_seconds = time.perf_counter() - began

        began = time.perf_counter()
        graph, marks = GRID_FAMILY.build_trajectory(
            GRID_SIZES, seed=GRID_SEED
        )
        snapshots = trajectory_snapshots(
            graph, marks, GRID_SIZES, backend
        )
        trajectory_seconds = time.perf_counter() - began
        assert len(snapshots) == len(GRID_SIZES)

        per_backend[backend] = {
            "independent_seconds": round(independent_seconds, 4),
            "trajectory_seconds": round(trajectory_seconds, 4),
            "speedup": round(
                independent_seconds / trajectory_seconds, 2
            ),
        }
        print(
            f"  {backend:<10} independent {independent_seconds:6.2f}s"
            f" | trajectory {trajectory_seconds:6.2f}s -> "
            f"{per_backend[backend]['speedup']:.1f}x"
        )
    return {
        "workload": "e17-grid-realisations",
        "family": GRID_FAMILY.name,
        "sizes": list(GRID_SIZES),
        "per_backend": per_backend,
        "acceptance_backend": "frozen",
    }


def main() -> int:
    print("bench-smoke: downsized E17/E19 (backends x modes)")
    records = time_experiments()
    print(
        "bench-smoke: E17-shaped grid realisations, "
        f"sizes {GRID_SIZES[0]}..{GRID_SIZES[-1]}"
    )
    speedup = measure_trajectory_speedup()
    payload = {
        "schema": SCHEMA,
        "records": records,
        "trajectory_speedup": speedup,
    }
    path = os.path.normpath(OUTPUT_PATH)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {path}")
    gate = speedup["per_backend"][speedup["acceptance_backend"]]
    ok = gate["speedup"] >= 2.0
    print(
        "acceptance: frozen-backend grid-realisation speedup "
        f"{gate['speedup']:.1f}x ({'>= 2x ok' if ok else 'BELOW 2x'})"
    )
    return 0 if ok else 1


# ----------------------------------------------------------------------
# PR2 artifact regeneration (kept for reproducibility of BENCH_PR2.json)
# ----------------------------------------------------------------------

PR2_EXPERIMENTS = (
    ("E1", e1_mori_weak,
     {"sizes": (200, 400), "num_graphs": 2, "runs_per_graph": 1}, 400),
    ("E3", e3_cooper_frieze,
     {"sizes": (100, 200), "num_graphs": 2, "runs_per_graph": 1}, 200),
    ("E17", e17_simulation_slowdown,
     {"sizes": (100, 200), "num_graphs": 2}, 200),
)

PR2_SPEEDUP_N = 100_000
PR2_SPEEDUP_CELLS = 12
PR2_SPEEDUP_SEED = 97


def _pr2_cell_starts(graph, target):
    rng = make_rng(substream(PR2_SPEEDUP_SEED, 0xCE11))
    starts = []
    while len(starts) < PR2_SPEEDUP_CELLS:
        start = rng.randint(1, graph.num_vertices)
        if start != target and start not in starts:
            starts.append(start)
    return starts


def _pr2_run_cells(graph, starts, target):
    for start in starts:
        result = run_search(
            FloodingSearch(), graph, start, target, seed=0
        )
        assert result.found
        distances = bfs_distances(graph, start)
        assert distances[target] >= 0


def pr2_main() -> int:
    """Regenerate BENCH_PR2.json (the FrozenGraph cell-batch point)."""
    print("bench-smoke --pr2: downsized experiments (both backends)")
    records = []
    for experiment_id, function, kwargs, n in PR2_EXPERIMENTS:
        for backend in ("multigraph", "frozen"):
            began = time.perf_counter()
            function(**kwargs, backend=backend)
            elapsed = time.perf_counter() - began
            records.append(
                {
                    "experiment": experiment_id,
                    "n": n,
                    "wall_seconds": round(elapsed, 4),
                    "backend": backend,
                }
            )
            print(
                f"  {experiment_id:>4} backend={backend:<10} "
                f"{elapsed:7.2f}s"
            )
    family = MoriFamily(p=0.5, m=1)
    print(f"  building Mori n={PR2_SPEEDUP_N} ...")
    graph = family.build(PR2_SPEEDUP_N, seed=PR2_SPEEDUP_SEED)
    target = family.theorem_target(graph)
    starts = _pr2_cell_starts(graph, target)

    began = time.perf_counter()
    for start in starts:
        rebuilt = family.build(PR2_SPEEDUP_N, seed=PR2_SPEEDUP_SEED)
        _pr2_run_cells(rebuilt, [start], target)
    rebuild_seconds = time.perf_counter() - began

    began = time.perf_counter()
    shared = family.build(PR2_SPEEDUP_N, seed=PR2_SPEEDUP_SEED)
    _pr2_run_cells(shared, starts, target)
    shared_seconds = time.perf_counter() - began

    began = time.perf_counter()
    built = family.build(PR2_SPEEDUP_N, seed=PR2_SPEEDUP_SEED)
    frozen = freeze(built)
    _pr2_run_cells(frozen, starts, target)
    frozen_seconds = time.perf_counter() - began

    speedup = {
        "workload": "e1-flooding-bfs-cells",
        "n": PR2_SPEEDUP_N,
        "cells": PR2_SPEEDUP_CELLS,
        "multigraph_rebuild_seconds": round(rebuild_seconds, 4),
        "multigraph_shared_seconds": round(shared_seconds, 4),
        "frozen_batched_seconds": round(frozen_seconds, 4),
        "speedup_vs_rebuild": round(
            rebuild_seconds / frozen_seconds, 2
        ),
        "speedup_vs_shared": round(
            shared_seconds / frozen_seconds, 2
        ),
    }
    payload = {
        "schema": SCHEMA,
        "records": records,
        "speedup": speedup,
    }
    path = os.path.normpath(PR2_OUTPUT_PATH)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {path}")
    ok = speedup["speedup_vs_rebuild"] >= 3.0
    print(
        "acceptance: speedup_vs_rebuild "
        f"{speedup['speedup_vs_rebuild']:.1f}x "
        f"({'>= 3x ok' if ok else 'BELOW 3x'})"
    )
    return 0 if ok else 1


if __name__ == "__main__":
    if "--pr2" in sys.argv[1:]:
        sys.exit(pr2_main())
    sys.exit(main())

"""Bench-trajectory smoke run: the walker-ensemble engine point.

``make bench-smoke`` runs this script.  It records the PR's point in
``BENCH_PR4.json`` at the repository root:

1. downsized end-to-end experiment timings — the walk-heavy E1 and E3
   — per search engine on the default frozen backend.  These are
   honest end-to-end numbers: small grids are construction-dominated,
   so the end-to-end engine ratio is far more modest than the
   per-cell one;
2. the headline measurement, ``walk-cells``: one n=100 000 Móri
   (``m = 2``) snapshot serving a 64-run (algorithm, start, target)
   cell for each walk-family algorithm, serial oracle loop vs the
   lock-step ensemble kernel.  The bench also asserts the two engines
   return *equal* per-run results before trusting either timing.

Record schema (validated by ``tests/test_bench_schema.py``)::

    {"schema": "repro-bench/v1",
     "records": [{"experiment": "E1", "n": 240, "wall_seconds": ...,
                  "backend": "frozen", "engine": "ensemble"}, ...],
     "ensemble_speedup": {
         "workload": "walk-cells",
         "family": "mori(m=2,p=0.5)", "n": 100000,
         "runs_per_cell": 64, "budget": 2000, "backend": "frozen",
         "per_algorithm": {
             "random-walk":        {"serial_seconds": ...,
                                    "ensemble_seconds": ...,
                                    "speedup": ...},
             "self-avoiding-walk": {...},
             "restart-walk-r0.1":  {...}},
         "acceptance_algorithm": "random-walk"}}

Wall-clock numbers vary with the machine; the committed file records
the run that accompanied the PR (>= 3x on the acceptance cell, on the
frozen backend with numpy — the ensemble engine's native path).

``PYTHONPATH=src python benchmarks/bench_smoke.py --pr3`` regenerates
the previous PR's ``BENCH_PR3.json`` artifact (growth-trajectory
checkpoint engine) and ``--pr2`` the PR2 one (FrozenGraph cell
batching).
"""

from __future__ import annotations

import json
import os
import sys
import time

from repro.analysis.diameter import bfs_distances
from repro.core.experiments import (
    e1_mori_weak,
    e3_cooper_frieze,
    e17_simulation_slowdown,
    e19_trajectory_scaling,
)
from repro.core.families import MoriFamily
from repro.core.trials import snapshot_graph, trajectory_snapshots
from repro.graphs import freeze
from repro.rng import make_rng, run_substream, substream
from repro.search.algorithms import (
    FloodingSearch,
    RandomWalkSearch,
    RestartingWalkSearch,
    SelfAvoidingWalkSearch,
)
from repro.search.ensemble import run_ensemble
from repro.search.process import run_search

SCHEMA = "repro-bench/v1"
_ROOT = os.path.join(os.path.dirname(__file__), os.pardir)
OUTPUT_PATH = os.path.join(_ROOT, "BENCH_PR4.json")
PR3_OUTPUT_PATH = os.path.join(_ROOT, "BENCH_PR3.json")
PR2_OUTPUT_PATH = os.path.join(_ROOT, "BENCH_PR2.json")

# ----------------------------------------------------------------------
# PR4: vectorized walker-ensemble engine
# ----------------------------------------------------------------------

#: Downsized walk-heavy experiments timed per engine (frozen backend —
#: the engine axis is orthogonal to the backend one, and frozen+numpy
#: is the kernel's native path).
PR4_EXPERIMENTS = (
    ("E1", e1_mori_weak,
     {"sizes": (60, 120, 240), "num_graphs": 2, "runs_per_graph": 2},
     240),
    ("E3", e3_cooper_frieze,
     {"sizes": (60, 120), "num_graphs": 2, "runs_per_graph": 2}, 120),
)

PR4_CELL_FAMILY = MoriFamily(p=0.5, m=2)
PR4_CELL_N = 100_000
PR4_CELL_RUNS = 64
PR4_CELL_BUDGET = 2_000
PR4_CELL_SEED = 97
PR4_CELL_ALGORITHMS = (
    RandomWalkSearch(),
    SelfAvoidingWalkSearch(),
    RestartingWalkSearch(restart_prob=0.1),
)


def pr4_time_experiments() -> list:
    """Downsized E1/E3 per engine, timed end to end."""
    records = []
    for experiment_id, function, kwargs, n in PR4_EXPERIMENTS:
        for engine in ("serial", "ensemble"):
            began = time.perf_counter()
            function(**kwargs, backend="frozen", engine=engine)
            elapsed = time.perf_counter() - began
            records.append(
                {
                    "experiment": experiment_id,
                    "n": n,
                    "wall_seconds": round(elapsed, 4),
                    "backend": "frozen",
                    "engine": engine,
                }
            )
            print(
                f"  {experiment_id:>4} engine={engine:<9} "
                f"{elapsed:7.2f}s"
            )
    return records


def pr4_measure_ensemble_speedup() -> dict:
    """Per-cell wall clock: serial oracle loop vs ensemble kernel."""
    print(
        f"  building {PR4_CELL_FAMILY.name} n={PR4_CELL_N} "
        "(one snapshot serves every cell) ..."
    )
    graph = freeze(
        PR4_CELL_FAMILY.build(PR4_CELL_N, seed=PR4_CELL_SEED)
    )
    target = PR4_CELL_FAMILY.theorem_target(graph)
    start = PR4_CELL_FAMILY.default_start(graph)
    per_algorithm = {}
    for algorithm in PR4_CELL_ALGORITHMS:
        run_seeds = [
            run_substream(PR4_CELL_SEED, algorithm.name, run)
            for run in range(PR4_CELL_RUNS)
        ]
        began = time.perf_counter()
        serial_results = [
            run_search(
                algorithm, graph, start, target,
                budget=PR4_CELL_BUDGET, seed=run_seed,
            )
            for run_seed in run_seeds
        ]
        serial_seconds = time.perf_counter() - began

        began = time.perf_counter()
        ensemble_results = run_ensemble(
            algorithm, graph, start, target, run_seeds,
            budget=PR4_CELL_BUDGET,
        )
        ensemble_seconds = time.perf_counter() - began

        # The speedup claim is only worth recording if the engines
        # agree run for run — the determinism contract, re-checked at
        # bench scale (a real raise, so `python -O` cannot strip it).
        if ensemble_results != serial_results:
            raise SystemExit(
                f"{algorithm.name}: engines diverged at bench scale"
            )
        per_algorithm[algorithm.name] = {
            "serial_seconds": round(serial_seconds, 4),
            "ensemble_seconds": round(ensemble_seconds, 4),
            "speedup": round(serial_seconds / ensemble_seconds, 2),
        }
        print(
            f"  {algorithm.name:<20} serial {serial_seconds:6.2f}s"
            f" | ensemble {ensemble_seconds:6.2f}s -> "
            f"{per_algorithm[algorithm.name]['speedup']:.1f}x"
        )
    return {
        "workload": "walk-cells",
        "family": PR4_CELL_FAMILY.name,
        "n": PR4_CELL_N,
        "runs_per_cell": PR4_CELL_RUNS,
        "budget": PR4_CELL_BUDGET,
        "backend": "frozen",
        "per_algorithm": per_algorithm,
        "acceptance_algorithm": "random-walk",
    }


def main() -> int:
    print("bench-smoke: downsized E1/E3 (engines, frozen backend)")
    records = pr4_time_experiments()
    print(
        "bench-smoke: walk cells, "
        f"n={PR4_CELL_N} x {PR4_CELL_RUNS} runs"
    )
    speedup = pr4_measure_ensemble_speedup()
    payload = {
        "schema": SCHEMA,
        "records": records,
        "ensemble_speedup": speedup,
    }
    path = os.path.normpath(OUTPUT_PATH)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {path}")
    gate = speedup["per_algorithm"][speedup["acceptance_algorithm"]]
    ok = gate["speedup"] >= 3.0
    print(
        "acceptance: ensemble walk-cell speedup "
        f"{gate['speedup']:.1f}x ({'>= 3x ok' if ok else 'BELOW 3x'})"
    )
    return 0 if ok else 1


# ----------------------------------------------------------------------
# PR3 artifact regeneration (growth-trajectory checkpoint engine)
# ----------------------------------------------------------------------

#: Downsized end-to-end runs timed per backend (and, for E17, per mode).
SMOKE_SIZES_E17 = (500, 676, 913, 1233, 1665, 2248, 3035, 4000)
SMOKE_SIZES_E19 = (200, 400, 800, 1600)

#: The grid whose *realisation* cost the speedup block measures: E17's
#: family at a dense geometric checkpoint grid, where the independent
#: layout pays `sum(sizes)` construction work against the trajectory's
#: one pass.
GRID_FAMILY = MoriFamily(p=0.25, m=1)
GRID_SIZES = (
    2000, 2601, 3382, 4397, 5717, 7433, 9663, 12562,
    16331, 21231, 27601, 32000,
)
GRID_SEED = 17


def pr3_time_experiments() -> list:
    """Downsized E17 (both modes) and E19, per backend, timed."""
    records = []
    runs = [
        ("E17", e17_simulation_slowdown,
         {"sizes": SMOKE_SIZES_E17, "num_graphs": 2, "seed": 17},
         max(SMOKE_SIZES_E17), ("independent", "trajectory")),
        ("E19", e19_trajectory_scaling,
         {"sizes": SMOKE_SIZES_E19, "num_graphs": 2,
          "runs_per_graph": 1, "seed": 19},
         max(SMOKE_SIZES_E19), ("trajectory",)),
    ]
    for experiment_id, function, kwargs, n, modes in runs:
        for backend in ("multigraph", "frozen"):
            for mode in modes:
                extra = (
                    {} if experiment_id == "E19" else {"mode": mode}
                )
                began = time.perf_counter()
                function(**kwargs, backend=backend, **extra)
                elapsed = time.perf_counter() - began
                records.append(
                    {
                        "experiment": experiment_id,
                        "n": n,
                        "wall_seconds": round(elapsed, 4),
                        "backend": backend,
                        "mode": mode,
                    }
                )
                print(
                    f"  {experiment_id:>4} backend={backend:<10} "
                    f"mode={mode:<12} {elapsed:7.2f}s"
                )
    return records


def pr3_measure_trajectory_speedup() -> dict:
    """Grid-realisation wall clock: independent builds vs one trajectory."""
    per_backend = {}
    for backend in ("frozen", "multigraph"):
        began = time.perf_counter()
        for size in GRID_SIZES:
            snapshot_graph(
                GRID_FAMILY.build(size, seed=GRID_SEED), backend
            )
        independent_seconds = time.perf_counter() - began

        began = time.perf_counter()
        graph, marks = GRID_FAMILY.build_trajectory(
            GRID_SIZES, seed=GRID_SEED
        )
        snapshots = trajectory_snapshots(
            graph, marks, GRID_SIZES, backend
        )
        trajectory_seconds = time.perf_counter() - began
        assert len(snapshots) == len(GRID_SIZES)

        per_backend[backend] = {
            "independent_seconds": round(independent_seconds, 4),
            "trajectory_seconds": round(trajectory_seconds, 4),
            "speedup": round(
                independent_seconds / trajectory_seconds, 2
            ),
        }
        print(
            f"  {backend:<10} independent {independent_seconds:6.2f}s"
            f" | trajectory {trajectory_seconds:6.2f}s -> "
            f"{per_backend[backend]['speedup']:.1f}x"
        )
    return {
        "workload": "e17-grid-realisations",
        "family": GRID_FAMILY.name,
        "sizes": list(GRID_SIZES),
        "per_backend": per_backend,
        "acceptance_backend": "frozen",
    }


def pr3_main() -> int:
    """Regenerate BENCH_PR3.json (the checkpoint-engine point)."""
    print("bench-smoke --pr3: downsized E17/E19 (backends x modes)")
    records = pr3_time_experiments()
    print(
        "bench-smoke --pr3: E17-shaped grid realisations, "
        f"sizes {GRID_SIZES[0]}..{GRID_SIZES[-1]}"
    )
    speedup = pr3_measure_trajectory_speedup()
    payload = {
        "schema": SCHEMA,
        "records": records,
        "trajectory_speedup": speedup,
    }
    path = os.path.normpath(PR3_OUTPUT_PATH)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {path}")
    gate = speedup["per_backend"][speedup["acceptance_backend"]]
    ok = gate["speedup"] >= 2.0
    print(
        "acceptance: frozen-backend grid-realisation speedup "
        f"{gate['speedup']:.1f}x ({'>= 2x ok' if ok else 'BELOW 2x'})"
    )
    return 0 if ok else 1


# ----------------------------------------------------------------------
# PR2 artifact regeneration (kept for reproducibility of BENCH_PR2.json)
# ----------------------------------------------------------------------

PR2_EXPERIMENTS = (
    ("E1", e1_mori_weak,
     {"sizes": (200, 400), "num_graphs": 2, "runs_per_graph": 1}, 400),
    ("E3", e3_cooper_frieze,
     {"sizes": (100, 200), "num_graphs": 2, "runs_per_graph": 1}, 200),
    ("E17", e17_simulation_slowdown,
     {"sizes": (100, 200), "num_graphs": 2}, 200),
)

PR2_SPEEDUP_N = 100_000
PR2_SPEEDUP_CELLS = 12
PR2_SPEEDUP_SEED = 97


def _pr2_cell_starts(graph, target):
    rng = make_rng(substream(PR2_SPEEDUP_SEED, 0xCE11))
    starts = []
    while len(starts) < PR2_SPEEDUP_CELLS:
        start = rng.randint(1, graph.num_vertices)
        if start != target and start not in starts:
            starts.append(start)
    return starts


def _pr2_run_cells(graph, starts, target):
    for start in starts:
        result = run_search(
            FloodingSearch(), graph, start, target, seed=0
        )
        assert result.found
        distances = bfs_distances(graph, start)
        assert distances[target] >= 0


def pr2_main() -> int:
    """Regenerate BENCH_PR2.json (the FrozenGraph cell-batch point)."""
    print("bench-smoke --pr2: downsized experiments (both backends)")
    records = []
    for experiment_id, function, kwargs, n in PR2_EXPERIMENTS:
        for backend in ("multigraph", "frozen"):
            began = time.perf_counter()
            function(**kwargs, backend=backend)
            elapsed = time.perf_counter() - began
            records.append(
                {
                    "experiment": experiment_id,
                    "n": n,
                    "wall_seconds": round(elapsed, 4),
                    "backend": backend,
                }
            )
            print(
                f"  {experiment_id:>4} backend={backend:<10} "
                f"{elapsed:7.2f}s"
            )
    family = MoriFamily(p=0.5, m=1)
    print(f"  building Mori n={PR2_SPEEDUP_N} ...")
    graph = family.build(PR2_SPEEDUP_N, seed=PR2_SPEEDUP_SEED)
    target = family.theorem_target(graph)
    starts = _pr2_cell_starts(graph, target)

    began = time.perf_counter()
    for start in starts:
        rebuilt = family.build(PR2_SPEEDUP_N, seed=PR2_SPEEDUP_SEED)
        _pr2_run_cells(rebuilt, [start], target)
    rebuild_seconds = time.perf_counter() - began

    began = time.perf_counter()
    shared = family.build(PR2_SPEEDUP_N, seed=PR2_SPEEDUP_SEED)
    _pr2_run_cells(shared, starts, target)
    shared_seconds = time.perf_counter() - began

    began = time.perf_counter()
    built = family.build(PR2_SPEEDUP_N, seed=PR2_SPEEDUP_SEED)
    frozen = freeze(built)
    _pr2_run_cells(frozen, starts, target)
    frozen_seconds = time.perf_counter() - began

    speedup = {
        "workload": "e1-flooding-bfs-cells",
        "n": PR2_SPEEDUP_N,
        "cells": PR2_SPEEDUP_CELLS,
        "multigraph_rebuild_seconds": round(rebuild_seconds, 4),
        "multigraph_shared_seconds": round(shared_seconds, 4),
        "frozen_batched_seconds": round(frozen_seconds, 4),
        "speedup_vs_rebuild": round(
            rebuild_seconds / frozen_seconds, 2
        ),
        "speedup_vs_shared": round(
            shared_seconds / frozen_seconds, 2
        ),
    }
    payload = {
        "schema": SCHEMA,
        "records": records,
        "speedup": speedup,
    }
    path = os.path.normpath(PR2_OUTPUT_PATH)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {path}")
    ok = speedup["speedup_vs_rebuild"] >= 3.0
    print(
        "acceptance: speedup_vs_rebuild "
        f"{speedup['speedup_vs_rebuild']:.1f}x "
        f"({'>= 3x ok' if ok else 'BELOW 3x'})"
    )
    return 0 if ok else 1


if __name__ == "__main__":
    if "--pr2" in sys.argv[1:]:
        sys.exit(pr2_main())
    if "--pr3" in sys.argv[1:]:
        sys.exit(pr3_main())
    sys.exit(main())

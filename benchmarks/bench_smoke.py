"""Bench-trajectory smoke run: downsized experiments + backend speedup.

``make bench-smoke`` runs this script.  It does two things:

1. times a downsized E1/E3/E17 on both graph backends (the regression
   pins guarantee the numbers agree; this records how long each path
   takes), and
2. measures the headline claim of the FrozenGraph PR on the
   flooding/BFS-heavy E1 cell shape at ``n = 100_000``: a batch of
   (flooding search + BFS distance pass) cells on one Móri realisation,
   under three layouts —

   * ``multigraph-rebuild`` — the topology is regenerated for every
     cell (the "regenerate or re-traverse per trial" baseline),
   * ``multigraph-shared``  — one build, cells traverse the mutable
     graph (the pre-PR within-trial layout),
   * ``frozen-batched``     — one build, one CSR snapshot, cells run
     on the snapshot (this PR's layout).

Results land in ``BENCH_PR2.json`` at the repository root — the first
point of the benchmark trajectory.  Record schema (validated by
``tests/test_bench_schema.py``)::

    {"schema": "repro-bench/v1",
     "records": [{"experiment": "E1", "n": 400,
                  "wall_seconds": 1.23, "backend": "frozen"}, ...],
     "speedup": {"workload": "e1-flooding-bfs-cells", "n": 100000,
                 "cells": 12, "multigraph_rebuild_seconds": ...,
                 "multigraph_shared_seconds": ...,
                 "frozen_batched_seconds": ...,
                 "speedup_vs_rebuild": ..., "speedup_vs_shared": ...}}

Wall-clock numbers vary with the machine; the committed file records
the run that accompanied the PR (speedup >= 3x on both baselines).
"""

from __future__ import annotations

import json
import os
import sys
import time

from repro.analysis.diameter import bfs_distances
from repro.core.experiments import (
    e1_mori_weak,
    e3_cooper_frieze,
    e17_simulation_slowdown,
)
from repro.core.families import MoriFamily
from repro.graphs import freeze
from repro.rng import make_rng, substream
from repro.search.algorithms import FloodingSearch
from repro.search.process import run_search

SCHEMA = "repro-bench/v1"
OUTPUT_PATH = os.path.join(
    os.path.dirname(__file__), os.pardir, "BENCH_PR2.json"
)

#: Downsized experiment grids (seconds-scale, both backends).
SMOKE_EXPERIMENTS = (
    ("E1", e1_mori_weak,
     {"sizes": (200, 400), "num_graphs": 2, "runs_per_graph": 1}, 400),
    ("E3", e3_cooper_frieze,
     {"sizes": (100, 200), "num_graphs": 2, "runs_per_graph": 1}, 200),
    ("E17", e17_simulation_slowdown,
     {"sizes": (100, 200), "num_graphs": 2}, 200),
)

SPEEDUP_N = 100_000
SPEEDUP_CELLS = 12
SPEEDUP_SEED = 97


def time_experiments() -> list:
    """Run each downsized experiment on both backends, timed."""
    records = []
    for experiment_id, function, kwargs, n in SMOKE_EXPERIMENTS:
        for backend in ("multigraph", "frozen"):
            began = time.perf_counter()
            function(**kwargs, backend=backend)
            elapsed = time.perf_counter() - began
            records.append(
                {
                    "experiment": experiment_id,
                    "n": n,
                    "wall_seconds": round(elapsed, 4),
                    "backend": backend,
                }
            )
            print(
                f"  {experiment_id:>4} backend={backend:<10} "
                f"{elapsed:7.2f}s"
            )
    return records


def _cell_starts(family, graph, target):
    """Distinct pinned start vertices for the speedup cells."""
    rng = make_rng(substream(SPEEDUP_SEED, 0xCE11))
    starts = []
    while len(starts) < SPEEDUP_CELLS:
        start = rng.randint(1, graph.num_vertices)
        if start != target and start not in starts:
            starts.append(start)
    return starts


def _run_cells(graph, starts, target):
    """One flooding search + one BFS distance pass per cell."""
    for start in starts:
        result = run_search(
            FloodingSearch(), graph, start, target, seed=0
        )
        assert result.found
        distances = bfs_distances(graph, start)
        assert distances[target] >= 0


def measure_speedup() -> dict:
    """The flooding/BFS cell batch at n=100k under the three layouts."""
    family = MoriFamily(p=0.5, m=1)
    print(f"  building Mori n={SPEEDUP_N} ...")
    graph = family.build(SPEEDUP_N, seed=SPEEDUP_SEED)
    target = family.theorem_target(graph)
    starts = _cell_starts(family, graph, target)

    # Layout 1: regenerate the topology for every cell.
    began = time.perf_counter()
    for start in starts:
        rebuilt = family.build(SPEEDUP_N, seed=SPEEDUP_SEED)
        _run_cells(rebuilt, [start], target)
    rebuild_seconds = time.perf_counter() - began

    # Layout 2: one build, cells on the mutable graph.
    began = time.perf_counter()
    shared = family.build(SPEEDUP_N, seed=SPEEDUP_SEED)
    _run_cells(shared, starts, target)
    shared_seconds = time.perf_counter() - began

    # Layout 3: one build, one snapshot, cells on the snapshot.
    began = time.perf_counter()
    built = family.build(SPEEDUP_N, seed=SPEEDUP_SEED)
    frozen = freeze(built)
    _run_cells(frozen, starts, target)
    frozen_seconds = time.perf_counter() - began

    summary = {
        "workload": "e1-flooding-bfs-cells",
        "n": SPEEDUP_N,
        "cells": SPEEDUP_CELLS,
        "multigraph_rebuild_seconds": round(rebuild_seconds, 4),
        "multigraph_shared_seconds": round(shared_seconds, 4),
        "frozen_batched_seconds": round(frozen_seconds, 4),
        "speedup_vs_rebuild": round(
            rebuild_seconds / frozen_seconds, 2
        ),
        "speedup_vs_shared": round(
            shared_seconds / frozen_seconds, 2
        ),
    }
    print(
        f"  rebuild {rebuild_seconds:6.2f}s | shared "
        f"{shared_seconds:6.2f}s | frozen {frozen_seconds:6.2f}s"
        f" -> {summary['speedup_vs_rebuild']:.1f}x / "
        f"{summary['speedup_vs_shared']:.1f}x"
    )
    return summary


def main() -> int:
    print("bench-smoke: downsized experiments (both backends)")
    records = time_experiments()
    print(f"bench-smoke: flooding/BFS cell batch at n={SPEEDUP_N}")
    speedup = measure_speedup()
    payload = {
        "schema": SCHEMA,
        "records": records,
        "speedup": speedup,
    }
    path = os.path.normpath(OUTPUT_PATH)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {path}")
    ok = speedup["speedup_vs_rebuild"] >= 3.0
    print(
        "acceptance: speedup_vs_rebuild "
        f"{speedup['speedup_vs_rebuild']:.1f}x "
        f"({'>= 3x ok' if ok else 'BELOW 3x'})"
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())

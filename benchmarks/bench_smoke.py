"""Bench-trajectory smoke run: the coalesced-serving point.

``make bench-smoke`` runs this script.  It records the PR's point in
``BENCH_PR10.json`` at the repository root: the PR 9 service-load
query stream served three ways by the same daemon code —

1. **per-query dispatch** (``batch_window=0``): every HTTP request is
   its own pool round-trip, the PR 9 path;
2. **coalesced dispatch**: concurrent queries for one graph batch
   over a 5 ms window into single ensemble-engine worker calls; the
   acceptance gate is >= 3x the per-query sustained qps on the same
   stream, plus an open-loop arrival probe recording latency at a
   fixed offered rate;
3. a **cache-warm pass**: the same stream re-served from the
   hot-cell answer cache, with the gate that the hit-path p50 sits
   below the pool-dispatch p50.

Every arm's answers are asserted bit-identical to the batch path
(``batched_search_trial``) before any number is recorded.

Record schema (validated by ``tests/test_bench_schema.py``)::

    {"schema": "repro-bench/v1",
     "records": [{"experiment": "E1", "n": 2000,
                  "wall_seconds": ..., "backend": "frozen",
                  "dispatch": "per-query" | "coalesced"
                              | "cache-warm"}, ...],
     "serving_speedup": {
         "workload": "service-query-coalescing",
         "queries": ..., "clients": ..., "batch_window_ms": 5.0,
         "per_dispatch": {
             "per-query": {"qps": ..., "p50_ms": ..., ...},
             "coalesced": {..., "mean_batch": ...},
             "cache-warm": {..., "cache_hits": ...},
             "pool-cold-fill": {...}},
         "open_loop": {"offered_qps": ..., "p50_ms": ..., ...},
         "qps_speedup_vs_per_query": ...,
         "cache_p50_below_pool_p50": true,
         "outputs_identical": true,
         "acceptance_baseline": "per-query",
         "service_stats": {...}}}

Wall-clock numbers vary with the machine; the committed file records
the run that accompanied the PR.  Earlier trajectory points
regenerate with the per-PR flags (table-driven in ``_PR_FLAGS``):
``--pr9`` (shared-memory dispatch + per-query service load,
``BENCH_PR9.json``), ``--pr8`` (dynamic-graph overlay), ``--pr7``
(pluggable trial store), ``--pr6`` (vectorized generation + graph
corpus), ``--pr5`` (declarative registry), ``--pr4``
(walker-ensemble engine), ``--pr3`` (growth-trajectory checkpoint
engine) and ``--pr2`` (FrozenGraph cell batching).
"""

from __future__ import annotations

import json
import os
import shutil
import sys
import tempfile
import time

from repro.analysis.diameter import bfs_distances
from repro.core.experiments import (
    e1_mori_weak,
    e3_cooper_frieze,
    e17_simulation_slowdown,
    e19_trajectory_scaling,
    e21_churn_search,
)
from repro.core.families import (
    BarabasiAlbertFamily,
    CooperFriezeFamily,
    MoriFamily,
)
from repro.core.trials import snapshot_graph, trajectory_snapshots
from repro.graphs import freeze
from repro.graphs.churn import ChurnProcess
from repro.graphs.delta import graph_digest
from repro.rng import make_rng, run_substream, substream
from repro.search.algorithms import (
    FloodingSearch,
    RandomWalkSearch,
    RestartingWalkSearch,
    SelfAvoidingWalkSearch,
)
from repro.search.ensemble import run_ensemble
from repro.search.process import run_search

SCHEMA = "repro-bench/v1"
_ROOT = os.path.join(os.path.dirname(__file__), os.pardir)
PR10_OUTPUT_PATH = os.path.join(_ROOT, "BENCH_PR10.json")
PR9_OUTPUT_PATH = os.path.join(_ROOT, "BENCH_PR9.json")
PR8_OUTPUT_PATH = os.path.join(_ROOT, "BENCH_PR8.json")
PR7_OUTPUT_PATH = os.path.join(_ROOT, "BENCH_PR7.json")
PR6_OUTPUT_PATH = os.path.join(_ROOT, "BENCH_PR6.json")
PR5_OUTPUT_PATH = os.path.join(_ROOT, "BENCH_PR5.json")
PR4_OUTPUT_PATH = os.path.join(_ROOT, "BENCH_PR4.json")
PR3_OUTPUT_PATH = os.path.join(_ROOT, "BENCH_PR3.json")
PR2_OUTPUT_PATH = os.path.join(_ROOT, "BENCH_PR2.json")


# ----------------------------------------------------------------------
# PR9: shared-memory graph workers + search-as-a-service
# ----------------------------------------------------------------------

#: The dispatch workload: one Móri graph big enough that the CSR
#: payload dominates per-spec cost, searched by many small specs.
#: Each cell gets a small explicit budget so the *work* per spec is
#: trivial and the measured gap is pure dispatch — serialize the
#: graph into every spec (baseline) vs attach a published segment
#: once per worker (shared memory).
PR9_FAMILY = MoriFamily(p=0.5, m=2)
PR9_N = 20_000
PR9_SEED = 1
PR9_SPECS = 32
PR9_CELLS_PER_SPEC = 4
PR9_BUDGET = 64
PR9_JOBS = 4
PR9_PORTFOLIO = "adamic"

#: The serving workload: a small grid behind one daemon, hammered by
#: a deterministic round-robin query stream from concurrent clients.
PR9_SERVICE_SIZES = (2_000,)
PR9_SERVICE_SEEDS = (1, 2)
PR9_SERVICE_QUERIES = 200
PR9_SERVICE_CLIENTS = 4
PR9_SERVICE_WORKERS = 4


def _pr9_cells(spec_index: int) -> list:
    """The cells of one dispatch spec (distinct run indices)."""
    from repro.service.core import portfolio_algorithms

    algorithms = portfolio_algorithms(PR9_PORTFOLIO)
    base = spec_index * PR9_CELLS_PER_SPEC
    return [
        {
            "algorithm": algorithms[(base + i) % len(algorithms)],
            "run_index": base + i,
        }
        for i in range(PR9_CELLS_PER_SPEC)
    ]


def pr9_measure_shm_speedup() -> dict:
    """Time pickle-per-spec vs shared-memory dispatch; assert identity."""
    from repro.core.trials import build_graph_snapshot, choose_start
    from repro.graphs.shm import publish_graph
    from repro.runner import TrialSpec, run_trials, trial_ref
    from repro.service.core import (
        attach_shared_graph,
        graph_payload,
        payload_search_trial,
        shm_search_trial,
    )

    snapshot = build_graph_snapshot(
        PR9_FAMILY, PR9_N, PR9_SEED, "frozen", "serial"
    )
    target = PR9_FAMILY.theorem_target(snapshot)
    start = choose_start(
        PR9_FAMILY, snapshot, target, "default", PR9_SEED
    )
    common = {
        "portfolio": PR9_PORTFOLIO,
        "start": start,
        "target": target,
        "budget": PR9_BUDGET,
    }
    payload = graph_payload(snapshot)
    pickle_specs = [
        TrialSpec(
            "E1",
            trial_ref(payload_search_trial),
            params={"graph": payload, "cells": _pr9_cells(i), **common},
            seed=PR9_SEED,
        )
        for i in range(PR9_SPECS)
    ]
    segment = publish_graph(snapshot)
    try:
        shm_specs = [
            TrialSpec(
                "E1",
                trial_ref(shm_search_trial),
                params={
                    "shm": segment.name,
                    "cells": _pr9_cells(i),
                    **common,
                },
                seed=PR9_SEED,
            )
            for i in range(PR9_SPECS)
        ]
        began = time.perf_counter()
        pickle_results = run_trials(pickle_specs, jobs=PR9_JOBS)
        pickle_seconds = time.perf_counter() - began
        began = time.perf_counter()
        shm_results = run_trials(
            shm_specs,
            jobs=PR9_JOBS,
            initializer=attach_shared_graph,
            initargs=(segment.name,),
        )
        shm_seconds = time.perf_counter() - began
    finally:
        segment.close()
        segment.unlink()
    if (
        [result.value for result in pickle_results]
        != [result.value for result in shm_results]
    ):
        raise SystemExit(
            "shared-memory and pickle-per-spec dispatch diverged"
        )
    speedup = pickle_seconds / shm_seconds
    return {
        "workload": "per-spec-graph-dispatch",
        "family": f"mori(p={PR9_FAMILY.p}, m={PR9_FAMILY.m})",
        "n": PR9_N,
        "specs": PR9_SPECS,
        "cells_per_spec": PR9_CELLS_PER_SPEC,
        "budget": PR9_BUDGET,
        "jobs": PR9_JOBS,
        "portfolio": PR9_PORTFOLIO,
        "per_dispatch": {
            "pickle-per-spec": {"seconds": round(pickle_seconds, 4)},
            "shared-memory": {"seconds": round(shm_seconds, 4)},
        },
        "speedup_vs_pickle": round(speedup, 2),
        "outputs_identical": True,
        "acceptance_baseline": "pickle-per-spec",
    }


def pr9_measure_service_load() -> dict:
    """Serve a query stream under concurrent clients; verify vs batch."""
    from repro.core.trials import batched_search_trial, family_spec
    from repro.service import SearchService, build_grid_entries, run_load
    from repro.service.core import portfolio_algorithms
    from repro.service.loadgen import build_queries

    entries = build_grid_entries(
        PR9_FAMILY, PR9_SERVICE_SIZES, PR9_SERVICE_SEEDS
    )
    algorithms = list(portfolio_algorithms(PR9_PORTFOLIO))
    # batch_window=0 / cache_size=0 / nodelay=False pins the PR 9
    # measurement to the per-query dispatch path and the PR 9 wire
    # behavior after PR 10 made coalescing + TCP_NODELAY the default.
    with SearchService(
        entries,
        portfolio=PR9_PORTFOLIO,
        workers=PR9_SERVICE_WORKERS,
        batch_window=0.0,
        cache_size=0,
        nodelay=False,
    ) as service:
        catalog = service.handle_graphs()
        queries = build_queries(
            catalog, algorithms, PR9_SERVICE_QUERIES
        )
        responses, stats = run_load(
            service.host,
            service.port,
            queries,
            clients=PR9_SERVICE_CLIENTS,
        )
    by_graph = {}
    for query, response in zip(queries, responses):
        by_graph.setdefault(query["graph"], []).append(
            (query, response)
        )
    spec = family_spec(PR9_FAMILY)
    info = {entry["id"]: entry for entry in catalog}
    for graph_id, pairs in by_graph.items():
        expected = batched_search_trial(
            family=spec,
            size=info[graph_id]["n"],
            portfolio=PR9_PORTFOLIO,
            cells=[
                {
                    "algorithm": query["algorithm"],
                    "run_index": query["run_index"],
                }
                for query, _ in pairs
            ],
            seed=info[graph_id]["seed"],
        )
        if [response for _, response in pairs] != expected:
            raise SystemExit(
                f"served answers diverged from the batch path on "
                f"{graph_id}"
            )
    return {
        "workload": "service-query-load",
        "family": f"mori(p={PR9_FAMILY.p}, m={PR9_FAMILY.m})",
        "sizes": list(PR9_SERVICE_SIZES),
        "graphs": len(catalog),
        "workers": PR9_SERVICE_WORKERS,
        "queries": stats["queries"],
        "clients": stats["clients"],
        "wall_seconds": round(stats["wall_s"], 4),
        "qps": round(stats["qps"], 2),
        "mean_ms": round(stats["mean_ms"], 3),
        "p50_ms": round(stats["p50_ms"], 3),
        "p99_ms": round(stats["p99_ms"], 3),
        "batch_identical": True,
    }


def pr9_main() -> int:
    """Write BENCH_PR9.json (shared-memory dispatch + service load)."""
    print(
        "bench-smoke: shm vs pickle-per-spec dispatch, "
        f"n={PR9_N:,}, {PR9_SPECS} specs x {PR9_CELLS_PER_SPEC} "
        f"cells, jobs={PR9_JOBS}"
    )
    shm_block = pr9_measure_shm_speedup()
    print(
        "bench-smoke: service load, "
        f"{PR9_SERVICE_QUERIES} queries / "
        f"{PR9_SERVICE_CLIENTS} clients"
    )
    service_block = pr9_measure_service_load()
    records = [
        {
            "experiment": "E1",
            "n": PR9_N,
            "wall_seconds": (
                shm_block["per_dispatch"][dispatch]["seconds"]
            ),
            "backend": "frozen",
            "dispatch": dispatch,
        }
        for dispatch in ("pickle-per-spec", "shared-memory")
    ]
    records.append(
        {
            "experiment": "E1",
            "n": max(PR9_SERVICE_SIZES),
            "wall_seconds": service_block["wall_seconds"],
            "backend": "frozen",
            "dispatch": "service",
        }
    )
    payload = {
        "schema": SCHEMA,
        "records": records,
        "shm_speedup": shm_block,
        "service_load": service_block,
    }
    path = os.path.normpath(PR9_OUTPUT_PATH)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {path}")
    ok = shm_block["speedup_vs_pickle"] >= 2.0
    print(
        "acceptance: shared-memory dispatch "
        f"{shm_block['speedup_vs_pickle']:.1f}x vs pickle-per-spec "
        f"({'>= 2x ok' if ok else 'BELOW 2x'}), outputs identical; "
        f"service {service_block['qps']:.0f} qps, "
        f"p50 {service_block['p50_ms']:.1f} ms / "
        f"p99 {service_block['p99_ms']:.1f} ms "
        f"under {service_block['clients']} clients"
    )
    return 0 if ok else 1


# ----------------------------------------------------------------------
# PR10: query coalescing + hot-cell answer cache in the service
# ----------------------------------------------------------------------

#: The serving-speedup workload: the PR 9 service-load stream shape
#: (same family and seeds, same ``build_queries`` mix, same 4-client
#: closed loop) on a size where serving overhead — not raw cell
#: compute — decides throughput.  Four arms on identical queries:
#:
#: * ``per-query`` — the PR 9 per-query path **as it shipped**:
#:   one ``pool.submit`` round-trip per request and the PR 9 wire
#:   behavior (Nagle on, so the daemon's two-send reply stalls behind
#:   delayed ACK).  This is the acceptance baseline — the ~59 qps /
#:   p50 56 ms configuration BENCH_PR9.json recorded.
#: * ``per-query-nodelay`` — the same per-query dispatch with only
#:   the TCP_NODELAY fix applied, reported so the speedup decomposes
#:   honestly into its wire and dispatch components.
#: * ``coalesced`` — the full batched dispatch layer (short window,
#:   ensemble batches, TCP_NODELAY).
#: * ``cache-warm`` — the same stream re-served from the hot-cell
#:   answer cache.
PR10_SERVICE_SIZES = (600,)
PR10_SERVICE_CLIENTS = 4
PR10_BATCH_WINDOW = 0.002
PR10_BATCH_MAX = 64
PR10_CACHE_SIZE = 2_048
#: The open-loop overload probe: queries released on a fixed schedule
#: well past capacity (not gated on completions) from a deep client
#: fleet.  A closed loop at the gate's concurrency can never queue
#: more than its client count, which hides what coalescing does to a
#: real backlog — under saturation the dispatcher drains the queue in
#: deep batches and the tail latency shows it.
PR10_OPEN_QPS = 2_000.0
PR10_OPEN_CLIENTS = 64


def _pr10_expected(queries, catalog):
    """The batch-path oracle answers, in query order."""
    from repro.core.trials import batched_search_trial, family_spec

    spec = family_spec(PR9_FAMILY)
    info = {entry["id"]: entry for entry in catalog}
    by_graph = {}
    for index, query in enumerate(queries):
        by_graph.setdefault(query["graph"], []).append(index)
    expected = [None] * len(queries)
    for graph_id, indices in by_graph.items():
        answers = batched_search_trial(
            family=spec,
            size=info[graph_id]["n"],
            portfolio=PR9_PORTFOLIO,
            cells=[
                {
                    "algorithm": queries[index]["algorithm"],
                    "run_index": queries[index]["run_index"],
                }
                for index in indices
            ],
            seed=info[graph_id]["seed"],
        )
        for index, answer in zip(indices, answers):
            expected[index] = answer
    return expected


def pr10_measure_serving() -> dict:
    """Serving arms over one query stream; verify every answer."""
    from repro.service import SearchService, build_grid_entries, run_load
    from repro.service.core import portfolio_algorithms
    from repro.service.loadgen import build_queries

    algorithms = list(portfolio_algorithms(PR9_PORTFOLIO))

    def serve(**kwargs):
        return SearchService(
            build_grid_entries(
                PR9_FAMILY, PR10_SERVICE_SIZES, PR9_SERVICE_SEEDS
            ),
            portfolio=PR9_PORTFOLIO,
            workers=PR9_SERVICE_WORKERS,
            **kwargs,
        )

    def pack(stats):
        return {
            "wall_seconds": round(stats["wall_s"], 4),
            "qps": round(stats["qps"], 2),
            "mean_ms": round(stats["mean_ms"], 3),
            "p50_ms": round(stats["p50_ms"], 3),
            "p90_ms": round(stats["p90_ms"], 3),
            "p99_ms": round(stats["p99_ms"], 3),
        }

    expected = None
    queries = None

    def load(service, clients=PR10_SERVICE_CLIENTS, **kwargs):
        nonlocal expected, queries
        catalog = service.handle_graphs()
        if queries is None:
            queries = build_queries(
                catalog, algorithms, PR9_SERVICE_QUERIES
            )
            expected = _pr10_expected(queries, catalog)
        responses, stats = run_load(
            service.host,
            service.port,
            queries,
            clients=clients,
            **kwargs,
        )
        if responses != expected:
            raise SystemExit(
                "served answers diverged from the batch path"
            )
        return stats

    # Arm 1: the PR 9 per-query path as it shipped — one pool trip
    # per request, Nagle'd two-send replies (the acceptance baseline).
    with serve(
        batch_window=0.0, cache_size=0, nodelay=False
    ) as service:
        per_query = pack(load(service))

    # Arm 2: per-query dispatch with only the wire fix, so the
    # speedup decomposes into wire vs dispatch contributions.
    with serve(batch_window=0.0, cache_size=0) as service:
        per_query_nodelay = pack(load(service))

    # Arm 3: coalesced dispatch, cache off so every query pays the
    # pool; then the open-loop overload probe on the same daemon —
    # queries offered well past capacity build a real backlog, which
    # is where the dispatcher's deep batches (and their effect on the
    # tail) become visible.
    with serve(
        batch_window=PR10_BATCH_WINDOW,
        batch_max=PR10_BATCH_MAX,
        cache_size=0,
    ) as service:
        coalesced = pack(load(service))
        snapshot = service.handle_stats()
        batches = snapshot["batches"]
        coalesced["batches"] = batches["count"]
        coalesced["mean_batch"] = batches["mean_size"]
        open_stats = load(
            service,
            clients=PR10_OPEN_CLIENTS,
            arrival=PR10_OPEN_QPS,
        )
        open_after = service.handle_stats()["batches"]
        open_loop = pack(open_stats)
        open_loop["offered_qps"] = PR10_OPEN_QPS
        open_loop["clients"] = PR10_OPEN_CLIENTS
        open_loop["batches"] = (
            open_after["count"] - batches["count"]
        )
        open_loop["mean_batch"] = round(
            (open_after["queries"] - batches["queries"])
            / max(1, open_loop["batches"]),
            3,
        )

    # The per-query arm under the same open-loop overload: same
    # stream, same fleet, no coalescing — the tail comparison.
    with serve(batch_window=0.0, cache_size=0) as service:
        open_per_query = pack(
            load(
                service,
                clients=PR10_OPEN_CLIENTS,
                arrival=PR10_OPEN_QPS,
            )
        )
        open_per_query["offered_qps"] = PR10_OPEN_QPS
        open_per_query["clients"] = PR10_OPEN_CLIENTS

    # Arm 4: cold fill then cache-warm re-serve of the same stream.
    with serve(
        batch_window=PR10_BATCH_WINDOW,
        batch_max=PR10_BATCH_MAX,
        cache_size=PR10_CACHE_SIZE,
    ) as service:
        cold = pack(load(service))
        warm = pack(load(service))
        cache_snapshot = service.handle_stats()["cache"]
        warm["cache_hits"] = cache_snapshot["hits"]
        engine = service.engine

    return {
        "workload": "service-query-coalescing",
        "family": f"mori(p={PR9_FAMILY.p}, m={PR9_FAMILY.m})",
        "sizes": list(PR10_SERVICE_SIZES),
        "graphs": len(PR10_SERVICE_SIZES) * len(PR9_SERVICE_SEEDS),
        "workers": PR9_SERVICE_WORKERS,
        "queries": PR9_SERVICE_QUERIES,
        "clients": PR10_SERVICE_CLIENTS,
        "batch_window_ms": PR10_BATCH_WINDOW * 1000.0,
        "batch_max": PR10_BATCH_MAX,
        "cache_size": PR10_CACHE_SIZE,
        "engine": engine,
        "per_dispatch": {
            "per-query": per_query,
            "per-query-nodelay": per_query_nodelay,
            "coalesced": coalesced,
            "cache-warm": warm,
            "pool-cold-fill": cold,
        },
        "open_loop": {
            "coalesced": open_loop,
            "per-query": open_per_query,
        },
        "qps_speedup_vs_per_query": round(
            coalesced["qps"] / per_query["qps"], 2
        ),
        "cache_p50_below_pool_p50": (
            warm["p50_ms"] < cold["p50_ms"]
        ),
        "outputs_identical": True,
        "acceptance_baseline": (
            "per-query (the PR 9 configuration: unbatched dispatch, "
            "PR 9 wire behavior)"
        ),
        "service_stats": snapshot,
    }


def main() -> int:
    """Write BENCH_PR10.json (coalesced serving vs per-query)."""
    print(
        "bench-smoke: serving arms (PR 9 per-query vs coalesced vs "
        f"cache-warm), {PR9_SERVICE_QUERIES} queries / "
        f"{PR10_SERVICE_CLIENTS} clients, "
        f"window {PR10_BATCH_WINDOW * 1000:.0f}ms"
    )
    block = pr10_measure_serving()
    records = [
        {
            "experiment": "E1",
            "n": max(PR10_SERVICE_SIZES),
            "wall_seconds": (
                block["per_dispatch"][dispatch]["wall_seconds"]
            ),
            "backend": "frozen",
            "dispatch": dispatch,
        }
        for dispatch in ("per-query", "coalesced", "cache-warm")
    ]
    payload = {
        "schema": SCHEMA,
        "records": records,
        "serving_speedup": block,
    }
    path = os.path.normpath(PR10_OUTPUT_PATH)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {path}")
    per_dispatch = block["per_dispatch"]
    speedup_ok = block["qps_speedup_vs_per_query"] >= 3.0
    cache_ok = block["cache_p50_below_pool_p50"]
    open_loop = block["open_loop"]
    print(
        "acceptance: coalesced "
        f"{per_dispatch['coalesced']['qps']:.0f} qps vs PR 9 "
        f"per-query {per_dispatch['per-query']['qps']:.0f} qps "
        f"({block['qps_speedup_vs_per_query']:.1f}x, "
        f"{'>= 3x ok' if speedup_ok else 'BELOW 3x'}; "
        "nodelay-only per-query "
        f"{per_dispatch['per-query-nodelay']['qps']:.0f} qps); "
        "cache-warm p50 "
        f"{per_dispatch['cache-warm']['p50_ms']:.2f} ms vs pool p50 "
        f"{per_dispatch['pool-cold-fill']['p50_ms']:.2f} ms "
        f"({'ok' if cache_ok else 'NOT BELOW'}); outputs identical"
    )
    print(
        "open-loop overload "
        f"({open_loop['coalesced']['offered_qps']:.0f} qps offered / "
        f"{open_loop['coalesced']['clients']} clients): coalesced "
        f"{open_loop['coalesced']['qps']:.0f} qps, mean batch "
        f"{open_loop['coalesced']['mean_batch']:.1f}, p99 "
        f"{open_loop['coalesced']['p99_ms']:.0f} ms vs per-query "
        f"{open_loop['per-query']['qps']:.0f} qps, p99 "
        f"{open_loop['per-query']['p99_ms']:.0f} ms"
    )
    return 0 if speedup_ok and cache_ok else 1


# ----------------------------------------------------------------------
# PR8: dynamic-graph overlay (churn, deletion, search under change)
# ----------------------------------------------------------------------

#: The overlay-speedup workload: a Móri graph at search scale (the
#: same family/size as the PR4 gate cell), churned for a fixed number
#: of population-preserving steps, then searched by the whole walk
#: family.  The step count is set by the *baseline*: each
#: rebuild-per-step pays a full O(n + m) compaction, so a handful of
#: steps already dominates its wall clock, while the overlay's
#: O(log n) steps stay essentially free at any count.
PR8_FAMILY = MoriFamily(p=0.5, m=2)
PR8_N = 100_000
PR8_CHURN_STEPS = 25
PR8_CHURN_BIAS = "uniform"
PR8_SEED = 88
PR8_SEARCH_BUDGET = 2_000
PR8_SEARCH_RUNS = 4
PR8_SEARCH_ALGORITHMS = (
    RandomWalkSearch(),
    SelfAvoidingWalkSearch(),
    RestartingWalkSearch(restart_prob=0.1),
)

#: E21's downsized grid for the per-engine end-to-end timing (run
#: through the registry, exactly as ``repro run E21 --engine ...``).
PR8_E21_OVERRIDES = {
    "size": 2_000,
    "churn_rates": (0.0, 0.1),
    "num_graphs": 2,
    "runs_per_graph": 2,
}


def _pr8_searches(graph, seed: int) -> int:
    """The search phase; returns total oracle requests spent.

    Start and target are picked by *rank* among the live vertices, so
    they name the same physical vertex on the overlay and on any
    order-preserving compaction of it; walk decisions only consume
    neighbor lists (whose relative order compaction preserves) and
    the per-run rng, so the request counts of the two strategies must
    agree exactly — checked by the caller.
    """
    live = list(graph.vertices())
    start = live[len(live) // 2]
    target = live[-1]
    requests = 0
    for index, algorithm in enumerate(PR8_SEARCH_ALGORITHMS):
        for run in range(PR8_SEARCH_RUNS):
            outcome = run_search(
                algorithm,
                graph,
                start,
                target,
                budget=PR8_SEARCH_BUDGET,
                seed=substream(
                    PR8_SEED, index * PR8_SEARCH_RUNS + run
                ),
            )
            requests += outcome.requests
    return requests


def pr8_measure_overlay_speedup() -> dict:
    """Churn + search, overlay vs rebuild-per-step, identical output.

    Both strategies replay the *same* churn trajectory (the rank-based
    sampler makes it compaction-invariant) and run the same searches;
    the baseline additionally compacts into a fresh FrozenGraph after
    every step (``resnapshot_every=1``) — the cost a system without
    the overlay layer pays to keep a searchable snapshot current.
    Raises if the two final graphs differ by digest or the searches
    differ in spent requests: the speedup claim is only worth
    recording for identical results.
    """
    base = PR8_FAMILY.build_frozen(PR8_N, seed=PR8_SEED)
    per_strategy = {}
    digests = {}
    for strategy, every in (("overlay", 0), ("rebuild-per-step", 1)):
        process = ChurnProcess(
            PR8_FAMILY,
            base,
            churn_bias=PR8_CHURN_BIAS,
            resnapshot_every=every,
            seed=PR8_SEED,
        )
        began = time.perf_counter()
        graph = process.run(PR8_CHURN_STEPS)
        churn_seconds = time.perf_counter() - began

        began = time.perf_counter()
        requests = _pr8_searches(graph, PR8_SEED)
        search_seconds = time.perf_counter() - began

        digests[strategy] = graph_digest(graph.resnapshot())
        per_strategy[strategy] = {
            "churn_seconds": round(churn_seconds, 4),
            "search_seconds": round(search_seconds, 4),
            "total_seconds": round(churn_seconds + search_seconds, 4),
            "search_requests": requests,
        }
    if digests["overlay"] != digests["rebuild-per-step"]:
        raise SystemExit(
            "overlay and rebuild-per-step diverged: "
            f"{digests['overlay']} != {digests['rebuild-per-step']}"
        )
    requests_equal = (
        per_strategy["overlay"]["search_requests"]
        == per_strategy["rebuild-per-step"]["search_requests"]
    )
    if not requests_equal:
        raise SystemExit(
            "overlay and rebuild-per-step searches spent different "
            "request counts"
        )
    speedup = (
        per_strategy["rebuild-per-step"]["total_seconds"]
        / per_strategy["overlay"]["total_seconds"]
    )
    return {
        "workload": "churn-then-search",
        "family": f"mori(p={PR8_FAMILY.p}, m={PR8_FAMILY.m})",
        "n": PR8_N,
        "churn_steps": PR8_CHURN_STEPS,
        "churn_bias": PR8_CHURN_BIAS,
        "search_budget": PR8_SEARCH_BUDGET,
        "search_runs": PR8_SEARCH_RUNS * len(PR8_SEARCH_ALGORITHMS),
        "per_strategy": per_strategy,
        "speedup_vs_rebuild": round(speedup, 2),
        "graph_digest": digests["overlay"],
        "digests_equal": True,
        "requests_equal": True,
        "acceptance_baseline": "rebuild-per-step",
    }


def pr8_time_e21_per_engine() -> list:
    """Downsized E21 per declared engine, timed end to end."""
    records = []
    derived = {}
    for engine in ("serial", "ensemble"):
        began = time.perf_counter()
        result = e21_churn_search(**PR8_E21_OVERRIDES, engine=engine)
        elapsed = time.perf_counter() - began
        derived[engine] = result.derived
        records.append(
            {
                "experiment": "E21",
                "n": PR8_E21_OVERRIDES["size"],
                "wall_seconds": round(elapsed, 4),
                "backend": "frozen",
                "engine": engine,
                "strategy": "overlay",
            }
        )
    if derived["serial"] != derived["ensemble"]:
        raise SystemExit("E21: engines diverged at bench scale")
    return records


def pr8_main() -> int:
    """Write BENCH_PR8.json (the dynamic-graph overlay point)."""
    print(
        "bench-smoke: overlay vs rebuild-per-step, "
        f"n={PR8_N:,}, {PR8_CHURN_STEPS} churn steps"
    )
    overlay_block = pr8_measure_overlay_speedup()
    print(
        "bench-smoke: downsized E21 per engine, via the registry"
    )
    records = pr8_time_e21_per_engine()
    for strategy, numbers in overlay_block["per_strategy"].items():
        records.append(
            {
                "experiment": "E21",
                "n": PR8_N,
                "wall_seconds": numbers["total_seconds"],
                "backend": "frozen",
                "engine": "serial",
                "strategy": strategy,
            }
        )
    payload = {
        "schema": SCHEMA,
        "records": records,
        "overlay_speedup": overlay_block,
    }
    path = os.path.normpath(PR8_OUTPUT_PATH)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {path}")
    ok = overlay_block["speedup_vs_rebuild"] >= 3.0
    print(
        "acceptance: overlay "
        f"{overlay_block['speedup_vs_rebuild']:.1f}x vs "
        f"rebuild-per-step ({'>= 3x ok' if ok else 'BELOW 3x'}), "
        "digests equal, search requests equal"
    )
    return 0 if ok else 1


# ----------------------------------------------------------------------
# PR7: pluggable trial store (json-files baseline vs sqlite)
# ----------------------------------------------------------------------

#: Store-speedup block size: enough entries that the json tree costs
#: 10^5 inodes and the replay scan is I/O-bound, small enough to run
#: in about a minute.
PR7_STORE_ENTRIES = 100_000
PR7_STORE_BACKENDS = ("json-files", "sqlite")

#: Base of the bench specs' seed range — substream-scale (beyond 64
#: bits), like the seeds :func:`repro.rng.substream` actually derives.
PR7_STORE_SEED_BASE = 123_456_789_012_345_678_901_234_567_890

#: E17's downsized grid for the cold/warm per-store-backend timing
#: (run through the registry, exactly as ``repro run E17 --cache-dir
#: ... --store-backend ...``).
PR7_E17_OVERRIDES = {"sizes": (500, 1000, 2000), "num_graphs": 2}


def _pr7_specs() -> list:
    """10^5 specs shaped like a real search-cost sweep.

    Realistic payloads matter: the params dict is echoed into every
    json record, so a toy two-key dict would understate the baseline's
    parse cost, while the sqlite replay only ever decodes the small
    value column.
    """
    from repro.runner import TrialSpec

    trial = "repro.core.trials:search_cost_graph_trial"
    return [
        TrialSpec(
            experiment_id="E17",
            trial=trial,
            params={
                "family": "mori", "n": 4096, "m": 2, "p": 0.5,
                "algorithm": "high-degree-weak", "oracle": "weak",
                "max_requests": 16_384, "backend": "frozen",
                "generator": "vectorized", "targets": "theorem",
                "start": "uniform", "graph_index": index % 64,
            },
            seed=PR7_STORE_SEED_BASE + index,
        )
        for index in range(PR7_STORE_ENTRIES)
    ]


def pr7_measure_store_speedup() -> dict:
    """Per-backend fill + warm-replay wall clock, plus a verified
    in-bench migration of the populated json tree.

    ``spec.key()`` is warmed outside every timed region: the sha256
    params hash costs the same through either backend, and leaving it
    in would dilute the comparison the gate is about.  Raises (a real
    ``SystemExit``, so ``python -O`` cannot strip it) if any backend
    misses on replay or the migration verify finds a non-identical
    value.
    """
    from repro.runner import MISS, migrate_store, open_store

    value = {"requests": 42, "found": True, "path_length": 7}
    root = tempfile.mkdtemp(prefix="bench-store-")
    per_backend = {}
    try:
        for backend in PR7_STORE_BACKENDS:
            directory = os.path.join(root, backend)
            specs = _pr7_specs()
            for spec in specs:
                spec.key()
            store = open_store(directory, backend)
            began = time.perf_counter()
            for index, spec in enumerate(specs):
                store.put(spec, dict(value, requests=index))
            put_seconds = time.perf_counter() - began

            # Fresh store object *and* fresh spec objects: the warm
            # pass must pay real deserialization, not object reuse.
            specs = _pr7_specs()
            for spec in specs:
                spec.key()
            store = open_store(directory, backend)
            began = time.perf_counter()
            replayed = store.get_many(specs)
            warm_get_seconds = time.perf_counter() - began

            misses = sum(1 for entry in replayed if entry is MISS)
            if misses or len(replayed) != PR7_STORE_ENTRIES:
                raise SystemExit(
                    f"{backend}: warm replay missed {misses}/"
                    f"{PR7_STORE_ENTRIES} entries"
                )
            if replayed[17] != dict(value, requests=17):
                raise SystemExit(
                    f"{backend}: warm replay returned wrong value"
                )
            report = store.stat()
            per_backend[backend] = {
                "entries": report["entries"],
                "put_seconds": round(put_seconds, 4),
                "warm_get_seconds": round(warm_get_seconds, 4),
                "inodes": report["inodes"],
                "bytes": report["bytes"],
            }
            print(
                f"  {backend:<10} put {put_seconds:6.2f}s | warm "
                f"replay {warm_get_seconds:6.2f}s | "
                f"{report['inodes']:,} inodes, "
                f"{report['bytes'] / 1e6:.1f} MB"
            )

        began = time.perf_counter()
        counts = migrate_store(
            open_store(os.path.join(root, "json-files"), "json-files"),
            open_store(os.path.join(root, "migrated"), "sqlite"),
            verify=True,
        )
        migrate_seconds = time.perf_counter() - began
        if (
            counts["verify_failed"]
            or counts["migrated"] != PR7_STORE_ENTRIES
        ):
            raise SystemExit(f"migration not bit-identical: {counts}")
        print(
            f"  migrate json-files -> sqlite {migrate_seconds:6.2f}s"
            f" | {counts['migrated']:,} records verified identical"
        )

        baseline = per_backend["json-files"]
        candidate = per_backend["sqlite"]
        return {
            "workload": "trial-replay",
            "entries": PR7_STORE_ENTRIES,
            "per_backend": per_backend,
            "warm_replay_speedup": round(
                baseline["warm_get_seconds"]
                / candidate["warm_get_seconds"],
                2,
            ),
            "inode_ratio": round(
                baseline["inodes"] / candidate["inodes"], 2
            ),
            "acceptance_baseline": "json-files",
            "migrate": {
                "source": "json-files",
                "destination": "sqlite",
                "migrated": counts["migrated"],
                "skipped_stale": counts["skipped_stale"],
                "verify_failed": counts["verify_failed"],
                "seconds": round(migrate_seconds, 4),
                "verified_identical": True,
            },
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


def pr7_time_e17_per_store_backend() -> list:
    """Downsized E17 cold/warm per store backend, via the registry.

    Raises if the backends (or the cold/warm passes) disagree on any
    derived scalar, or if a warm pass is not replayed entirely from
    the store.
    """
    from repro.core.registry import REGISTRY
    from repro.runner import reset_store_stats, store_stats

    spec = REGISTRY.get("E17")
    records = []
    derived = {}
    n = max(PR7_E17_OVERRIDES["sizes"])
    root = tempfile.mkdtemp(prefix="bench-store-e17-")
    try:
        for backend in PR7_STORE_BACKENDS:
            cache_dir = os.path.join(root, backend)
            for phase in ("cold", "warm"):
                reset_store_stats()
                began = time.perf_counter()
                result = spec.run(
                    PR7_E17_OVERRIDES,
                    backend="frozen",
                    cache_dir=cache_dir,
                    store_backend=backend,
                )
                elapsed = time.perf_counter() - began
                derived[(backend, phase)] = result.derived
                tally = store_stats()
                if phase == "warm" and (
                    not tally["hits"] or tally["misses"]
                ):
                    raise SystemExit(
                        f"E17 warm pass not fully replayed from the "
                        f"{backend} store: {tally}"
                    )
                records.append(
                    {
                        "experiment": "E17",
                        "n": n,
                        "wall_seconds": round(elapsed, 4),
                        "backend": "frozen",
                        "store_backend": backend,
                        "phase": phase,
                    }
                )
                print(
                    f"   E17 store={backend:<10} phase={phase:<4} "
                    f"{elapsed:7.2f}s ({tally['hits']} hits, "
                    f"{tally['misses']} misses)"
                )
        reference = derived[("json-files", "cold")]
        if any(value != reference for value in derived.values()):
            raise SystemExit(
                "E17: store backends diverged at bench scale"
            )
    finally:
        shutil.rmtree(root, ignore_errors=True)
    return records


def pr7_main() -> int:
    """Write BENCH_PR7.json (the pluggable trial-store point)."""
    print(
        "bench-smoke: trial-store fill/replay, "
        f"{PR7_STORE_ENTRIES:,} entries per backend"
    )
    store_block = pr7_measure_store_speedup()
    print(
        "bench-smoke: downsized E17 cold/warm per store backend, "
        "via the registry"
    )
    records = pr7_time_e17_per_store_backend()
    payload = {
        "schema": SCHEMA,
        "records": records,
        "store_speedup": store_block,
    }
    path = os.path.normpath(PR7_OUTPUT_PATH)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {path}")
    replay_ok = store_block["warm_replay_speedup"] >= 2.0
    inode_ok = store_block["inode_ratio"] >= 5.0
    print(
        "acceptance: sqlite warm replay "
        f"{store_block['warm_replay_speedup']:.1f}x "
        f"({'>= 2x ok' if replay_ok else 'BELOW 2x'}), inode ratio "
        f"{store_block['inode_ratio']:.0f}x "
        f"({'>= 5x ok' if inode_ok else 'BELOW 5x'}), migrate "
        f"{store_block['migrate']['migrated']:,} records verified"
    )
    return 0 if replay_ok and inode_ok else 1


# ----------------------------------------------------------------------
# PR6: vectorized graph-generation engine + memory-mapped corpus store
# ----------------------------------------------------------------------

#: (model key, family, acceptance-gate n) of the generation block.
#: Móri at 10^6 carries the gate; BA shares the urn kernel; the
#: Cooper-Frieze lean replay only trims the constant factor, so it is
#: recorded at a smaller n and outside the gate.
PR6_GENERATION_GRID = (
    ("mori", MoriFamily(p=0.5, m=1), 1_000_000),
    ("ba", BarabasiAlbertFamily(m=1), 1_000_000),
    ("cooper-frieze", CooperFriezeFamily(), 200_000),
)
PR6_GENERATION_SEED = 1_000_003

#: The corpus block's size grid (one family, one seed): cold pass
#: builds + persists, warm pass replays through ``numpy.memmap``.
PR6_CORPUS_FAMILY = MoriFamily(p=0.5, m=1)
PR6_CORPUS_SIZES = (250_000, 500_000)
PR6_CORPUS_SEED = 11

#: E17's downsized grid for the per-generator end-to-end timing (run
#: through the registry, exactly as `repro run E17 --generator ...`).
PR6_E17_OVERRIDES = {"sizes": (500, 1000, 2000), "num_graphs": 2}


def _fingerprinted_build(build):
    """Time ``build()`` on a quiesced heap; return a content fingerprint.

    A million-vertex snapshot keeps millions of boxed endpoints alive,
    so timing one generator with the other's snapshot still in memory
    charges it generational GC passes over a heap it did not allocate.
    Instead each build is timed fresh (collect first, GC otherwise on
    — collector work a builder triggers for its *own* allocations is
    honestly part of its cost), reduced to a content fingerprint, and
    released before the other side runs.
    """
    import gc
    import hashlib

    gc.collect()
    began = time.perf_counter()
    snapshot = build()
    elapsed = time.perf_counter() - began
    digest = hashlib.sha256(
        json.dumps(
            [
                snapshot.num_vertices,
                [[t, h] for _, t, h in snapshot.edges()],
            ],
            separators=(",", ":"),
        ).encode("utf-8")
    ).hexdigest()
    return (hash(snapshot), digest), elapsed


def pr6_measure_generation_speedup() -> dict:
    """Per-model wall clock: serial builder + freeze vs fastgen kernel.

    Raises if any kernel's snapshot differs from the serial one — the
    speedup claim is only worth recording for identical bytes.
    """
    per_model = {}
    for key, family, n in PR6_GENERATION_GRID:
        serial_print, serial_seconds = _fingerprinted_build(
            lambda: family.build_frozen(n, seed=PR6_GENERATION_SEED)
        )
        vector_print, vectorized_seconds = _fingerprinted_build(
            lambda: family.build_frozen(
                n, seed=PR6_GENERATION_SEED, generator="vectorized"
            )
        )

        # The determinism contract, re-checked at bench scale (a real
        # raise, so `python -O` cannot strip it).
        if vector_print != serial_print:
            raise SystemExit(
                f"{family.name}: generators diverged at bench scale"
            )
        per_model[key] = {
            "family": family.name,
            "n": n,
            "serial_seconds": round(serial_seconds, 4),
            "vectorized_seconds": round(vectorized_seconds, 4),
            "speedup": round(serial_seconds / vectorized_seconds, 2),
        }
        print(
            f"  {family.name:<22} n={n:>9,} serial "
            f"{serial_seconds:6.2f}s | vectorized "
            f"{vectorized_seconds:6.2f}s -> "
            f"{per_model[key]['speedup']:.1f}x"
        )
    return {
        "workload": "graph-generation",
        "backend": "frozen",
        "seed": PR6_GENERATION_SEED,
        "per_model": per_model,
        "acceptance_model": "mori",
    }


def pr6_time_corpus() -> dict:
    """Cold (build + persist) vs warm (mapped replay) corpus passes."""
    from repro.graphs.corpus import (
        GraphCorpus,
        corpus_stats,
        reset_corpus_stats,
    )

    from repro.core.trials import family_spec

    spec = family_spec(PR6_CORPUS_FAMILY)
    root = tempfile.mkdtemp(prefix="bench-corpus-")
    try:
        corpus = GraphCorpus(root)
        reset_corpus_stats()

        def build_all():
            return [
                corpus.get_or_build(
                    spec, n, PR6_CORPUS_SEED,
                    lambda n=n: PR6_CORPUS_FAMILY.build_frozen(
                        n, seed=PR6_CORPUS_SEED,
                        generator="vectorized",
                    ),
                    generator="vectorized",
                )
                for n in PR6_CORPUS_SIZES
            ]

        began = time.perf_counter()
        cold = build_all()
        cold_seconds = time.perf_counter() - began
        began = time.perf_counter()
        warm = build_all()
        warm_seconds = time.perf_counter() - began

        if corpus_stats() != {
            "hits": len(PR6_CORPUS_SIZES),
            "misses": len(PR6_CORPUS_SIZES),
        }:
            raise SystemExit(
                f"corpus accounting off: {corpus_stats()}"
            )
        if [hash(g) for g in warm] != [hash(g) for g in cold]:
            raise SystemExit("corpus replay diverged at bench scale")

        report = corpus.verify()
        verified = sum(1 for _, ok, _ in report if ok)
        if verified != len(report) or not report:
            raise SystemExit(
                "bench-built corpus failed verify: "
                f"{verified}/{len(report)} ok"
            )
        print(
            f"  corpus ({len(report)} entries) cold "
            f"{cold_seconds:6.2f}s | warm {warm_seconds:6.2f}s -> "
            f"{cold_seconds / warm_seconds:.1f}x; verify "
            f"{verified}/{len(report)} ok"
        )
        return {
            "family": PR6_CORPUS_FAMILY.name,
            "sizes": list(PR6_CORPUS_SIZES),
            "entries": len(report),
            "cold_seconds": round(cold_seconds, 4),
            "warm_seconds": round(warm_seconds, 4),
            "speedup": round(cold_seconds / warm_seconds, 2),
            "verify_ok": True,
            "verified_entries": verified,
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


def pr6_time_e17_per_generator() -> list:
    """Downsized E17 through the registry, per generator.

    Raises if the generators disagree on any derived scalar — the
    timings are only worth recording for equal numbers.
    """
    from repro.core.registry import REGISTRY

    spec = REGISTRY.get("E17")
    records = []
    derived_per_generator = {}
    n = max(PR6_E17_OVERRIDES["sizes"])
    for generator in ("serial", "vectorized"):
        began = time.perf_counter()
        result = spec.run(
            PR6_E17_OVERRIDES, backend="frozen", generator=generator
        )
        elapsed = time.perf_counter() - began
        derived_per_generator[generator] = result.derived
        records.append(
            {
                "experiment": "E17",
                "n": n,
                "wall_seconds": round(elapsed, 4),
                "backend": "frozen",
                "generator": generator,
            }
        )
        print(f"   E17 generator={generator:<11} {elapsed:7.2f}s")
    if derived_per_generator["serial"] != (
        derived_per_generator["vectorized"]
    ):
        raise SystemExit("E17: generators diverged at bench scale")
    return records


def pr6_main() -> int:
    """Regenerate BENCH_PR6.json (the vectorized-generation point)."""
    print("bench-smoke --pr6: serial vs vectorized generation (frozen)")
    generation = pr6_measure_generation_speedup()
    print(
        "bench-smoke --pr6: corpus cold/warm passes, sizes "
        f"{PR6_CORPUS_SIZES[0]:,}..{PR6_CORPUS_SIZES[-1]:,}"
    )
    corpus_block = pr6_time_corpus()
    print(
        "bench-smoke --pr6: downsized E17 per generator, "
        "via the registry"
    )
    records = pr6_time_e17_per_generator()
    payload = {
        "schema": SCHEMA,
        "records": records,
        "generation_speedup": generation,
        "corpus": corpus_block,
    }
    path = os.path.normpath(PR6_OUTPUT_PATH)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {path}")
    gate = generation["per_model"][generation["acceptance_model"]]
    ok = gate["speedup"] >= 5.0 and corpus_block["verify_ok"]
    print(
        "acceptance: vectorized generation speedup "
        f"{gate['speedup']:.1f}x "
        f"({'>= 5x ok' if gate['speedup'] >= 5.0 else 'BELOW 5x'}), "
        f"corpus verify {corpus_block['verified_entries']}/"
        f"{corpus_block['entries']} ok"
    )
    return 0 if ok else 1

# ----------------------------------------------------------------------
# PR5: declarative experiment registry + unified execution context
# ----------------------------------------------------------------------

#: E20's downsized grid for the per-engine end-to-end timing (run
#: through the registry, exactly as `repro run E20 --set ...` would).
PR5_E20_OVERRIDES = {
    "sizes": (60, 120, 240),
    "num_graphs": 2,
    "runs_per_graph": 2,
}


def pr5_registry_block() -> dict:
    """Enumerate the live registry: the declarative surface, pinned."""
    from repro.core.registry import REGISTRY

    began = time.perf_counter()
    experiments = REGISTRY.ids()
    matrix = {
        experiment_id: list(capabilities)
        for experiment_id, capabilities in
        REGISTRY.capability_matrix().items()
    }
    elapsed = time.perf_counter() - began
    print(
        f"  registry: {len(experiments)} experiments, "
        f"{sum(len(v) for v in matrix.values())} capability "
        f"declarations ({elapsed * 1000:.2f} ms)"
    )
    return {
        "count": len(experiments),
        "experiments": experiments,
        "capability_matrix": matrix,
        "enumeration_seconds": round(elapsed, 6),
    }


def pr5_time_e20_per_engine() -> list:
    """Downsized E20 through the registry, per declared engine.

    Raises if the engines disagree on any derived scalar — the
    timings are only worth recording for equal numbers.
    """
    from repro.core.registry import REGISTRY

    spec = REGISTRY.get("E20")
    records = []
    derived_per_engine = {}
    n = max(PR5_E20_OVERRIDES["sizes"])
    for engine in ("serial", "ensemble"):
        began = time.perf_counter()
        result = spec.run(
            PR5_E20_OVERRIDES, backend="frozen", engine=engine
        )
        elapsed = time.perf_counter() - began
        derived_per_engine[engine] = result.derived
        records.append(
            {
                "experiment": "E20",
                "n": n,
                "wall_seconds": round(elapsed, 4),
                "backend": "frozen",
                "engine": engine,
            }
        )
        print(f"   E20 engine={engine:<9} {elapsed:7.2f}s")
    if derived_per_engine["serial"] != derived_per_engine["ensemble"]:
        raise SystemExit("E20: engines diverged at bench scale")
    return records


def pr5_main() -> int:
    """Regenerate BENCH_PR5.json (the experiment-registry point).

    The registry block snapshots the *live* registry, so later PRs
    that add experiments regenerate this artifact; the gate is that
    the original E1..E20 surface is still fully declared (growth is
    expected, loss is a regression).
    """
    print("bench-smoke --pr5: registry enumeration")
    registry_block = pr5_registry_block()
    print(
        "bench-smoke --pr5: downsized E20 per engine, via the registry"
    )
    records = pr5_time_e20_per_engine()
    payload = {
        "schema": SCHEMA,
        "records": records,
        "registry": registry_block,
    }
    path = os.path.normpath(PR5_OUTPUT_PATH)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {path}")
    original = [f"E{i}" for i in range(1, 21)]
    ok = all(
        experiment_id in registry_block["experiments"]
        for experiment_id in original
    )
    print(
        f"acceptance: {registry_block['count']} registered "
        f"experiments ({'E1..E20 all present' if ok else 'E1..E20 INCOMPLETE'}), "
        "E20 engines equal"
    )
    return 0 if ok else 1

# ----------------------------------------------------------------------
# PR4: vectorized walker-ensemble engine
# ----------------------------------------------------------------------

#: Downsized walk-heavy experiments timed per engine (frozen backend —
#: the engine axis is orthogonal to the backend one, and frozen+numpy
#: is the kernel's native path).
PR4_EXPERIMENTS = (
    ("E1", e1_mori_weak,
     {"sizes": (60, 120, 240), "num_graphs": 2, "runs_per_graph": 2},
     240),
    ("E3", e3_cooper_frieze,
     {"sizes": (60, 120), "num_graphs": 2, "runs_per_graph": 2}, 120),
)

PR4_CELL_FAMILY = MoriFamily(p=0.5, m=2)
PR4_CELL_N = 100_000
PR4_CELL_RUNS = 64
PR4_CELL_BUDGET = 2_000
PR4_CELL_SEED = 97
PR4_CELL_ALGORITHMS = (
    RandomWalkSearch(),
    SelfAvoidingWalkSearch(),
    RestartingWalkSearch(restart_prob=0.1),
)


def pr4_time_experiments() -> list:
    """Downsized E1/E3 per engine, timed end to end."""
    records = []
    for experiment_id, function, kwargs, n in PR4_EXPERIMENTS:
        for engine in ("serial", "ensemble"):
            began = time.perf_counter()
            function(**kwargs, backend="frozen", engine=engine)
            elapsed = time.perf_counter() - began
            records.append(
                {
                    "experiment": experiment_id,
                    "n": n,
                    "wall_seconds": round(elapsed, 4),
                    "backend": "frozen",
                    "engine": engine,
                }
            )
            print(
                f"  {experiment_id:>4} engine={engine:<9} "
                f"{elapsed:7.2f}s"
            )
    return records


def pr4_measure_ensemble_speedup() -> dict:
    """Per-cell wall clock: serial oracle loop vs ensemble kernel."""
    print(
        f"  building {PR4_CELL_FAMILY.name} n={PR4_CELL_N} "
        "(one snapshot serves every cell) ..."
    )
    graph = freeze(
        PR4_CELL_FAMILY.build(PR4_CELL_N, seed=PR4_CELL_SEED)
    )
    target = PR4_CELL_FAMILY.theorem_target(graph)
    start = PR4_CELL_FAMILY.default_start(graph)
    per_algorithm = {}
    for algorithm in PR4_CELL_ALGORITHMS:
        run_seeds = [
            run_substream(PR4_CELL_SEED, algorithm.name, run)
            for run in range(PR4_CELL_RUNS)
        ]
        began = time.perf_counter()
        serial_results = [
            run_search(
                algorithm, graph, start, target,
                budget=PR4_CELL_BUDGET, seed=run_seed,
            )
            for run_seed in run_seeds
        ]
        serial_seconds = time.perf_counter() - began

        began = time.perf_counter()
        ensemble_results = run_ensemble(
            algorithm, graph, start, target, run_seeds,
            budget=PR4_CELL_BUDGET,
        )
        ensemble_seconds = time.perf_counter() - began

        # The speedup claim is only worth recording if the engines
        # agree run for run — the determinism contract, re-checked at
        # bench scale (a real raise, so `python -O` cannot strip it).
        if ensemble_results != serial_results:
            raise SystemExit(
                f"{algorithm.name}: engines diverged at bench scale"
            )
        per_algorithm[algorithm.name] = {
            "serial_seconds": round(serial_seconds, 4),
            "ensemble_seconds": round(ensemble_seconds, 4),
            "speedup": round(serial_seconds / ensemble_seconds, 2),
        }
        print(
            f"  {algorithm.name:<20} serial {serial_seconds:6.2f}s"
            f" | ensemble {ensemble_seconds:6.2f}s -> "
            f"{per_algorithm[algorithm.name]['speedup']:.1f}x"
        )
    return {
        "workload": "walk-cells",
        "family": PR4_CELL_FAMILY.name,
        "n": PR4_CELL_N,
        "runs_per_cell": PR4_CELL_RUNS,
        "budget": PR4_CELL_BUDGET,
        "backend": "frozen",
        "per_algorithm": per_algorithm,
        "acceptance_algorithm": "random-walk",
    }


def pr4_main() -> int:
    """Regenerate BENCH_PR4.json (the walker-ensemble engine point)."""
    print("bench-smoke --pr4: downsized E1/E3 (engines, frozen backend)")
    records = pr4_time_experiments()
    print(
        "bench-smoke --pr4: walk cells, "
        f"n={PR4_CELL_N} x {PR4_CELL_RUNS} runs"
    )
    speedup = pr4_measure_ensemble_speedup()
    payload = {
        "schema": SCHEMA,
        "records": records,
        "ensemble_speedup": speedup,
    }
    path = os.path.normpath(PR4_OUTPUT_PATH)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {path}")
    gate = speedup["per_algorithm"][speedup["acceptance_algorithm"]]
    ok = gate["speedup"] >= 3.0
    print(
        "acceptance: ensemble walk-cell speedup "
        f"{gate['speedup']:.1f}x ({'>= 3x ok' if ok else 'BELOW 3x'})"
    )
    return 0 if ok else 1


# ----------------------------------------------------------------------
# PR3 artifact regeneration (growth-trajectory checkpoint engine)
# ----------------------------------------------------------------------

#: Downsized end-to-end runs timed per backend (and, for E17, per mode).
SMOKE_SIZES_E17 = (500, 676, 913, 1233, 1665, 2248, 3035, 4000)
SMOKE_SIZES_E19 = (200, 400, 800, 1600)

#: The grid whose *realisation* cost the speedup block measures: E17's
#: family at a dense geometric checkpoint grid, where the independent
#: layout pays `sum(sizes)` construction work against the trajectory's
#: one pass.
GRID_FAMILY = MoriFamily(p=0.25, m=1)
GRID_SIZES = (
    2000, 2601, 3382, 4397, 5717, 7433, 9663, 12562,
    16331, 21231, 27601, 32000,
)
GRID_SEED = 17


def pr3_time_experiments() -> list:
    """Downsized E17 (both modes) and E19, per backend, timed."""
    records = []
    runs = [
        ("E17", e17_simulation_slowdown,
         {"sizes": SMOKE_SIZES_E17, "num_graphs": 2, "seed": 17},
         max(SMOKE_SIZES_E17), ("independent", "trajectory")),
        ("E19", e19_trajectory_scaling,
         {"sizes": SMOKE_SIZES_E19, "num_graphs": 2,
          "runs_per_graph": 1, "seed": 19},
         max(SMOKE_SIZES_E19), ("trajectory",)),
    ]
    for experiment_id, function, kwargs, n, modes in runs:
        for backend in ("multigraph", "frozen"):
            for mode in modes:
                extra = (
                    {} if experiment_id == "E19" else {"mode": mode}
                )
                began = time.perf_counter()
                function(**kwargs, backend=backend, **extra)
                elapsed = time.perf_counter() - began
                records.append(
                    {
                        "experiment": experiment_id,
                        "n": n,
                        "wall_seconds": round(elapsed, 4),
                        "backend": backend,
                        "mode": mode,
                    }
                )
                print(
                    f"  {experiment_id:>4} backend={backend:<10} "
                    f"mode={mode:<12} {elapsed:7.2f}s"
                )
    return records


def pr3_measure_trajectory_speedup() -> dict:
    """Grid-realisation wall clock: independent builds vs one trajectory."""
    per_backend = {}
    for backend in ("frozen", "multigraph"):
        began = time.perf_counter()
        for size in GRID_SIZES:
            snapshot_graph(
                GRID_FAMILY.build(size, seed=GRID_SEED), backend
            )
        independent_seconds = time.perf_counter() - began

        began = time.perf_counter()
        graph, marks = GRID_FAMILY.build_trajectory(
            GRID_SIZES, seed=GRID_SEED
        )
        snapshots = trajectory_snapshots(
            graph, marks, GRID_SIZES, backend
        )
        trajectory_seconds = time.perf_counter() - began
        assert len(snapshots) == len(GRID_SIZES)

        per_backend[backend] = {
            "independent_seconds": round(independent_seconds, 4),
            "trajectory_seconds": round(trajectory_seconds, 4),
            "speedup": round(
                independent_seconds / trajectory_seconds, 2
            ),
        }
        print(
            f"  {backend:<10} independent {independent_seconds:6.2f}s"
            f" | trajectory {trajectory_seconds:6.2f}s -> "
            f"{per_backend[backend]['speedup']:.1f}x"
        )
    return {
        "workload": "e17-grid-realisations",
        "family": GRID_FAMILY.name,
        "sizes": list(GRID_SIZES),
        "per_backend": per_backend,
        "acceptance_backend": "frozen",
    }


def pr3_main() -> int:
    """Regenerate BENCH_PR3.json (the checkpoint-engine point)."""
    print("bench-smoke --pr3: downsized E17/E19 (backends x modes)")
    records = pr3_time_experiments()
    print(
        "bench-smoke --pr3: E17-shaped grid realisations, "
        f"sizes {GRID_SIZES[0]}..{GRID_SIZES[-1]}"
    )
    speedup = pr3_measure_trajectory_speedup()
    payload = {
        "schema": SCHEMA,
        "records": records,
        "trajectory_speedup": speedup,
    }
    path = os.path.normpath(PR3_OUTPUT_PATH)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {path}")
    gate = speedup["per_backend"][speedup["acceptance_backend"]]
    ok = gate["speedup"] >= 2.0
    print(
        "acceptance: frozen-backend grid-realisation speedup "
        f"{gate['speedup']:.1f}x ({'>= 2x ok' if ok else 'BELOW 2x'})"
    )
    return 0 if ok else 1


# ----------------------------------------------------------------------
# PR2 artifact regeneration (kept for reproducibility of BENCH_PR2.json)
# ----------------------------------------------------------------------

PR2_EXPERIMENTS = (
    ("E1", e1_mori_weak,
     {"sizes": (200, 400), "num_graphs": 2, "runs_per_graph": 1}, 400),
    ("E3", e3_cooper_frieze,
     {"sizes": (100, 200), "num_graphs": 2, "runs_per_graph": 1}, 200),
    ("E17", e17_simulation_slowdown,
     {"sizes": (100, 200), "num_graphs": 2}, 200),
)

PR2_SPEEDUP_N = 100_000
PR2_SPEEDUP_CELLS = 12
PR2_SPEEDUP_SEED = 97


def _pr2_cell_starts(graph, target):
    rng = make_rng(substream(PR2_SPEEDUP_SEED, 0xCE11))
    starts = []
    while len(starts) < PR2_SPEEDUP_CELLS:
        start = rng.randint(1, graph.num_vertices)
        if start != target and start not in starts:
            starts.append(start)
    return starts


def _pr2_run_cells(graph, starts, target):
    for start in starts:
        result = run_search(
            FloodingSearch(), graph, start, target, seed=0
        )
        assert result.found
        distances = bfs_distances(graph, start)
        assert distances[target] >= 0


def pr2_main() -> int:
    """Regenerate BENCH_PR2.json (the FrozenGraph cell-batch point)."""
    print("bench-smoke --pr2: downsized experiments (both backends)")
    records = []
    for experiment_id, function, kwargs, n in PR2_EXPERIMENTS:
        for backend in ("multigraph", "frozen"):
            began = time.perf_counter()
            function(**kwargs, backend=backend)
            elapsed = time.perf_counter() - began
            records.append(
                {
                    "experiment": experiment_id,
                    "n": n,
                    "wall_seconds": round(elapsed, 4),
                    "backend": backend,
                }
            )
            print(
                f"  {experiment_id:>4} backend={backend:<10} "
                f"{elapsed:7.2f}s"
            )
    family = MoriFamily(p=0.5, m=1)
    print(f"  building Mori n={PR2_SPEEDUP_N} ...")
    graph = family.build(PR2_SPEEDUP_N, seed=PR2_SPEEDUP_SEED)
    target = family.theorem_target(graph)
    starts = _pr2_cell_starts(graph, target)

    began = time.perf_counter()
    for start in starts:
        rebuilt = family.build(PR2_SPEEDUP_N, seed=PR2_SPEEDUP_SEED)
        _pr2_run_cells(rebuilt, [start], target)
    rebuild_seconds = time.perf_counter() - began

    began = time.perf_counter()
    shared = family.build(PR2_SPEEDUP_N, seed=PR2_SPEEDUP_SEED)
    _pr2_run_cells(shared, starts, target)
    shared_seconds = time.perf_counter() - began

    began = time.perf_counter()
    built = family.build(PR2_SPEEDUP_N, seed=PR2_SPEEDUP_SEED)
    frozen = freeze(built)
    _pr2_run_cells(frozen, starts, target)
    frozen_seconds = time.perf_counter() - began

    speedup = {
        "workload": "e1-flooding-bfs-cells",
        "n": PR2_SPEEDUP_N,
        "cells": PR2_SPEEDUP_CELLS,
        "multigraph_rebuild_seconds": round(rebuild_seconds, 4),
        "multigraph_shared_seconds": round(shared_seconds, 4),
        "frozen_batched_seconds": round(frozen_seconds, 4),
        "speedup_vs_rebuild": round(
            rebuild_seconds / frozen_seconds, 2
        ),
        "speedup_vs_shared": round(
            shared_seconds / frozen_seconds, 2
        ),
    }
    payload = {
        "schema": SCHEMA,
        "records": records,
        "speedup": speedup,
    }
    path = os.path.normpath(PR2_OUTPUT_PATH)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {path}")
    ok = speedup["speedup_vs_rebuild"] >= 3.0
    print(
        "acceptance: speedup_vs_rebuild "
        f"{speedup['speedup_vs_rebuild']:.1f}x "
        f"({'>= 3x ok' if ok else 'BELOW 3x'})"
    )
    return 0 if ok else 1


#: Earlier trajectory points, dispatched by flag; no flag runs the
#: current PR's point (``main``).  A new PR adds one row, not an arm.
_PR_FLAGS = {
    "--pr2": pr2_main,
    "--pr3": pr3_main,
    "--pr4": pr4_main,
    "--pr5": pr5_main,
    "--pr6": pr6_main,
    "--pr7": pr7_main,
    "--pr8": pr8_main,
    "--pr9": pr9_main,
}

if __name__ == "__main__":
    for _flag, _entry in _PR_FLAGS.items():
        if _flag in sys.argv[1:]:
            sys.exit(_entry())
    sys.exit(main())

"""E18 — "Starting from any vertex": the floor is start-independent.

Theorem 1 quantifies over the start vertex.  This ablation measures
the search-cost exponent from the oldest hub-adjacent vertex, from a
uniformly random vertex, and from a young peripheral vertex; all three
must stay at or above ~1/2 — no privileged entry point makes the graph
navigable.
"""

from __future__ import annotations

from bench_utils import record_result

from repro.core.experiments import e18_start_rule

RULES = ("default", "random", "newest-other")


def test_e18_start_rule(benchmark):
    result = benchmark.pedantic(
        lambda: e18_start_rule(
            sizes=(200, 400, 800, 1600),
            p=0.5,
            num_graphs=4,
            runs_per_graph=2,
            seed=18,
        ),
        rounds=1,
        iterations=1,
    )
    record_result(result)

    for rule in RULES:
        exponent = result.derived[f"exponent/start={rule}"]
        assert exponent > 0.4, f"start={rule}: exponent {exponent}"

"""E16 — Neighbor-degree dependence: evolving vs pure random graphs.

The paper's structural distinction ("Related works"): in pure random
graphs neighbor degrees are independent; in evolving models degree and
age correlate — the reason mean-field analyses mislead there.  The
age-degree correlation is the fingerprint: strongly negative for every
evolving model, ~0 for the configuration model.
"""

from __future__ import annotations

from bench_utils import record_result

from repro.core.experiments import e16_neighbor_dependence

EVOLVING = ("mori(p=0.5, m=2)", "cooper-frieze(a=0.75)", "ba(m=2)")


def test_e16_neighbor_dependence(benchmark):
    result = benchmark.pedantic(
        lambda: e16_neighbor_dependence(n=10000, seed=16),
        rounds=1,
        iterations=1,
    )
    record_result(result)

    for name in EVOLVING:
        assert result.derived[f"age_corr/{name}"] < -0.15, name
    assert abs(result.derived["age_corr/config(k=2.5)"]) < 0.05

"""E13 — Ablation: the attachment mixture p does not rescue
searchability.

Theorem 1 holds for every 0 < p <= 1; this ablation sweeps p (including
the out-of-theorem uniform case p = 0) and checks the fitted search
exponent never dips toward the navigable (poly-log, exponent ~ 0)
regime.
"""

from __future__ import annotations

from bench_utils import record_result

from repro.core.experiments import e13_ablation_p

P_VALUES = (0.0, 0.25, 0.5, 0.75, 1.0)


def test_e13_ablation_p(benchmark):
    result = benchmark.pedantic(
        lambda: e13_ablation_p(
            sizes=(200, 400, 800, 1600),
            p_values=P_VALUES,
            num_graphs=4,
            seed=13,
        ),
        rounds=1,
        iterations=1,
    )
    record_result(result)

    for p in P_VALUES:
        exponent = result.derived[f"exponent/p={p:g}"]
        assert exponent > 0.4, f"p={p}: fitted exponent {exponent}"

"""E12 — Percolation search with replication (Sarshar et al. [SBR04]).

The paper cites this as the P2P workaround for non-searchability:
replicate contents along short random walks, then answer queries with a
probabilistic (bond-percolation) broadcast.  The regenerated table
sweeps the replication factor; the shape claims are that hit rate rises
with replication while the message cost stays a sublinear-ish fraction
of flooding the whole graph.
"""

from __future__ import annotations

from bench_utils import record_result

from repro.core.experiments import e12_percolation

REPLICAS = (0, 4, 16, 64)


def test_e12_percolation(benchmark):
    result = benchmark.pedantic(
        lambda: e12_percolation(
            n=4000,
            exponent=2.3,
            replica_counts=REPLICAS,
            broadcast_probability=0.25,
            num_queries=30,
            seed=12,
        ),
        rounds=1,
        iterations=1,
    )
    record_result(result)

    hit_rates = [
        result.derived[f"hit_rate/replicas={r}"] for r in REPLICAS
    ]
    # Replication helps: the heaviest replication beats none.
    assert hit_rates[-1] > hit_rates[0]
    assert hit_rates[-1] >= 0.5
    # The broadcast touches well under the full edge set.
    for r in REPLICAS:
        assert result.derived[f"messages_per_n/replicas={r}"] < 1.0

"""E7 — Adamic et al.: high-degree search vs random walk on pure
power-law graphs.

Mean-field predictions on the configuration model with exponent k:
degree-greedy ~ n^{2(1-2/k)}, random walk ~ n^{3(1-2/k)}.  The
reproducible shape: the greedy strategy wins at every size and its
cost grows strictly slower.
"""

from __future__ import annotations

from bench_utils import record_result

from repro.core.experiments import e7_adamic

SIZES = (400, 800, 1600, 3200)


def test_e7_adamic(benchmark):
    result = benchmark.pedantic(
        lambda: e7_adamic(
            sizes=SIZES,
            exponent=2.5,
            num_graphs=8,
            runs_per_graph=2,
            seed=7,
        ),
        rounds=1,
        iterations=1,
    )
    record_result(result)

    greedy = result.derived["exponent/high-degree-strong"]
    walk = result.derived["exponent/random-walk"]
    # Ordering is the claim; the mean-field exponents (0.4 and 0.6 at
    # k=2.5) are approximations, so only the gap is asserted.
    assert greedy < walk, f"greedy {greedy} !< walk {walk}"

    # Greedy is cheaper at the largest size, in absolute terms.
    table = result.tables[0]
    columns = list(table.columns)
    largest_rows = {
        row[columns.index("algorithm")]: row[
            columns.index("mean requests")
        ]
        for row in table.rows
        if row[columns.index("n")] == max(SIZES)
    }
    assert (
        largest_rows["high-degree-strong"] < largest_rows["random-walk"]
    )

"""E11 — Lemma 1's floor against measurements; tightness via the
omniscient baseline.

For every size and every algorithm (portfolio + omniscient), the ratio
measured-mean / exact-floor must stay >= ~1; the omniscient baseline's
fitted exponent should sit near 1/2, showing the Ω(√n) bound is the
right order, not an artifact of weak algorithms.
"""

from __future__ import annotations

from bench_utils import record_result

from repro.core.experiments import e11_lemma1_floor


def test_e11_lemma1_floor(benchmark):
    result = benchmark.pedantic(
        lambda: e11_lemma1_floor(
            sizes=(200, 400, 800, 1600),
            p=0.5,
            num_graphs=6,
            runs_per_graph=2,
            seed=11,
        ),
        rounds=1,
        iterations=1,
    )
    record_result(result)

    # Lemma 1 predicts ratio >= 1; allow Monte-Carlo slack on means.
    assert result.derived["min_ratio"] > 0.7
    # Tightness: the maximally-informed baseline scales like ~ sqrt(n).
    assert 0.3 < result.derived["omniscient_exponent"] < 0.8

"""E9 — The headline contrast: O(log n) diameter, Ω(√n) search.

One sweep on merged Móri graphs measuring, side by side, the diameter
(grows logarithmically — the "small world" half) and the search cost of
the best weak-model heuristic (grows polynomially — the
"non-searchable" half).
"""

from __future__ import annotations

from bench_utils import record_result

from repro.core.experiments import e9_diameter_vs_search


def test_e9_diameter_vs_search(benchmark):
    result = benchmark.pedantic(
        lambda: e9_diameter_vs_search(
            sizes=(200, 400, 800, 1600, 3200),
            p=0.5,
            m=2,
            num_graphs=4,
            seed=9,
        ),
        rounds=1,
        iterations=1,
    )
    record_result(result)

    # Diameter: logarithmic model fits well, and even when forced into
    # a power model its exponent is tiny — nowhere near the search
    # floor of 1/2.  (At these sizes log and n^epsilon are numerically
    # indistinguishable, so the robust claim is the exponent gap.)
    assert result.derived["diameter_log_r2"] > 0.8
    assert result.derived["diameter_power_exponent"] < 0.2
    # Search cost: polynomial with exponent >= ~1/2.
    assert result.derived["search_cost_exponent"] > 0.4
    # The gap itself: search grows at least 3x faster in exponent.
    assert (
        result.derived["search_cost_exponent"]
        > 3 * result.derived["diameter_power_exponent"]
    )

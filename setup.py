"""Setuptools shim for legacy editable installs (offline environments).

All project metadata lives in pyproject.toml; this file exists only so
``pip install -e .`` works where the `wheel` package (required for
PEP 660 editable builds) is unavailable.
"""

from setuptools import setup

setup()

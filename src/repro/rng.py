"""Deterministic random-number utilities.

Every stochastic component in this library accepts either an integer seed
or a ready-made :class:`random.Random` instance.  Centralising the
coercion here keeps experiment runs reproducible: a single integer seed
at the top of an experiment fans out into independent, stable substreams
for each repetition and each model.

The library deliberately uses :mod:`random` (Mersenne Twister) rather
than :mod:`numpy.random` for the evolving-graph constructions: the inner
loops draw one variate at a time, where the stdlib generator is both
faster to call and keeps the core package dependency-free.
"""

from __future__ import annotations

import random
import zlib
from typing import Iterator, Optional, Union

__all__ = [
    "RandomLike",
    "make_rng",
    "run_substream",
    "spawn",
    "substream",
    "stream_seeds",
]

#: Anything accepted as a source of randomness by library entry points.
RandomLike = Union[None, int, random.Random]

#: Multiplier used to decorrelate derived seeds (a large odd constant,
#: the 64-bit golden-ratio multiplier used by splitmix64).
_GOLDEN_64 = 0x9E3779B97F4A7C15

_MASK_64 = (1 << 64) - 1


def make_rng(seed: RandomLike = None) -> random.Random:
    """Coerce ``seed`` into a :class:`random.Random` instance.

    * ``None``   -> a freshly, nondeterministically seeded generator;
    * ``int``    -> a generator deterministically seeded with that value;
    * ``Random`` -> returned unchanged (shared state with the caller).

    Parameters
    ----------
    seed:
        Seed value or generator.

    Returns
    -------
    random.Random
        A usable generator.
    """
    if seed is None:
        return random.Random()
    if isinstance(seed, random.Random):
        return seed
    if isinstance(seed, bool) or not isinstance(seed, int):
        raise TypeError(
            "seed must be None, an int, or a random.Random instance, "
            f"got {type(seed).__name__}"
        )
    return random.Random(seed)


def _mix(value: int) -> int:
    """One round of splitmix64 finalisation, for seed decorrelation."""
    value = (value + _GOLDEN_64) & _MASK_64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK_64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK_64
    return value ^ (value >> 31)


def substream(seed: int, index: int) -> int:
    """Derive the ``index``-th decorrelated child seed of ``seed``.

    Uses a splitmix64-style mix so that consecutive indices give
    statistically independent Mersenne Twister seedings.
    """
    return _mix((seed & _MASK_64) ^ _mix(index & _MASK_64))


def run_substream(seed: int, algorithm_name: str, run_index: int) -> int:
    """The per-run seed of a named algorithm's ``run_index``-th repetition.

    This is *the* derivation every search-cost loop uses — the serial
    per-cell path in :func:`repro.core.trials._execute_cells` and the
    vectorized walker-ensemble kernel
    (:func:`repro.search.ensemble.run_ensemble`) must draw run seeds
    from this one function so their per-run draw sequences can never
    drift apart (``tests/test_search_ensemble.py`` pins golden values
    and golden first-draw traces).

    The formula is ``substream(seed, (crc32(name) << 16) ^ run_index)``:

    * ``crc32`` (not ``hash``) because str hashes are salted per
      process and run seeds must be reproducible across interpreter
      invocations;
    * the ``<< 16`` shift gives run indices their own 16-bit field, so
      distinct ``(name, run_index)`` pairs map to distinct substream
      indices for every ``run_index < 2**16`` — the audited contract.
      (Indices beyond that would fold into the name bits; they are
      rejected here rather than silently colliding.  No experiment
      comes near 65536 runs per graph per algorithm.)
    """
    if not 0 <= run_index < (1 << 16):
        from repro.errors import InvalidParameterError

        raise InvalidParameterError(
            f"run_index must lie in [0, 65536), got {run_index} "
            "(indices beyond the 16-bit field would collide with the "
            "algorithm-name bits of the substream index)"
        )
    name_code = zlib.crc32(algorithm_name.encode("utf-8"))
    return substream(seed, (name_code << 16) ^ run_index)


def spawn(rng: random.Random) -> random.Random:
    """Create a new generator seeded from ``rng``.

    Useful when a component needs private random state that must not be
    perturbed by (or perturb) the caller's draws.
    """
    return random.Random(rng.getrandbits(64))


def stream_seeds(seed: int, count: int) -> Iterator[int]:
    """Yield ``count`` decorrelated child seeds of ``seed``.

    The i-th element equals ``substream(seed, i)``; the whole stream is a
    pure function of ``seed``.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    for index in range(count):
        yield substream(seed, index)

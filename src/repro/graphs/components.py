"""Connected components and induced subgraphs.

The evolving models (Móri, Cooper–Frieze, BA) are connected by
construction, but the configuration model is not: for power-law
exponents in ``(2, 3)`` it has a giant component plus dust.  Search
experiments on pure random graphs (E7, E12) therefore restrict source
and target to the largest component, using the helpers here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import InvalidParameterError
from repro.graphs.base import MultiGraph
from repro.graphs.frozen import (
    GraphBackend,
    vectorized_connected_components,
)

__all__ = [
    "connected_components",
    "largest_component",
    "InducedSubgraph",
    "induced_subgraph",
]


def connected_components(graph: GraphBackend) -> List[List[int]]:
    """All connected components, largest first, each sorted ascending.

    Accepts either backend; on a numpy-backed
    :class:`~repro.graphs.frozen.FrozenGraph` the components come from
    the vectorised label-propagation kernel (identical output).
    """
    fast = vectorized_connected_components(graph)
    if fast is not None:
        return fast
    n = graph.num_vertices
    seen = [False] * (n + 1)
    components: List[List[int]] = []
    for start in graph.vertices():
        if seen[start]:
            continue
        component = [start]
        seen[start] = True
        stack = [start]
        while stack:
            v = stack.pop()
            for eid in graph.incident_edges(v):
                w = graph.other_endpoint(eid, v)
                if not seen[w]:
                    seen[w] = True
                    component.append(w)
                    stack.append(w)
        component.sort()
        components.append(component)
    components.sort(key=len, reverse=True)
    return components


def largest_component(graph: GraphBackend) -> List[int]:
    """Vertices of the largest connected component, sorted ascending."""
    components = connected_components(graph)
    if not components:
        raise InvalidParameterError("graph has no vertices")
    return components[0]


@dataclass(frozen=True)
class InducedSubgraph:
    """A vertex-induced subgraph with its relabelling maps.

    Attributes
    ----------
    graph:
        The subgraph, relabelled to ``1 .. k``.
    to_original:
        ``to_original[new_id]`` is the original identity (index 0 unused).
    to_new:
        Original identity -> new identity.
    """

    graph: MultiGraph
    to_original: Tuple[int, ...]
    to_new: Dict[int, int]


def induced_subgraph(
    graph: GraphBackend, vertices: List[int]
) -> InducedSubgraph:
    """The subgraph induced by ``vertices``, relabelled densely.

    Relabelling preserves the *relative order* of identities, so "the
    newest vertex of the component" remains the largest new identity —
    search targets defined by insertion age survive the restriction.
    """
    if not vertices:
        raise InvalidParameterError("vertex list must be non-empty")
    ordered = sorted(set(vertices))
    for v in ordered:
        if not graph.has_vertex(v):
            raise InvalidParameterError(f"vertex {v} not in graph")
    to_new = {v: i + 1 for i, v in enumerate(ordered)}
    sub = MultiGraph(len(ordered))
    member = set(ordered)
    for _, tail, head in graph.edges():
        if tail in member and head in member:
            sub.add_edge(to_new[tail], to_new[head])
    return InducedSubgraph(
        graph=sub,
        to_original=tuple([0] + ordered),
        to_new=to_new,
    )

"""The Cooper–Frieze general web-graph model.

This is the model of Theorem 2.  Following [CF03] as rephrased by the
paper (Section 1, "we rephrase ... to use indegree of vertices instead
of total degree"), the graph evolves from a single vertex with a
self-loop; at each time step:

* with probability ``alpha`` run **procedure NEW**: add a new vertex
  ``v`` together with ``k`` outgoing edges, where ``k`` is drawn from
  the discrete distribution ``q`` (:attr:`new_edge_distribution`); the
  terminal vertex of each edge is an existing vertex chosen *uniformly*
  with probability ``beta`` and *preferentially* otherwise;
* with probability ``1 - alpha`` run **procedure OLD**: pick an existing
  initiator vertex — *uniformly* with probability ``delta``,
  *preferentially* otherwise — and add ``k`` outgoing edges from it,
  ``k`` drawn from the distribution ``p`` (:attr:`old_edge_distribution`);
  each terminal vertex is chosen *uniformly* with probability ``gamma``
  and *preferentially* otherwise.

"Preferentially" means proportional to indegree by default (the
rephrasing the paper uses, which widens the valid parameter range) or
proportional to total degree when ``preferential_by='total'`` (the
original [CF03] formulation) — both are exact urn draws, not mean-field
approximations.

The graph is connected by construction: every NEW vertex attaches to the
existing component, and OLD steps only add edges.  Vertex identities are
assigned in insertion order, so "vertex n" is the newest vertex, exactly
the search target of Theorem 2.

Evolution stops once ``n`` vertices exist *and* the current step has
finished, so the number of time steps is random (about ``n / alpha``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.errors import GraphConstructionError, InvalidParameterError
from repro.graphs.base import MultiGraph
from repro.graphs.sampling import EndpointUrn, discrete_distribution_sampler
from repro.rng import RandomLike, make_rng

__all__ = [
    "CooperFriezeParams",
    "CooperFriezeGraph",
    "StepRecord",
    "cooper_frieze_graph",
]

_PREFERENTIAL_MODES = ("indegree", "total")


@dataclass(frozen=True)
class CooperFriezeParams:
    """Parameter vector ``(alpha, beta, gamma, delta, p, q)`` of the model.

    Attributes
    ----------
    alpha:
        Probability of procedure NEW at each step; must satisfy
        ``0 < alpha < 1`` for Theorem 2 (``alpha = 1`` is accepted for
        ablations and reduces to a pure growth model).
    beta:
        Probability that a NEW-edge terminal vertex is chosen uniformly
        (otherwise preferentially).
    gamma:
        Probability that an OLD-edge terminal vertex is chosen uniformly
        (otherwise preferentially).
    delta:
        Probability that the OLD initiator is chosen uniformly
        (otherwise preferentially).
    new_edge_distribution:
        The paper's distribution ``q``: ``new_edge_distribution[i]`` is
        the probability that a NEW step adds ``i + 1`` edges.
    old_edge_distribution:
        The paper's distribution ``p``: probability vector for the
        number of edges added by an OLD step, same encoding.
    preferential_by:
        ``'indegree'`` (the paper's rephrasing, default) or ``'total'``
        (original [CF03] total-degree preference).
    """

    alpha: float = 0.5
    beta: float = 0.5
    gamma: float = 0.5
    delta: float = 0.5
    new_edge_distribution: Tuple[float, ...] = (1.0,)
    old_edge_distribution: Tuple[float, ...] = (1.0,)
    preferential_by: str = "indegree"

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise InvalidParameterError(
                f"alpha must lie in (0, 1], got {self.alpha}"
            )
        for name in ("beta", "gamma", "delta"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise InvalidParameterError(
                    f"{name} must lie in [0, 1], got {value}"
                )
        if self.preferential_by not in _PREFERENTIAL_MODES:
            raise InvalidParameterError(
                "preferential_by must be one of "
                f"{_PREFERENTIAL_MODES}, got {self.preferential_by!r}"
            )
        # Validate the two pmfs eagerly so bad parameter vectors fail at
        # construction time, not in the middle of a long run.
        discrete_distribution_sampler(self.new_edge_distribution)
        discrete_distribution_sampler(self.old_edge_distribution)

    @property
    def mean_new_edges(self) -> float:
        """Expected number of edges added by a NEW step."""
        return sum(
            (i + 1) * prob
            for i, prob in enumerate(self.new_edge_distribution)
        )

    @property
    def mean_old_edges(self) -> float:
        """Expected number of edges added by an OLD step."""
        return sum(
            (i + 1) * prob
            for i, prob in enumerate(self.old_edge_distribution)
        )


@dataclass(frozen=True)
class StepRecord:
    """One evolution step, for history-dependent analyses.

    Attributes
    ----------
    kind:
        ``'new'`` or ``'old'``.
    vertex:
        The NEW vertex created, or the OLD initiator.
    edge_ids:
        Edge ids added by the step, in insertion order.
    """

    kind: str
    vertex: int
    edge_ids: Tuple[int, ...]


@dataclass(frozen=True)
class CooperFriezeGraph:
    """A realised Cooper–Frieze graph.

    Attributes
    ----------
    graph:
        The evolved multigraph; vertex ``n`` is the newest vertex.
    params:
        The parameter vector used.
    num_steps:
        Number of evolution steps taken (NEW + OLD).
    num_new_steps:
        Number of NEW steps (equals ``n - 1`` plus the initial vertex).
    trace:
        Per-step history (``None`` unless the graph was built with
        ``record_trace=True``).  Needed by the Theorem-2 equivalence
        analysis, which must distinguish birth edges from later OLD
        edges on the same vertex.
    checkpoint_edge_counts:
        ``checkpoint n -> num_edges`` at the end of the step that
        created vertex ``n`` (``None`` unless built with
        ``checkpoints=...``).  Because an independent run targeting
        ``n`` exits its evolution loop at exactly that step boundary,
        ``graph.prefix(n, checkpoint_edge_counts[n])`` is bit-identical
        to ``cooper_frieze_graph(n, params, seed).graph`` — the
        growth-trajectory checkpoint contract.
    """

    graph: MultiGraph
    params: CooperFriezeParams
    num_steps: int
    num_new_steps: int
    trace: Optional[Tuple[StepRecord, ...]] = None
    checkpoint_edge_counts: Optional[Dict[int, int]] = None

    @property
    def n(self) -> int:
        """Number of vertices."""
        return self.graph.num_vertices


class _PreferentialChooser:
    """Terminal/initiator vertex chooser shared by NEW and OLD steps."""

    def __init__(self, mode: str):
        self._mode = mode
        self._urn = EndpointUrn()

    def record_edge(self, tail: int, head: int) -> None:
        """Update preference weights after an edge insertion."""
        if self._mode == "indegree":
            self._urn.add(head)
        else:
            self._urn.add(tail)
            self._urn.add(head)

    def choose(
        self,
        rng: random.Random,
        num_vertices: int,
        uniform_probability: float,
    ) -> int:
        """Pick a vertex: uniform w.p. ``uniform_probability``, else by weight."""
        if rng.random() < uniform_probability or len(self._urn) == 0:
            return rng.randint(1, num_vertices)
        return self._urn.sample(rng)


def cooper_frieze_graph(
    n: int,
    params: Optional[CooperFriezeParams] = None,
    seed: RandomLike = None,
    max_steps: Optional[int] = None,
    record_trace: bool = False,
    checkpoints: Optional[Sequence[int]] = None,
) -> CooperFriezeGraph:
    """Evolve a Cooper–Frieze graph until it has ``n`` vertices.

    Parameters
    ----------
    n:
        Target number of vertices, at least 2.
    params:
        Model parameters (defaults to :class:`CooperFriezeParams()`).
    seed:
        Seed or generator.
    max_steps:
        Safety cap on evolution steps; defaults to a generous multiple
        of the expected ``n / alpha``.  Exceeding it raises
        :class:`GraphConstructionError` (it indicates a pathological
        parameter vector rather than bad luck).
    record_trace:
        Keep a per-step :class:`StepRecord` history on the result.
    checkpoints:
        Vertex counts (each in ``2 .. n``) at which to record the edge
        count, sampled at the end of the step that created the
        checkpoint vertex — see
        :attr:`CooperFriezeGraph.checkpoint_edge_counts`.  The number
        of evolution steps is random, so unlike the fixed-arity models
        these marks cannot be computed after the fact; they must be
        observed while the single shared realisation evolves.

    Returns
    -------
    CooperFriezeGraph
    """
    if n < 2:
        raise InvalidParameterError(
            f"Cooper-Frieze graph needs n >= 2, got {n}"
        )
    if params is None:
        params = CooperFriezeParams()
    pending = sorted(set(checkpoints)) if checkpoints else []
    if pending and (pending[0] < 2 or pending[-1] > n):
        raise InvalidParameterError(
            f"checkpoints must lie in [2, {n}], got {pending}"
        )
    rng = make_rng(seed)

    if max_steps is None:
        # Mean steps to reach n vertices is (n - 1) / alpha; 20x + slack
        # makes a spurious trip astronomically unlikely.
        max_steps = int(20 * (n - 1) / params.alpha) + 100

    new_count_sampler = discrete_distribution_sampler(
        params.new_edge_distribution
    )
    old_count_sampler = discrete_distribution_sampler(
        params.old_edge_distribution
    )

    graph = MultiGraph(1)
    graph.add_edge(1, 1)  # initial vertex with a self-loop
    chooser = _PreferentialChooser(params.preferential_by)
    chooser.record_edge(1, 1)

    num_steps = 0
    num_new_steps = 0
    trace = [] if record_trace else None
    marks: Dict[int, int] = {}
    while graph.num_vertices < n:
        num_steps += 1
        if num_steps > max_steps:
            raise GraphConstructionError(
                f"evolution exceeded {max_steps} steps before reaching "
                f"{n} vertices (alpha={params.alpha})"
            )
        if rng.random() < params.alpha:
            num_new_steps += 1
            record = _procedure_new(
                graph, chooser, rng, params, new_count_sampler
            )
        else:
            record = _procedure_old(
                graph, chooser, rng, params, old_count_sampler
            )
        if trace is not None:
            trace.append(record)
        # NEW steps add exactly one vertex, so each checkpoint is hit
        # exactly; recording at the step boundary matches where an
        # independent run targeting the checkpoint would have stopped.
        while pending and graph.num_vertices >= pending[0]:
            marks[pending.pop(0)] = graph.num_edges

    return CooperFriezeGraph(
        graph=graph,
        params=params,
        num_steps=num_steps,
        num_new_steps=num_new_steps,
        trace=tuple(trace) if trace is not None else None,
        checkpoint_edge_counts=marks if checkpoints else None,
    )


def _procedure_new(
    graph: MultiGraph,
    chooser: _PreferentialChooser,
    rng: random.Random,
    params: CooperFriezeParams,
    count_sampler,
) -> StepRecord:
    """Add a new vertex with q-distributed out-edges to existing vertices."""
    existing = graph.num_vertices
    v = graph.add_vertex()
    num_edges = count_sampler.sample(rng) + 1
    edge_ids = []
    for _ in range(num_edges):
        head = chooser.choose(rng, existing, params.beta)
        edge_ids.append(graph.add_edge(v, head))
        chooser.record_edge(v, head)
    return StepRecord(kind="new", vertex=v, edge_ids=tuple(edge_ids))


def _procedure_old(
    graph: MultiGraph,
    chooser: _PreferentialChooser,
    rng: random.Random,
    params: CooperFriezeParams,
    count_sampler,
) -> StepRecord:
    """Add p-distributed out-edges from an existing initiator vertex."""
    existing = graph.num_vertices
    initiator = chooser.choose(rng, existing, params.delta)
    num_edges = count_sampler.sample(rng) + 1
    edge_ids = []
    for _ in range(num_edges):
        head = chooser.choose(rng, existing, params.gamma)
        edge_ids.append(graph.add_edge(initiator, head))
        chooser.record_edge(initiator, head)
    return StepRecord(
        kind="old", vertex=initiator, edge_ids=tuple(edge_ids)
    )

"""The Molloy–Reed configuration model.

The *pure random graph* substrate the paper contrasts with evolving
models (Section "Related works"): a graph drawn uniformly from
multigraphs with a prescribed degree sequence.  Crucially — and this is
the property the paper highlights — **neighbor degrees are independent**
here, unlike in evolving models where degree and age correlate.  The
Adamic et al. high-degree search analysis (experiment E7) is carried out
on this model.

Construction is the standard stub-matching procedure: expand vertex
``v`` into ``degree(v)`` half-edges, shuffle, and pair consecutive
half-edges.  Self-loops and parallel edges are kept by default (degrees
stay exact); ``simple=True`` resamples until a simple graph appears,
which is practical only for bounded-degree sequences.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import GraphConstructionError, InvalidParameterError
from repro.graphs.base import MultiGraph
from repro.graphs.power_law import power_law_degree_sequence
from repro.rng import RandomLike, make_rng

__all__ = [
    "configuration_model_graph",
    "power_law_configuration_graph",
]


def configuration_model_graph(
    degrees: Sequence[int],
    seed: RandomLike = None,
    simple: bool = False,
    max_attempts: int = 100,
) -> MultiGraph:
    """Sample a configuration-model multigraph with the given degrees.

    Parameters
    ----------
    degrees:
        Desired degree of vertex ``i + 1`` at position ``i``; the sum
        must be even.
    seed:
        Seed or generator.
    simple:
        If true, reject-and-resample until the pairing has no self-loops
        or parallel edges (exact uniform distribution over simple
        realisations).
    max_attempts:
        Rejection cap when ``simple=True``.

    Returns
    -------
    MultiGraph
        Vertices ``1 .. len(degrees)`` with exactly the requested
        degrees (when ``simple=False``).
    """
    if not degrees:
        raise InvalidParameterError("degree sequence must be non-empty")
    if any(d < 0 for d in degrees):
        raise InvalidParameterError("degrees must be non-negative")
    if sum(degrees) % 2 == 1:
        raise InvalidParameterError(
            f"degree sum must be even, got {sum(degrees)}"
        )
    rng = make_rng(seed)

    attempts = max_attempts if simple else 1
    for _ in range(attempts):
        graph = _pair_stubs(degrees, rng)
        if not simple or _is_simple(graph):
            return graph
    raise GraphConstructionError(
        f"no simple pairing found in {max_attempts} attempts; "
        "the degree sequence is too heavy-tailed for rejection sampling"
    )


def _pair_stubs(degrees: Sequence[int], rng) -> MultiGraph:
    """One stub-matching pass: shuffle half-edges and pair them up."""
    stubs: List[int] = []
    for index, degree in enumerate(degrees):
        stubs.extend([index + 1] * degree)
    rng.shuffle(stubs)
    graph = MultiGraph(len(degrees))
    for i in range(0, len(stubs), 2):
        graph.add_edge(stubs[i], stubs[i + 1])
    return graph


def _is_simple(graph: MultiGraph) -> bool:
    """Whether the multigraph has no self-loops or parallel edges."""
    seen = set()
    for _, tail, head in graph.edges():
        if tail == head:
            return False
        key = (tail, head) if tail < head else (head, tail)
        if key in seen:
            return False
        seen.add(key)
    return True


def power_law_configuration_graph(
    n: int,
    exponent: float,
    min_degree: int = 1,
    max_degree: Optional[int] = None,
    seed: RandomLike = None,
) -> MultiGraph:
    """Convenience: Molloy–Reed graph with a power-law degree sequence.

    This is exactly the "random power law model whose exponent k is
    strictly between 2 and 3" of Adamic et al. as used in experiment E7.
    The degree sequence and the pairing share one seed stream, so a
    single integer reproduces the whole graph.
    """
    rng = make_rng(seed)
    degrees = power_law_degree_sequence(
        n, exponent, min_degree=min_degree, max_degree=max_degree, seed=rng
    )
    return configuration_model_graph(degrees, seed=rng)

"""The Móri random tree and its merged ``m``-out variant.

This is the model of Theorem 1.  Construction (paper, Section 1):

* at time ``t = 2`` the tree has vertices ``1, 2`` and the single edge
  ``2 -> 1``;
* at each later time ``t``, a new vertex ``t`` is added together with
  one outgoing edge to an older vertex ``u``, chosen with probability
  proportional to ``p * d_t(u) + (1 - p)`` where ``d_t(u)`` is the
  **indegree** of ``u`` at time ``t`` and ``0 < p <= 1``.

The mixture weight is sampled *exactly* (not by mean-field
approximation): at time ``t`` the total preferential mass is
``p * (t - 2)`` (one unit per existing edge) and the total uniform mass
is ``(1 - p) * (t - 1)`` (one unit per existing vertex), so we flip a
coin with probability ``p(t-2) / (p(t-2) + (1-p)(t-1))`` and then either
draw the head of a uniformly random existing edge (which is exactly
indegree-proportional) or a uniformly random existing vertex.  Both
draws are O(1) via :class:`repro.graphs.sampling.EndpointUrn`.

The **merged m-out Móri graph** ``G^(m)_t`` of size ``n`` (paper,
Section 1) is obtained by building the Móri tree on ``n * m`` vertices
and merging vertices ``m*(i-1)+1 .. m*i`` into the single vertex ``i``;
the result is a connected multigraph (self-loops and parallel edges are
kept) in which every vertex has out-degree ``m``.

Degenerate notes:

* ``p = 1`` (pure indegree preference) makes vertex 2 weight-0 forever,
  so the tree is a star centred at vertex 1 with vertex 2 as a leaf —
  this is what the stated weight formula implies and Theorem 1 covers
  it (finding a specific leaf of a star still costs ~n/2 requests).
* ``p -> 0`` approaches the uniform random recursive tree; the paper
  requires ``p > 0`` but the implementation accepts ``p = 0`` for
  ablation experiments (E13).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.errors import InvalidParameterError
from repro.graphs.base import MultiGraph
from repro.graphs.sampling import EndpointUrn
from repro.rng import RandomLike, make_rng

__all__ = [
    "MoriTree",
    "MergedMoriGraph",
    "mori_tree",
    "merged_mori_graph",
    "mori_edges_per_step_graph",
]


def _validate_p(p: float) -> None:
    if not 0.0 <= p <= 1.0:
        raise InvalidParameterError(
            f"attachment parameter p must lie in [0, 1], got {p}"
        )


@dataclass(frozen=True)
class MoriTree:
    """A realised Móri random tree.

    Attributes
    ----------
    p:
        The preferential/uniform mixture parameter used to build it.
    graph:
        The tree as a :class:`MultiGraph`; edge ``t - 2`` is the edge
        added at time ``t`` (edge 0 is ``2 -> 1``).
    parents:
        ``parents[k]`` is ``N_k``, the destination of vertex ``k``'s
        outgoing edge, for ``2 <= k <= n``; entries 0 and 1 are 0
        (vertex 1 has no parent).  This is the paper's parent vector —
        the whole probabilistic analysis (event ``E_{a,b}``, Lemma 2)
        is phrased in terms of it.
    """

    p: float
    graph: MultiGraph
    parents: Tuple[int, ...]

    @property
    def n(self) -> int:
        """Number of vertices."""
        return self.graph.num_vertices

    def parent(self, k: int) -> int:
        """``N_k``, the father of vertex ``k`` (``k >= 2``)."""
        if not 2 <= k <= self.n:
            raise InvalidParameterError(
                f"vertex {k} has no parent (valid range: 2..{self.n})"
            )
        return self.parents[k]

    def indegree_at_time(self, u: int, t: int) -> int:
        """Indegree of vertex ``u`` just *before* vertex ``t`` attaches.

        Counts edges from vertices ``2 .. t-1`` into ``u``.  Used by the
        exact-probability machinery to recompute attachment weights.
        """
        if not 1 <= u < t:
            raise InvalidParameterError(
                f"vertex {u} does not exist before time {t}"
            )
        return sum(1 for k in range(2, t) if self.parents[k] == u)

    def satisfies_event(self, a: int, b: int) -> bool:
        """Whether the realisation lies in ``E_{a,b} = {N_k <= a, a < k <= b}``."""
        if not 1 <= a <= b <= self.n:
            raise InvalidParameterError(
                f"need 1 <= a <= b <= n={self.n}, got a={a}, b={b}"
            )
        return all(self.parents[k] <= a for k in range(a + 1, b + 1))


@dataclass(frozen=True)
class MergedMoriGraph:
    """A realised merged ``m``-out Móri graph ``G^(m)_t``.

    Attributes
    ----------
    m:
        Merge arity: each graph vertex absorbs ``m`` consecutive tree
        vertices.
    p:
        Attachment parameter of the underlying tree.
    graph:
        The ``n``-vertex multigraph (self-loops and parallel edges kept).
    tree:
        The underlying ``n * m``-vertex Móri tree, or ``None`` if the
        caller asked not to retain it.
    """

    m: int
    p: float
    graph: MultiGraph
    tree: Optional[MoriTree] = field(repr=False, default=None)

    @property
    def n(self) -> int:
        """Number of merged vertices."""
        return self.graph.num_vertices

    def tree_vertex_to_merged(self, j: int) -> int:
        """The merged vertex absorbing tree vertex ``j``."""
        if j < 1:
            raise InvalidParameterError(f"tree vertex must be >= 1, got {j}")
        return (j - 1) // self.m + 1


def mori_tree(n: int, p: float, seed: RandomLike = None) -> MoriTree:
    """Sample a Móri random tree on ``n`` vertices with parameter ``p``.

    Parameters
    ----------
    n:
        Number of vertices, at least 2.
    p:
        Mixture parameter in ``[0, 1]``; the paper's theorems assume
        ``0 < p <= 1`` but ``p = 0`` (uniform random recursive tree) is
        accepted for ablations.
    seed:
        Seed or generator for reproducibility.

    Returns
    -------
    MoriTree
        The realised tree with its parent vector.
    """
    if n < 2:
        raise InvalidParameterError(f"Mori tree needs n >= 2, got {n}")
    _validate_p(p)
    rng = make_rng(seed)

    graph = MultiGraph(2)
    graph.add_edge(2, 1)
    parents = [0, 0, 1]

    urn = EndpointUrn()
    urn.add(1)  # head of the initial edge 2 -> 1

    for t in range(3, n + 1):
        num_edges = t - 2      # edges among the t - 1 existing vertices
        num_vertices = t - 1
        preferential_mass = p * num_edges
        total_mass = preferential_mass + (1.0 - p) * num_vertices
        if rng.random() * total_mass < preferential_mass:
            u = urn.sample(rng)
        else:
            u = rng.randint(1, num_vertices)
        graph.add_vertex()
        graph.add_edge(t, u)
        parents.append(u)
        urn.add(u)

    return MoriTree(p=p, graph=graph, parents=tuple(parents))


def merged_mori_graph(
    n: int,
    m: int,
    p: float,
    seed: RandomLike = None,
    keep_tree: bool = True,
) -> MergedMoriGraph:
    """Sample the merged ``m``-out Móri graph on ``n`` vertices.

    Builds the Móri tree on ``n * m`` vertices and merges every ``m``
    consecutive tree vertices into one graph vertex, mapping tree vertex
    ``j`` to graph vertex ``⌈j / m⌉``.  Every merged vertex except
    vertex 1 has out-degree exactly ``m`` in the construction
    orientation (vertex 1 absorbs tree vertex 1, which has no out-edge,
    so it has out-degree ``m - 1``).

    Parameters
    ----------
    n:
        Number of merged vertices, at least 2.
    m:
        Merge arity, at least 1.
    p:
        Mixture parameter of the underlying tree.
    seed:
        Seed or generator.
    keep_tree:
        If true (default), retain the underlying tree in the result so
        equivalence experiments can inspect the parent vector.

    Returns
    -------
    MergedMoriGraph
    """
    if n < 2:
        raise InvalidParameterError(f"merged Mori graph needs n >= 2, got {n}")
    if m < 1:
        raise InvalidParameterError(f"merge arity m must be >= 1, got {m}")
    _validate_p(p)

    tree = mori_tree(n * m, p, seed)
    graph = MultiGraph(n)
    for k in range(2, n * m + 1):
        tail = (k - 1) // m + 1
        head = (tree.parents[k] - 1) // m + 1
        graph.add_edge(tail, head)

    return MergedMoriGraph(
        m=m, p=p, graph=graph, tree=tree if keep_tree else None
    )


def mori_edges_per_step_graph(
    n: int,
    m: int,
    p: float,
    seed: RandomLike = None,
) -> MultiGraph:
    """The paper's *other* higher-out-degree Móri variant.

    "Variants with higher out-degree can be obtained either by adding
    more edges per time step, or, say, by building an nm-vertex graph
    and merging..." (paper, Related works).  This is the first option:
    starting from vertices ``1, 2`` joined by ``m`` parallel edges,
    each new vertex ``t`` adds ``m`` outgoing edges, each target drawn
    independently with probability proportional to
    ``p * d(u) + (1 - p)`` where ``d`` is the *current* indegree —
    updated after every single edge, so within-step reinforcement is
    exact, mirroring the merged construction's statistics.

    Returns a connected multigraph with ``n * m - m`` + ``m`` edges
    (``m`` per vertex from 2 to n, plus the initial bundle's share):
    concretely every vertex except vertex 1 has out-degree exactly
    ``m``.

    Parameters
    ----------
    n:
        Number of vertices, at least 2.
    m:
        Out-degree of each arriving vertex, at least 1.
    p:
        Indegree/uniform mixture parameter in ``[0, 1]``.
    seed:
        Seed or generator.
    """
    if n < 2:
        raise InvalidParameterError(
            f"edges-per-step Mori graph needs n >= 2, got {n}"
        )
    if m < 1:
        raise InvalidParameterError(f"m must be >= 1, got {m}")
    _validate_p(p)
    rng = make_rng(seed)

    graph = MultiGraph(2)
    urn = EndpointUrn()
    for _ in range(m):
        graph.add_edge(2, 1)
        urn.add(1)

    num_edges = m
    for t in range(3, n + 1):
        graph.add_vertex()
        num_vertices = t - 1
        for _ in range(m):
            preferential_mass = p * num_edges
            total_mass = preferential_mass + (1.0 - p) * num_vertices
            if rng.random() * total_mass < preferential_mass:
                u = urn.sample(rng)
            else:
                u = rng.randint(1, num_vertices)
            graph.add_edge(t, u)
            urn.add(u)
            num_edges += 1
    return graph

"""Discrete power-law degree sequences.

Substrate for the *pure random graph* models the paper discusses
(Molloy–Reed [MR95]) and the Adamic et al. search experiments (E7),
which assume a degree distribution ``P(delta) ∝ delta^{-k}`` with
exponent ``k`` strictly between 2 and 3.

Sampling is by exact inverse-CDF over the truncated support
``[min_degree, max_degree]`` — no continuous approximation — so the
empirical pmf of a large sample converges to the true discrete zeta
weights and statistical tests in the suite can use tight tolerances.
"""

from __future__ import annotations

import bisect
import itertools
import math
from typing import List, Optional, Sequence

from repro.errors import InvalidParameterError
from repro.rng import RandomLike, make_rng

__all__ = [
    "power_law_weights",
    "power_law_pmf",
    "power_law_mean",
    "power_law_degree_sequence",
    "is_graphical",
]


def power_law_weights(
    exponent: float, min_degree: int, max_degree: int
) -> List[float]:
    """Unnormalised weights ``d^{-exponent}`` for ``d`` in the support.

    Parameters
    ----------
    exponent:
        Power-law exponent ``k`` (must be > 0; the scale-free regime of
        interest is ``k in (2, 3)``).
    min_degree, max_degree:
        Inclusive support bounds, ``1 <= min_degree <= max_degree``.
    """
    if exponent <= 0:
        raise InvalidParameterError(
            f"exponent must be > 0, got {exponent}"
        )
    if min_degree < 1:
        raise InvalidParameterError(
            f"min_degree must be >= 1, got {min_degree}"
        )
    if max_degree < min_degree:
        raise InvalidParameterError(
            f"max_degree ({max_degree}) must be >= min_degree "
            f"({min_degree})"
        )
    return [
        d ** (-exponent) for d in range(min_degree, max_degree + 1)
    ]


def power_law_pmf(
    exponent: float, min_degree: int, max_degree: int
) -> List[float]:
    """Normalised pmf over ``[min_degree, max_degree]``."""
    weights = power_law_weights(exponent, min_degree, max_degree)
    total = sum(weights)
    return [w / total for w in weights]


def power_law_mean(
    exponent: float, min_degree: int, max_degree: int
) -> float:
    """Expected value of the truncated power law."""
    pmf = power_law_pmf(exponent, min_degree, max_degree)
    return sum(
        d * prob
        for d, prob in zip(range(min_degree, max_degree + 1), pmf)
    )


def power_law_degree_sequence(
    n: int,
    exponent: float,
    min_degree: int = 1,
    max_degree: Optional[int] = None,
    seed: RandomLike = None,
) -> List[int]:
    """Sample ``n`` iid degrees from a truncated discrete power law.

    The returned sequence always has an even sum (required for the
    configuration model): if the raw sample sums to an odd number, one
    unit of degree is added to a uniformly random entry that can absorb
    it — a perturbation of a single half-edge among ``Θ(n)``.

    Parameters
    ----------
    n:
        Sequence length, at least 1.
    exponent:
        Power-law exponent ``k``.
    min_degree:
        Smallest degree (default 1).
    max_degree:
        Largest degree; defaults to ``n - 1`` (the natural structural
        cutoff: a simple graph cannot exceed it).
    seed:
        Seed or generator.

    Returns
    -------
    list of int
        Degrees, even sum, each in ``[min_degree, max_degree + 1]``
        (the ``+ 1`` only via the parity fix and only if room allows —
        otherwise the fixed entry stays within the cutoff and a
        different entry is chosen).
    """
    if n < 1:
        raise InvalidParameterError(f"n must be >= 1, got {n}")
    if max_degree is None:
        max_degree = max(min_degree, n - 1)
    rng = make_rng(seed)

    weights = power_law_weights(exponent, min_degree, max_degree)
    cumulative = list(itertools.accumulate(weights))
    total = cumulative[-1]

    degrees = [
        min_degree
        + bisect.bisect_left(cumulative, rng.random() * total)
        for _ in range(n)
    ]
    if sum(degrees) % 2 == 1:
        _fix_parity(degrees, max_degree, rng)
    return degrees


def _fix_parity(degrees: List[int], max_degree: int, rng) -> None:
    """Add one to a random entry with headroom; fall back to subtracting."""
    candidates = [
        i for i, d in enumerate(degrees) if d < max_degree
    ]
    if candidates:
        degrees[rng.choice(candidates)] += 1
        return
    # Every entry is at the cutoff: subtract instead (still >= 1 because
    # max_degree >= min_degree >= 1 and the sum was odd, so some entry
    # can spare a unit unless max_degree == 1 and n is odd — then bump
    # is impossible and we drop one vertex's degree to 0, documented as
    # a corner case).
    index = rng.randrange(len(degrees))
    degrees[index] -= 1


def is_graphical(degrees: Sequence[int]) -> bool:
    """Erdős–Gallai test: is ``degrees`` realisable as a *simple* graph?

    The configuration model itself produces multigraphs, so this test is
    not needed for construction — it is exposed for analyses that want
    to know whether a simple realisation exists.
    """
    if any(d < 0 for d in degrees):
        return False
    if sum(degrees) % 2 == 1:
        return False
    if not degrees:
        return True
    ordered = sorted(degrees, reverse=True)
    n = len(ordered)
    prefix = list(itertools.accumulate(ordered))
    for k in range(1, n + 1):
        right = k * (k - 1) + sum(
            min(d, k) for d in ordered[k:]
        )
        if prefix[k - 1] > right:
            return False
    return True

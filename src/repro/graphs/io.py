"""Plain-text persistence for graphs.

Edge-list format, one line per edge in edge-id order::

    # repro edge list v1
    # vertices: 12345
    2 1
    3 1
    ...

Writing in edge-id order makes the file a faithful serialisation of the
*labeled multigraph with edge identities* — loading reproduces exactly
the same object (an equality-tested invariant), so long experiment runs
can checkpoint their graphs.

Faithful means bit-faithful, not merely isomorphic: parallel edges each
get their own line (the file's line order IS the edge-id order, and
``load_edge_list`` re-adds them in that order, so every edge keeps its
id), self-loops keep their multiplicity, and endpoint orientation
(tail, head) survives.  ``tests/test_graphs_utils.py`` pins this on an
adversarial graph — loops, parallel bundles, both orientations — by
comparing full labeled edge lists and frozen-snapshot hashes, because
the walk oracles read incidence slots by edge id: an id-permuting
round-trip would satisfy graph equality of simple graphs yet diverge
mid-search.
"""

from __future__ import annotations

import os
from typing import Union

from repro.errors import ReproError
from repro.graphs.base import MultiGraph

__all__ = ["save_edge_list", "load_edge_list"]

_HEADER = "# repro edge list v1"


def save_edge_list(graph: MultiGraph, path: Union[str, os.PathLike]) -> None:
    """Write ``graph`` to ``path`` in the edge-list format above."""
    with open(path, "w", encoding="ascii") as handle:
        handle.write(f"{_HEADER}\n")
        handle.write(f"# vertices: {graph.num_vertices}\n")
        for _, tail, head in graph.edges():
            handle.write(f"{tail} {head}\n")


def load_edge_list(path: Union[str, os.PathLike]) -> MultiGraph:
    """Read a graph previously written by :func:`save_edge_list`."""
    with open(path, "r", encoding="ascii") as handle:
        header = handle.readline().rstrip("\n")
        if header != _HEADER:
            raise ReproError(
                f"{path}: unrecognised header {header!r} "
                f"(expected {_HEADER!r})"
            )
        vertex_line = handle.readline().rstrip("\n")
        prefix = "# vertices: "
        if not vertex_line.startswith(prefix):
            raise ReproError(
                f"{path}: missing vertex-count line, got {vertex_line!r}"
            )
        try:
            num_vertices = int(vertex_line[len(prefix):])
        except ValueError as exc:
            raise ReproError(
                f"{path}: bad vertex count in {vertex_line!r}"
            ) from exc

        graph = MultiGraph(num_vertices)
        for line_number, line in enumerate(handle, start=3):
            parts = line.split()
            if not parts:
                continue
            if len(parts) != 2:
                raise ReproError(
                    f"{path}:{line_number}: expected 'tail head', "
                    f"got {line.rstrip()!r}"
                )
            try:
                tail, head = int(parts[0]), int(parts[1])
            except ValueError as exc:
                raise ReproError(
                    f"{path}:{line_number}: non-integer endpoint in "
                    f"{line.rstrip()!r}"
                ) from exc
            graph.add_edge(tail, head)
    return graph

"""Memory-mapped on-disk corpus of generated CSR graph snapshots.

Generating a scale-free graph is now the dominant cost of many
experiment cells (the searches themselves were vectorised in the
walker-ensemble PR, the generators in :mod:`repro.graphs.fastgen`), and
the *same* snapshot — identified entirely by ``(model parameters, n,
seed)`` — recurs across experiments, grids and repeated runs.  A
:class:`GraphCorpus` persists each snapshot once:

* one **CSR blob** per entry — the seven int64 arrays of a
  :class:`~repro.graphs.frozen.FrozenGraph` (endpoint columns, CSR
  offsets, incidence slots, directed degrees) concatenated
  little-endian, loaded back with ``numpy.memmap`` so the buffers are
  shared, lazily paged, and **read-only** (a write through a loaded
  array raises, preserving the frozen-graph immutability contract);
* one **JSON manifest** per entry carrying the identifying key
  (model, canonical parameter spec, its sha256 hash, ``n``, ``seed``),
  the array layout, and a sha256 digest of the blob so
  :meth:`GraphCorpus.verify` (and ``repro corpus verify``) can detect
  any byte-level corruption.

Entries are deterministic — the same key always serialises to the same
bytes, with no timestamps — and are committed atomically (temp file +
``os.replace``, blob before manifest), so concurrent writers racing on
the same key are harmless: whichever order their renames land in, the
files always hold one complete, valid entry (this mirrors the
ResultStore's shared-directory guarantees, with content-identity making
the corpus case strictly easier).  A reader that finds anything
unusable treats it as a miss and rebuilds; only ``verify`` judges.

The corpus activates through the ``REPRO_CORPUS_DIR`` environment
variable (see :func:`active_corpus`): the generator-aware build helper
in :mod:`repro.core.trials` consults it on every independent frozen
snapshot build, and the variable is inherited by worker processes.
Hit/miss counters are process-local; the CLI reports the parent
process's tally after a run.

numpy is required (the whole point is mapped array sharing); without
it :func:`active_corpus` reports no corpus, so callers silently fall
back to building in memory, and explicit :class:`GraphCorpus` use
raises :class:`~repro.errors.EngineUnavailableError`.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Tuple

from repro.errors import EngineUnavailableError, ExperimentError
from repro.graphs.frozen import FrozenGraph, freeze
from repro.ioatomic import write_atomic

try:  # pragma: no cover - exercised implicitly by every test run
    import numpy as _np

    HAVE_CORPUS = True
except ImportError:  # pragma: no cover - the container always has numpy
    _np = None
    HAVE_CORPUS = False

__all__ = [
    "HAVE_CORPUS",
    "CORPUS_SCHEMA",
    "CORPUS_DIR_VARIABLE",
    "GraphCorpus",
    "active_corpus",
    "corpus_stats",
    "reset_corpus_stats",
]

CORPUS_SCHEMA = "repro-corpus/v1"
CORPUS_DIR_VARIABLE = "REPRO_CORPUS_DIR"

#: Array names in blob order; lengths are functions of (n, num_edges).
_ARRAY_NAMES = (
    "tails",
    "heads",
    "offsets",
    "slot_edges",
    "slot_targets",
    "indegree",
    "outdegree",
)

_STATS = {"hits": 0, "misses": 0}


def corpus_stats() -> Dict[str, int]:
    """This process's corpus hit/miss tally (since the last reset)."""
    return dict(_STATS)


def reset_corpus_stats() -> None:
    """Zero the hit/miss tally (one CLI run = one tally)."""
    _STATS["hits"] = 0
    _STATS["misses"] = 0


def active_corpus() -> Optional["GraphCorpus"]:
    """The corpus named by ``REPRO_CORPUS_DIR``, or ``None``.

    ``None`` when the variable is unset/empty or numpy is missing —
    the build paths silently fall back to in-memory construction, so
    setting the variable can never make a run fail.
    """
    root = os.environ.get(CORPUS_DIR_VARIABLE)
    if not root or not HAVE_CORPUS:
        return None
    return GraphCorpus(root)


def _require_corpus_engine() -> None:
    if not HAVE_CORPUS:
        raise EngineUnavailableError(
            "the graph corpus requires numpy, which is not available"
        )


def _spec_hash(spec: Mapping[str, Any]) -> str:
    """Canonical-JSON sha256 of a family spec (tuples == lists)."""
    payload = json.dumps(
        dict(spec), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class GraphCorpus:
    """A directory of memory-mapped frozen-graph snapshots."""

    def __init__(self, root):
        _require_corpus_engine()
        self.root = os.fspath(root)

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------

    def stem_for(self, spec: Mapping[str, Any], n: int, seed: int) -> str:
        """Path stem (no extension) of the entry for this key."""
        model = str(spec.get("model", "adhoc"))
        digest = _spec_hash(spec)[:16]
        return os.path.join(self.root, model, f"n{n}-s{seed}-{digest}")

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------

    def get(
        self, spec: Mapping[str, Any], n: int, seed: int
    ) -> Optional[FrozenGraph]:
        """The stored snapshot for this key, or ``None``.

        Cheap by design: structural checks only (schema, key match,
        blob size) — no digesting.  Anything unusable is a miss, never
        an error; :meth:`verify` is the integrity judge.
        """
        stem = self.stem_for(spec, n, seed)
        try:
            with open(stem + ".json", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
        if not self._manifest_matches(manifest, spec, n, seed):
            return None
        try:
            blob = _np.memmap(stem + ".bin", dtype="<i8", mode="r")
        except (OSError, ValueError):
            return None
        if blob.size * 8 != manifest["blob_bytes"]:
            return None
        try:
            return self._assemble(manifest, blob)
        except (KeyError, ValueError, TypeError):
            return None

    @staticmethod
    def _manifest_matches(manifest, spec, n, seed) -> bool:
        return (
            isinstance(manifest, dict)
            and manifest.get("schema") == CORPUS_SCHEMA
            and manifest.get("n") == n
            and manifest.get("seed") == seed
            and manifest.get("params_hash") == _spec_hash(spec)
        )

    @staticmethod
    def _assemble(manifest, blob) -> FrozenGraph:
        views = {}
        for entry in manifest["arrays"]:
            offset, length = entry["offset"], entry["length"]
            views[entry["name"]] = blob[offset:offset + length]
        tails, heads = views["tails"], views["heads"]
        snapshot = FrozenGraph(
            num_vertices=manifest["n"],
            endpoints=list(zip(tails.tolist(), heads.tolist())),
            indegree=views["indegree"].tolist(),
            outdegree=views["outdegree"].tolist(),
            offsets=views["offsets"],
            slot_edges=views["slot_edges"],
            slot_targets=views["slot_targets"],
            num_loops=manifest["num_loops"],
        )
        snapshot._pairs_cache = (tails, heads)
        return snapshot

    # ------------------------------------------------------------------
    # Write side
    # ------------------------------------------------------------------

    def put(
        self,
        spec: Mapping[str, Any],
        n: int,
        seed: int,
        graph,
        generator: str = "serial",
    ) -> str:
        """Persist a snapshot for this key; returns the manifest path.

        ``graph`` may be either backend; it is frozen if needed and
        must have ``n`` vertices.  Writes are deterministic (no
        timestamps) and atomic, blob before manifest — a reader never
        sees a manifest whose blob has not landed.
        """
        snapshot = freeze(graph)
        if snapshot.num_vertices != n:
            raise ExperimentError(
                f"corpus key says n={n} but the snapshot has "
                f"{snapshot.num_vertices} vertices"
            )
        tails, heads = snapshot._pairs()
        columns = (
            tails,
            heads,
            _np.asarray(snapshot._offsets),
            _np.asarray(snapshot._slot_edges),
            _np.asarray(snapshot._slot_targets),
            _np.asarray(snapshot._indegree),
            _np.asarray(snapshot._outdegree),
        )
        arrays = []
        chunks = []
        offset = 0
        for name, column in zip(_ARRAY_NAMES, columns):
            data = _np.ascontiguousarray(column, dtype="<i8")
            arrays.append(
                {"name": name, "offset": offset, "length": len(data)}
            )
            chunks.append(data.tobytes())
            offset += len(data)
        blob = b"".join(chunks)
        manifest = {
            "schema": CORPUS_SCHEMA,
            "model": str(spec.get("model", "adhoc")),
            "params": dict(spec),
            "params_hash": _spec_hash(spec),
            "n": n,
            "seed": seed,
            "num_edges": snapshot.num_edges,
            "num_loops": snapshot.num_self_loops(),
            "generator": generator,
            "blob_bytes": len(blob),
            "sha256": hashlib.sha256(blob).hexdigest(),
            "arrays": arrays,
        }
        stem = self.stem_for(spec, n, seed)
        os.makedirs(os.path.dirname(stem), exist_ok=True)
        write_atomic(stem + ".bin", blob, prefix=".corpus-")
        write_atomic(
            stem + ".json",
            (json.dumps(manifest, indent=2, sort_keys=True) + "\n")
            .encode("utf-8"),
            prefix=".corpus-",
        )
        return stem + ".json"

    # ------------------------------------------------------------------
    # The cache protocol
    # ------------------------------------------------------------------

    def get_or_build(
        self,
        spec: Mapping[str, Any],
        n: int,
        seed: int,
        build: Callable[[], Any],
        generator: str = "serial",
    ) -> FrozenGraph:
        """Return the stored snapshot, or build, store and return it.

        The race between concurrent builders of the same key is
        benign: both compute identical bytes (generation is seeded and
        serialisation deterministic) and both commit atomically, so
        the survivor is always one valid entry.
        """
        snapshot = self.get(spec, n, seed)
        if snapshot is not None:
            _STATS["hits"] += 1
            return snapshot
        _STATS["misses"] += 1
        snapshot = freeze(build())
        self.put(spec, n, seed, snapshot, generator=generator)
        return snapshot

    # ------------------------------------------------------------------
    # Enumeration and integrity
    # ------------------------------------------------------------------

    def entries(self) -> Iterator[Tuple[str, Dict[str, Any]]]:
        """Yield ``(manifest_path, manifest)`` pairs, sorted by path.

        Unparseable manifests yield ``(path, {})`` so callers (the
        CLI, :meth:`verify`) can report them instead of skipping
        corruption silently.
        """
        if not os.path.isdir(self.root):
            return
        for directory, _, names in sorted(os.walk(self.root)):
            for name in sorted(names):
                if not name.endswith(".json"):
                    continue
                path = os.path.join(directory, name)
                try:
                    with open(path, encoding="utf-8") as handle:
                        manifest = json.load(handle)
                    if not isinstance(manifest, dict):
                        manifest = {}
                except (OSError, json.JSONDecodeError,
                        UnicodeDecodeError):
                    manifest = {}
                yield path, manifest

    def verify(self) -> List[Tuple[str, bool, str]]:
        """Digest-check every entry; ``(path, ok, message)`` each.

        Recomputes the blob sha256 against the manifest — a single
        flipped byte anywhere in the blob fails the entry.
        """
        report = []
        for path, manifest in self.entries():
            if manifest.get("schema") != CORPUS_SCHEMA:
                report.append((path, False, "unreadable manifest"))
                continue
            blob_path = path[: -len(".json")] + ".bin"
            try:
                with open(blob_path, "rb") as handle:
                    blob = handle.read()
            except OSError as error:
                report.append((path, False, f"blob unreadable: {error}"))
                continue
            if len(blob) != manifest.get("blob_bytes"):
                report.append((
                    path, False,
                    f"blob is {len(blob)} bytes, manifest says "
                    f"{manifest.get('blob_bytes')}",
                ))
                continue
            digest = hashlib.sha256(blob).hexdigest()
            if digest != manifest.get("sha256"):
                report.append((path, False, "sha256 mismatch"))
                continue
            report.append((
                path, True,
                f"{manifest.get('model')} n={manifest.get('n')} "
                f"seed={manifest.get('seed')}",
            ))
        return report

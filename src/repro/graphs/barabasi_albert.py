"""The Barabási–Albert preferential-attachment model.

Included as the paper's Section-3 contrast: BA-style models use
**total-degree** preferential attachment, whose maximum degree grows
like ``t^{1/2}`` — too large for the paper's strong-model bound to be
non-trivial ("most rigorous results concerning the maximum degree of
scale-free graphs ... yield a maximum degree that is larger than this
limit, making our upper bound trivial").  Experiment E5 measures exactly
this contrast against the Móri tree's ``t^p`` maximum degree.

The construction follows Bollobás–Riordan [BR03]: start from one vertex
with a self-loop; each new vertex adds ``m`` edges whose targets are
drawn proportionally to *current* total degree, with the urn updated
after every single edge so within-step reinforcement is modelled
exactly (no mean-field shortcut).  Targets are restricted to previously
existing vertices, so the result is a connected multigraph without new
self-loops (the variant choice does not affect any degree asymptotics
we measure).
"""

from __future__ import annotations

from repro.errors import InvalidParameterError
from repro.graphs.base import MultiGraph
from repro.graphs.sampling import EndpointUrn
from repro.rng import RandomLike, make_rng

__all__ = ["barabasi_albert_graph"]


def barabasi_albert_graph(
    n: int, m: int = 1, seed: RandomLike = None
) -> MultiGraph:
    """Sample a Barabási–Albert multigraph on ``n`` vertices.

    Parameters
    ----------
    n:
        Number of vertices, at least 2.
    m:
        Out-degree of every vertex after the first, at least 1.
    seed:
        Seed or generator.

    Returns
    -------
    MultiGraph
        Connected multigraph; vertex 1 is the initial vertex (with its
        seed self-loop), vertex ``n`` the newest.
    """
    if n < 2:
        raise InvalidParameterError(f"BA graph needs n >= 2, got {n}")
    if m < 1:
        raise InvalidParameterError(f"BA graph needs m >= 1, got {m}")
    rng = make_rng(seed)

    graph = MultiGraph(1)
    graph.add_edge(1, 1)
    urn = EndpointUrn()
    urn.add(1, count=2)  # the self-loop contributes 2 to vertex 1's degree

    for t in range(2, n + 1):
        graph.add_vertex()
        for _ in range(m):
            target = urn.sample(rng)
            graph.add_edge(t, target)
            urn.add(target)
            urn.add(t)
    return graph

"""Shared-memory publication of frozen CSR snapshots.

A :class:`~repro.graphs.frozen.FrozenGraph` is immutable, so its CSR
arrays can be *published once* into a ``multiprocessing.shared_memory``
segment and attached read-only by any number of worker processes —
instead of pickling the whole graph into every task (the cost that
dominates per-trial dispatch at search scale).  The layout reuses the
corpus blob convention (:mod:`repro.graphs.corpus`): the seven int64
arrays (endpoint columns, CSR offsets, incidence slots, directed
degrees) concatenated little-endian, here prefixed by a length-framed
JSON header so an attach needs nothing but the segment *name*::

    [magic "REPROSHM"][uint64 header length][header JSON][pad to 8]
    [tails][heads][offsets][slot_edges][slot_targets][indegree][outdegree]

:func:`publish_graph` serialises a snapshot and returns the owner-side
:class:`SharedGraphSegment` handle (the owner — a service daemon, a
benchmark driver — is responsible for ``unlink()`` on shutdown);
:func:`attach_graph` maps a segment by name into an
:class:`ShmFrozenGraph`, a plain :class:`FrozenGraph` whose big slot
arrays are views straight into the shared buffer.  Attached views are
read-only, preserving the frozen-graph immutability contract.

numpy is optional: with it the views are zero-copy ``frombuffer``
arrays; without it they are ``memoryview.cast("q")`` windows, which
support the same indexing/slicing the stdlib-array fallback of
:class:`FrozenGraph` relies on.  Either way the endpoint list (needed
as Python tuples by the oracle request loop) is materialised once per
attach — the same copy the on-disk corpus loader pays.
"""

from __future__ import annotations

import json
import struct
from array import array
from multiprocessing import shared_memory
from typing import Any, Dict, List, Optional

from repro.errors import ExperimentError
from repro.graphs.frozen import FrozenGraph, HAVE_NUMPY, freeze

if HAVE_NUMPY:  # pragma: no branch - import mirror of frozen.py
    import numpy as _np
else:  # pragma: no cover - the container always has numpy
    _np = None

__all__ = [
    "SHM_SCHEMA",
    "SharedGraphSegment",
    "ShmFrozenGraph",
    "attach_graph",
    "publish_graph",
]

SHM_SCHEMA = "repro-shm/v1"

_MAGIC = b"REPROSHM"
_PREFIX = struct.Struct("<8sQ")

#: Array names in blob order — the corpus convention.
_ARRAY_NAMES = (
    "tails",
    "heads",
    "offsets",
    "slot_edges",
    "slot_targets",
    "indegree",
    "outdegree",
)


def _column_bytes(snapshot: FrozenGraph) -> List[bytes]:
    """The seven arrays as little-endian int64 byte strings."""
    if HAVE_NUMPY:
        tails, heads = snapshot._pairs()
        columns = (
            tails,
            heads,
            _np.asarray(snapshot._offsets),
            _np.asarray(snapshot._slot_edges),
            _np.asarray(snapshot._slot_targets),
            _np.asarray(snapshot._indegree),
            _np.asarray(snapshot._outdegree),
        )
        return [
            _np.ascontiguousarray(column, dtype="<i8").tobytes()
            for column in columns
        ]
    tails = array("q", (tail for tail, _ in snapshot._endpoints))
    heads = array("q", (head for _, head in snapshot._endpoints))
    columns = (
        tails,
        heads,
        array("q", snapshot._offsets),
        array("q", snapshot._slot_edges),
        array("q", snapshot._slot_targets),
        array("q", snapshot._indegree),
        array("q", snapshot._outdegree),
    )
    # array("q") is host-endian; every supported platform here is
    # little-endian, matching the corpus "<i8" convention.
    return [column.tobytes() for column in columns]


class SharedGraphSegment:
    """Owner-side handle of one published snapshot.

    The owner keeps the segment alive; workers attach by
    :attr:`name`.  ``close()`` drops this process's mapping,
    ``unlink()`` removes the segment system-wide (idempotent — a
    double unlink on shutdown paths is harmless).
    """

    def __init__(self, shm, header: Dict[str, Any]):
        self._shm = shm
        self.header = header
        self._unlinked = False

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def size(self) -> int:
        return self._shm.size

    def close(self) -> None:
        try:
            self._shm.close()
        except (BufferError, OSError):  # pragma: no cover - defensive
            pass

    def unlink(self) -> None:
        if self._unlinked:
            return
        self._unlinked = True
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SharedGraphSegment(name={self.name!r}, "
            f"n={self.header.get('n')}, m={self.header.get('num_edges')})"
        )


def publish_graph(graph, *, name: Optional[str] = None) -> SharedGraphSegment:
    """Serialise ``graph`` into a new shared-memory segment.

    ``graph`` may be either backend; it is frozen if needed.  Returns
    the owner handle; the caller owns the segment's lifetime and must
    ``unlink()`` it eventually (a leaked segment outlives the process).
    """
    snapshot = freeze(graph)
    chunks = _column_bytes(snapshot)
    arrays = []
    offset = 0
    for array_name, chunk in zip(_ARRAY_NAMES, chunks):
        length = len(chunk) // 8
        arrays.append(
            {"name": array_name, "offset": offset, "length": length}
        )
        offset += length
    header = {
        "schema": SHM_SCHEMA,
        "n": snapshot.num_vertices,
        "num_edges": snapshot.num_edges,
        "num_loops": snapshot.num_self_loops(),
        "arrays": arrays,
    }
    header_bytes = json.dumps(
        header, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    payload_offset = _PREFIX.size + len(header_bytes)
    payload_offset += (-payload_offset) % 8  # 8-align the arrays
    total = payload_offset + 8 * offset
    shm = shared_memory.SharedMemory(
        create=True, size=max(total, 1), name=name
    )
    try:
        shm.buf[: _PREFIX.size] = _PREFIX.pack(_MAGIC, len(header_bytes))
        shm.buf[
            _PREFIX.size: _PREFIX.size + len(header_bytes)
        ] = header_bytes
        cursor = payload_offset
        for chunk in chunks:
            shm.buf[cursor: cursor + len(chunk)] = chunk
            cursor += len(chunk)
    except BaseException:  # pragma: no cover - allocation races only
        shm.close()
        shm.unlink()
        raise
    return SharedGraphSegment(shm, header)


class ShmFrozenGraph(FrozenGraph):
    """A :class:`FrozenGraph` whose CSR arrays live in shared memory.

    Behaviourally identical to any other snapshot — same queries, same
    immutability — plus a reference to the mapped segment so the
    buffer outlives the views.  Drop with :meth:`close` (or just let
    the worker process exit; attached mappings do not pin the segment
    once the owner unlinks it).
    """

    __slots__ = ("_segment", "shm_name")

    def close(self) -> None:
        """Release this process's mapping of the segment.

        The numpy/memoryview slices export the buffer, so they are
        dropped first; the graph is unusable afterwards.
        """
        self._offsets = None
        self._slot_edges = None
        self._slot_targets = None
        self._pairs_cache = None
        segment = self._segment
        self._segment = None
        if segment is not None:
            try:
                segment.close()
            except (BufferError, OSError):  # pragma: no cover
                pass


def _attach_segment(name: str):
    """Map an existing segment without resource-tracker interference.

    Before Python 3.13 (``track=False``) the resource tracker of an
    *attaching* process registers the segment and unlinks it when that
    process exits — destroying a segment it never owned.  On those
    versions the registration is suppressed at the source (the
    after-the-fact ``unregister`` workaround floods the shared tracker
    with duplicate messages when several forked workers attach the
    same segment).
    """
    try:
        return shared_memory.SharedMemory(
            name=name, create=False, track=False
        )
    except TypeError:
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name, create=False)
        finally:
            resource_tracker.register = original


def attach_graph(name: str) -> ShmFrozenGraph:
    """Attach the published snapshot ``name`` from this process.

    Raises :class:`FileNotFoundError` if no such segment exists (the
    owner was never started, or already unlinked it) and
    :class:`~repro.errors.ExperimentError` if the segment is not a
    published graph.
    """
    shm = _attach_segment(name)
    try:
        magic, header_length = _PREFIX.unpack_from(shm.buf, 0)
        if magic != _MAGIC:
            raise ExperimentError(
                f"shared-memory segment {name!r} is not a published "
                "graph (bad magic)"
            )
        header = json.loads(
            bytes(shm.buf[_PREFIX.size: _PREFIX.size + header_length])
        )
        if header.get("schema") != SHM_SCHEMA:
            raise ExperimentError(
                f"shared-memory segment {name!r} has schema "
                f"{header.get('schema')!r}, expected {SHM_SCHEMA!r}"
            )
        payload_offset = _PREFIX.size + header_length
        payload_offset += (-payload_offset) % 8
        total_words = sum(
            entry["length"] for entry in header["arrays"]
        )
        views: Dict[str, Any] = {}
        if HAVE_NUMPY:
            base = _np.frombuffer(
                shm.buf, dtype="<i8",
                count=total_words, offset=payload_offset,
            )
            base.flags.writeable = False
        else:
            base = memoryview(shm.buf)[
                payload_offset: payload_offset + 8 * total_words
            ].cast("q").toreadonly()
        for entry in header["arrays"]:
            lo = entry["offset"]
            views[entry["name"]] = base[lo: lo + entry["length"]]
        tails, heads = views["tails"], views["heads"]
        snapshot = ShmFrozenGraph(
            num_vertices=header["n"],
            endpoints=list(zip(tails.tolist(), heads.tolist())),
            indegree=views["indegree"].tolist(),
            outdegree=views["outdegree"].tolist(),
            offsets=views["offsets"],
            slot_edges=views["slot_edges"],
            slot_targets=views["slot_targets"],
            num_loops=header["num_loops"],
        )
        if HAVE_NUMPY:
            snapshot._pairs_cache = (tails, heads)
    except BaseException:
        shm.close()
        raise
    snapshot._segment = SharedGraphSegment(shm, header)
    snapshot.shm_name = name
    return snapshot

"""Weighted-sampling primitives for evolving random graphs.

Two samplers are provided:

* :class:`EndpointUrn` — the dynamic urn underlying *preferential
  attachment*.  Maintaining a flat list containing one entry per unit of
  weight makes "sample proportional to (in)degree" an O(1) operation and
  "add an edge" an O(1) update, which is what makes million-vertex
  evolving graphs feasible in pure Python.
* :class:`AliasSampler` — Walker's alias method for *static*
  distributions, used by the configuration model and the Kleinberg
  long-range link chooser where the weight vector is fixed up front.
* :class:`FenwickFlags` — a Fenwick-tree rank/select over a dynamic
  0/1 membership vector, used by the churn process to draw "the j-th
  surviving vertex/edge" in O(log n).  Selecting by *rank in creation
  order* (rather than by raw id) is what makes churn draws invariant
  under the order-preserving relabeling of
  :meth:`repro.graphs.delta.DeltaGraph.resnapshot`.

Both are deliberately independent of the graph classes so they can be
unit- and property-tested in isolation.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from repro.errors import InvalidParameterError

__all__ = [
    "EndpointUrn",
    "AliasSampler",
    "FenwickFlags",
    "discrete_distribution_sampler",
]


class FenwickFlags:
    """Dynamic 0/1 membership vector with O(log n) count-and-select.

    Positions are 0-based and append-only; each holds a flag (alive or
    dead).  :meth:`select` answers "which position holds the ``k``-th
    set flag?" by binary lifting over the Fenwick tree, and
    :meth:`set`/:meth:`clear` flip a position in O(log n).  This is the
    sampling substrate of the churn process: drawing ``select(randbelow
    (count))`` gives a uniform live element, and because ranks are
    taken in *creation order* the draw is a pure function of which
    elements survive — independent of id compaction.
    """

    __slots__ = ("_tree", "_flags", "_count")

    def __init__(self, size: int = 0, initially_set: bool = True):
        if size < 0:
            raise InvalidParameterError(f"size must be >= 0, got {size}")
        self._tree: List[int] = [0]
        self._flags = bytearray(0)
        self._count = 0
        for _ in range(size):
            self.append(initially_set)

    def __len__(self) -> int:
        return len(self._flags)

    @property
    def count(self) -> int:
        """Number of set flags."""
        return self._count

    def __contains__(self, position: int) -> bool:
        return 0 <= position < len(self._flags) and bool(
            self._flags[position]
        )

    def append(self, flag: bool = True) -> int:
        """Append one position with the given flag; returns its index."""
        position = len(self._flags)
        self._flags.append(1 if flag else 0)
        node = position + 1
        value = 1 if flag else 0
        # A new tree node covers the 2^k positions ending at it; fold
        # in the already-complete subtrees immediately below.
        step = 1
        low = node & (-node)
        while step < low:
            value += self._tree[node - step]
            step <<= 1
        self._tree.append(value)
        if flag:
            self._count += 1
        return position

    def set(self, position: int) -> None:
        """Set the flag at ``position`` (idempotent)."""
        if not self._flags[position]:
            self._flags[position] = 1
            self._count += 1
            self._add(position + 1, 1)

    def clear(self, position: int) -> None:
        """Clear the flag at ``position`` (idempotent)."""
        if self._flags[position]:
            self._flags[position] = 0
            self._count -= 1
            self._add(position + 1, -1)

    def select(self, rank: int) -> int:
        """Position of the ``rank``-th set flag (0-based rank)."""
        if not 0 <= rank < self._count:
            raise InvalidParameterError(
                f"rank {rank} out of range [0, {self._count})"
            )
        size = len(self._flags)
        bit = 1
        while (bit << 1) <= size:
            bit <<= 1
        node = 0
        remaining = rank + 1
        while bit:
            probe = node + bit
            if probe <= size and self._tree[probe] < remaining:
                node = probe
                remaining -= self._tree[probe]
            bit >>= 1
        return node

    def _add(self, node: int, delta: int) -> None:
        size = len(self._flags)
        while node <= size:
            self._tree[node] += delta
            node += node & (-node)

    def __repr__(self) -> str:
        return (
            f"FenwickFlags(size={len(self._flags)}, count={self._count})"
        )


class EndpointUrn:
    """Dynamic urn for degree-proportional sampling.

    Every call to :meth:`add` drops one token for ``vertex`` into the
    urn; :meth:`sample` draws a token uniformly at random, i.e. samples
    a vertex with probability proportional to the number of times it was
    added.  Evolving-graph models call ``add(head)`` once per edge to
    obtain indegree-proportional sampling, or ``add(tail); add(head)``
    for total-degree-proportional sampling.
    """

    __slots__ = ("_tokens",)

    def __init__(self) -> None:
        self._tokens: List[int] = []

    def add(self, vertex: int, count: int = 1) -> None:
        """Add ``count`` tokens for ``vertex`` (one unit of weight each)."""
        if count < 0:
            raise InvalidParameterError(f"count must be >= 0, got {count}")
        self._tokens.extend([vertex] * count)

    def sample(self, rng: random.Random) -> int:
        """Draw a vertex with probability proportional to its token count."""
        if not self._tokens:
            raise InvalidParameterError("cannot sample from an empty urn")
        return self._tokens[rng.randrange(len(self._tokens))]

    @property
    def total_weight(self) -> int:
        """Total number of tokens currently in the urn."""
        return len(self._tokens)

    def count(self, vertex: int) -> int:
        """Number of tokens held by ``vertex`` (O(total_weight); for tests)."""
        return sum(1 for token in self._tokens if token == vertex)

    def __len__(self) -> int:
        return len(self._tokens)

    def __repr__(self) -> str:
        return f"EndpointUrn(total_weight={len(self._tokens)})"


class AliasSampler:
    """Walker alias method: O(n) setup, O(1) sampling, exact probabilities.

    Parameters
    ----------
    weights:
        Non-negative weights, at least one strictly positive.  Samples
        are indices ``0 .. len(weights) - 1`` drawn with probability
        ``weights[i] / sum(weights)``.
    """

    __slots__ = ("_prob", "_alias", "_size")

    def __init__(self, weights: Sequence[float]):
        if not weights:
            raise InvalidParameterError("weights must be non-empty")
        total = 0.0
        for w in weights:
            if w < 0:
                raise InvalidParameterError(f"weights must be >= 0, got {w}")
            total += w
        if total <= 0:
            raise InvalidParameterError("at least one weight must be positive")

        size = len(weights)
        scaled = [w * size / total for w in weights]
        prob = [0.0] * size
        alias = [0] * size
        small = [i for i, s in enumerate(scaled) if s < 1.0]
        large = [i for i, s in enumerate(scaled) if s >= 1.0]

        while small and large:
            lo = small.pop()
            hi = large.pop()
            prob[lo] = scaled[lo]
            alias[lo] = hi
            scaled[hi] = (scaled[hi] + scaled[lo]) - 1.0
            if scaled[hi] < 1.0:
                small.append(hi)
            else:
                large.append(hi)
        # Residual numerical mass: these columns sample themselves surely.
        for rest in (large, small):
            while rest:
                prob[rest.pop()] = 1.0

        self._prob = prob
        self._alias = alias
        self._size = size

    def sample(self, rng: random.Random) -> int:
        """Draw one index from the weight distribution."""
        column = rng.randrange(self._size)
        if rng.random() < self._prob[column]:
            return column
        return self._alias[column]

    def __len__(self) -> int:
        return self._size

    def __repr__(self) -> str:
        return f"AliasSampler(size={self._size})"


def discrete_distribution_sampler(
    probabilities: Sequence[float],
) -> AliasSampler:
    """Alias sampler over ``{1, 2, ...}`` offsets encoded as a validated pmf.

    The Cooper–Frieze model is parameterised by two discrete
    distributions over *numbers of edges per step*; this helper checks
    they are genuine probability vectors (sum to 1 within tolerance)
    before building the sampler.  ``probabilities[i]`` is the
    probability of the value ``i + 1``; the returned sampler yields
    0-based indices, so callers add 1.
    """
    total = sum(probabilities)
    if abs(total - 1.0) > 1e-9:
        raise InvalidParameterError(
            f"probabilities must sum to 1 (got {total!r})"
        )
    return AliasSampler(probabilities)

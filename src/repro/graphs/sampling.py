"""Weighted-sampling primitives for evolving random graphs.

Two samplers are provided:

* :class:`EndpointUrn` — the dynamic urn underlying *preferential
  attachment*.  Maintaining a flat list containing one entry per unit of
  weight makes "sample proportional to (in)degree" an O(1) operation and
  "add an edge" an O(1) update, which is what makes million-vertex
  evolving graphs feasible in pure Python.
* :class:`AliasSampler` — Walker's alias method for *static*
  distributions, used by the configuration model and the Kleinberg
  long-range link chooser where the weight vector is fixed up front.

Both are deliberately independent of the graph classes so they can be
unit- and property-tested in isolation.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from repro.errors import InvalidParameterError

__all__ = ["EndpointUrn", "AliasSampler", "discrete_distribution_sampler"]


class EndpointUrn:
    """Dynamic urn for degree-proportional sampling.

    Every call to :meth:`add` drops one token for ``vertex`` into the
    urn; :meth:`sample` draws a token uniformly at random, i.e. samples
    a vertex with probability proportional to the number of times it was
    added.  Evolving-graph models call ``add(head)`` once per edge to
    obtain indegree-proportional sampling, or ``add(tail); add(head)``
    for total-degree-proportional sampling.
    """

    __slots__ = ("_tokens",)

    def __init__(self) -> None:
        self._tokens: List[int] = []

    def add(self, vertex: int, count: int = 1) -> None:
        """Add ``count`` tokens for ``vertex`` (one unit of weight each)."""
        if count < 0:
            raise InvalidParameterError(f"count must be >= 0, got {count}")
        self._tokens.extend([vertex] * count)

    def sample(self, rng: random.Random) -> int:
        """Draw a vertex with probability proportional to its token count."""
        if not self._tokens:
            raise InvalidParameterError("cannot sample from an empty urn")
        return self._tokens[rng.randrange(len(self._tokens))]

    @property
    def total_weight(self) -> int:
        """Total number of tokens currently in the urn."""
        return len(self._tokens)

    def count(self, vertex: int) -> int:
        """Number of tokens held by ``vertex`` (O(total_weight); for tests)."""
        return sum(1 for token in self._tokens if token == vertex)

    def __len__(self) -> int:
        return len(self._tokens)

    def __repr__(self) -> str:
        return f"EndpointUrn(total_weight={len(self._tokens)})"


class AliasSampler:
    """Walker alias method: O(n) setup, O(1) sampling, exact probabilities.

    Parameters
    ----------
    weights:
        Non-negative weights, at least one strictly positive.  Samples
        are indices ``0 .. len(weights) - 1`` drawn with probability
        ``weights[i] / sum(weights)``.
    """

    __slots__ = ("_prob", "_alias", "_size")

    def __init__(self, weights: Sequence[float]):
        if not weights:
            raise InvalidParameterError("weights must be non-empty")
        total = 0.0
        for w in weights:
            if w < 0:
                raise InvalidParameterError(f"weights must be >= 0, got {w}")
            total += w
        if total <= 0:
            raise InvalidParameterError("at least one weight must be positive")

        size = len(weights)
        scaled = [w * size / total for w in weights]
        prob = [0.0] * size
        alias = [0] * size
        small = [i for i, s in enumerate(scaled) if s < 1.0]
        large = [i for i, s in enumerate(scaled) if s >= 1.0]

        while small and large:
            lo = small.pop()
            hi = large.pop()
            prob[lo] = scaled[lo]
            alias[lo] = hi
            scaled[hi] = (scaled[hi] + scaled[lo]) - 1.0
            if scaled[hi] < 1.0:
                small.append(hi)
            else:
                large.append(hi)
        # Residual numerical mass: these columns sample themselves surely.
        for rest in (large, small):
            while rest:
                prob[rest.pop()] = 1.0

        self._prob = prob
        self._alias = alias
        self._size = size

    def sample(self, rng: random.Random) -> int:
        """Draw one index from the weight distribution."""
        column = rng.randrange(self._size)
        if rng.random() < self._prob[column]:
            return column
        return self._alias[column]

    def __len__(self) -> int:
        return self._size

    def __repr__(self) -> str:
        return f"AliasSampler(size={self._size})"


def discrete_distribution_sampler(
    probabilities: Sequence[float],
) -> AliasSampler:
    """Alias sampler over ``{1, 2, ...}`` offsets encoded as a validated pmf.

    The Cooper–Frieze model is parameterised by two discrete
    distributions over *numbers of edges per step*; this helper checks
    they are genuine probability vectors (sum to 1 within tolerance)
    before building the sampler.  ``probabilities[i]`` is the
    probability of the value ``i + 1``; the returned sampler yields
    0-based indices, so callers add 1.
    """
    total = sum(probabilities)
    if abs(total - 1.0) > 1e-9:
        raise InvalidParameterError(
            f"probabilities must sum to 1 (got {total!r})"
        )
    return AliasSampler(probabilities)

"""Deterministic peer churn on a :class:`~repro.graphs.delta.DeltaGraph`.

The P2P networks the paper models lose and gain peers continuously.
:class:`ChurnProcess` drives that dynamic on top of the overlay layer:

* **joins** follow the graph family's own growth rule — each
  :class:`~repro.core.families.GraphFamily` re-expresses its
  attachment step through this module's live-population sampling
  primitives (:meth:`ChurnProcess.churn_join_edges` hooks);
* **leaves** remove a live vertex chosen uniformly
  (``churn_bias="uniform"``) or proportionally to degree
  (``churn_bias="degree"``, the adversarial case: hubs fail first),
  tombstoning every incident edge.

Determinism
-----------
All draws come from per-step generators seeded with
:func:`repro.rng.run_substream` (stream name ``churn:<bias>``, run
index = step number), so a churn trajectory is a pure function of
``(family, base graph, churn parameters, seed)`` — trials replay
identically across ``--jobs`` fan-out and both engines.

Sampling is **rank-based**: the process keeps two
:class:`~repro.graphs.sampling.FenwickFlags` membership trees (one
over vertex ids in creation order, one over edge ids) and draws "the
j-th surviving element", never "the element with id j".  Because
:meth:`DeltaGraph.resnapshot` relabels order-preservingly, ranks — and
therefore every subsequent draw — are invariant under compaction: a
run with ``resnapshot_every=k`` produces exactly the same surviving
graph (same :func:`~repro.graphs.delta.graph_digest`) as an
uncompacted run.  Degree-proportional draws use the classic
edge-endpoint trick (a uniform surviving edge hits a vertex with
probability proportional to its degree), so they cost O(log m) too.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.errors import InvalidParameterError
from repro.graphs.delta import DeltaGraph
from repro.graphs.frozen import GraphBackend, freeze
from repro.graphs.sampling import FenwickFlags
from repro.rng import make_rng, run_substream

__all__ = ["CHURN_BIASES", "ChurnProcess"]

#: Recognised leave-selection biases.
CHURN_BIASES = ("uniform", "degree")


class ChurnProcess:
    """Family-faithful joins and biased leaves over an overlay graph.

    Parameters
    ----------
    family:
        The :class:`~repro.core.families.GraphFamily` whose attachment
        rule governs joins (its ``churn_join_edges`` hook).
    graph:
        The starting graph (either backend; frozen internally and
        wrapped in a fresh :class:`DeltaGraph`).
    churn_bias:
        ``"uniform"`` or ``"degree"`` leave selection.
    resnapshot_every:
        Compact the overlay into a fresh snapshot every this many
        steps (0 disables).  Purely an execution knob: rank-based
        sampling makes the churn trajectory invariant under it.
    seed:
        Integer seed; step ``i`` draws from
        ``make_rng(run_substream(seed, f"churn:{bias}", i))``.
    """

    def __init__(
        self,
        family,
        graph: GraphBackend,
        *,
        churn_bias: str = "uniform",
        resnapshot_every: int = 0,
        seed: int = 0,
    ):
        if churn_bias not in CHURN_BIASES:
            raise InvalidParameterError(
                f"churn_bias must be one of {CHURN_BIASES}, "
                f"got {churn_bias!r}"
            )
        if resnapshot_every < 0:
            raise InvalidParameterError(
                "resnapshot_every must be >= 0, "
                f"got {resnapshot_every}"
            )
        self.family = family
        self.churn_bias = churn_bias
        self.resnapshot_every = resnapshot_every
        self._seed = seed
        self._stream_name = f"churn:{churn_bias}"
        self._steps_taken = 0
        self._delta = DeltaGraph(freeze(graph))
        self._rebuild_trees()

    def _rebuild_trees(self) -> None:
        delta = self._delta
        self._vertex_tree = FenwickFlags(0)
        for v in range(1, delta.num_vertices + 1):
            self._vertex_tree.append(delta.has_vertex(v))
        self._edge_tree = FenwickFlags(0)
        alive = {eid for eid, _, _ in delta.edges()}
        bound = (
            delta._base_m + len(delta._join_endpoints)
        )
        for eid in range(bound):
            self._edge_tree.append(eid in alive)

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------

    @property
    def graph(self) -> DeltaGraph:
        """The current overlay (replaced wholesale on compaction)."""
        return self._delta

    @property
    def steps_taken(self) -> int:
        """Number of completed :meth:`step` calls."""
        return self._steps_taken

    @property
    def num_live_vertices(self) -> int:
        return self._delta.num_live_vertices

    @property
    def num_edges(self) -> int:
        return self._delta.num_edges

    # ------------------------------------------------------------------
    # Live-population sampling primitives (the family-hook protocol)
    # ------------------------------------------------------------------

    def uniform_vertex(self, rng: random.Random) -> int:
        """A uniformly random live vertex."""
        count = self._vertex_tree.count
        if count == 0:
            raise InvalidParameterError(
                "cannot sample a vertex from an empty graph"
            )
        return self._vertex_tree.select(rng.randrange(count)) + 1

    def _uniform_edge(self, rng: random.Random) -> int:
        count = self._edge_tree.count
        if count == 0:
            raise InvalidParameterError(
                "cannot sample an edge from an edgeless graph"
            )
        return self._edge_tree.select(rng.randrange(count))

    def degree_vertex(self, rng: random.Random) -> int:
        """A live vertex drawn proportionally to its total degree.

        Uniform surviving edge, then a uniform endpoint of it: each
        edge slot is one unit of degree mass (a self-loop's two slots
        both belong to its vertex).
        """
        eid = self._uniform_edge(rng)
        tail, head = self._delta.edge_endpoints(eid)
        return tail if rng.random() < 0.5 else head

    def indegree_vertex(self, rng: random.Random) -> int:
        """A live vertex drawn proportionally to its indegree.

        The head of a uniform surviving edge — each edge contributes
        exactly one indegree unit to its head.
        """
        eid = self._uniform_edge(rng)
        return self._delta.edge_endpoints(eid)[1]

    # ------------------------------------------------------------------
    # Churn events
    # ------------------------------------------------------------------

    def join(self, rng: random.Random) -> int:
        """One vertex joins via the family's growth rule; returns its id."""
        targets = self.family.churn_join_edges(self, rng)
        v = self._delta.add_vertex()
        self._vertex_tree.append(True)
        for target in targets:
            self._delta.add_edge(v, target)
            self._edge_tree.append(True)
        return v

    def leave(self, rng: random.Random) -> int:
        """One vertex leaves (bias-selected); returns its (dead) id.

        Refuses to empty the graph: at least one live vertex remains.
        """
        if self._delta.num_live_vertices <= 1:
            raise InvalidParameterError(
                "cannot remove the last live vertex"
            )
        if self.churn_bias == "degree":
            victim = self._pick_degree_victim(rng)
        else:
            victim = self.uniform_vertex(rng)
        removed = self._delta.remove_vertex(victim)
        self._vertex_tree.clear(victim - 1)
        for eid in removed:
            self._edge_tree.clear(eid)
        return victim

    def _pick_degree_victim(self, rng: random.Random) -> int:
        # Degree-proportional selection, falling back to uniform when
        # no edges survive (every degree is zero).
        if self._edge_tree.count == 0:
            return self.uniform_vertex(rng)
        return self.degree_vertex(rng)

    def step(self) -> DeltaGraph:
        """One churn step: a leave followed by a join (population held).

        Returns the current overlay (a *new* object if this step
        triggered compaction).
        """
        rng = self._step_rng()
        self.leave(rng)
        self.join(rng)
        self._steps_taken += 1
        self._maybe_resnapshot()
        return self._delta

    def decay_step(self) -> DeltaGraph:
        """One pure-decay step: a leave with no compensating join."""
        rng = self._step_rng()
        self.leave(rng)
        self._steps_taken += 1
        self._maybe_resnapshot()
        return self._delta

    def run(self, steps: int, *, decay: bool = False) -> DeltaGraph:
        """Advance ``steps`` churn (or pure-decay) steps."""
        if steps < 0:
            raise InvalidParameterError(
                f"steps must be >= 0, got {steps}"
            )
        for _ in range(steps):
            if decay:
                self.decay_step()
            else:
                self.step()
        return self._delta

    def _step_rng(self) -> random.Random:
        # run_substream's run index is a 16-bit field; block the step
        # counter into the stream name so deep-decay runs on large
        # graphs (> 65535 steps) stay in range.
        block, offset = divmod(self._steps_taken, 1 << 16)
        name = self._stream_name
        if block:
            name = f"{name}#{block}"
        return make_rng(run_substream(self._seed, name, offset))

    def _maybe_resnapshot(self) -> None:
        if (
            self.resnapshot_every
            and self._steps_taken % self.resnapshot_every == 0
        ):
            self._delta = DeltaGraph(self._delta.resnapshot())
            self._rebuild_trees()

"""Vertex merging (graph quotients).

The paper's ``m``-out construction "build an nm-vertex graph and merge
every m consecutive vertices into one" is a special case of a quotient
graph.  :func:`merge_consecutive` implements exactly that special case;
:func:`quotient_graph` accepts an arbitrary block assignment, which the
ablation experiments use to test that the searchability bound is robust
to *how* vertices are merged (consecutive blocks vs other partitions).

Merging preserves degree mass: every edge of the source graph survives
as an edge of the quotient (possibly a self-loop), so the sum of degrees
is invariant — a property-tested invariant of this module.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import InvalidParameterError
from repro.graphs.base import MultiGraph

__all__ = ["merge_consecutive", "quotient_graph"]


def merge_consecutive(graph: MultiGraph, block_size: int) -> MultiGraph:
    """Merge every ``block_size`` consecutive vertices into one.

    Source vertex ``j`` maps to quotient vertex ``⌈j / block_size⌉``.
    The number of source vertices must be a multiple of ``block_size``.
    """
    if block_size < 1:
        raise InvalidParameterError(
            f"block_size must be >= 1, got {block_size}"
        )
    n = graph.num_vertices
    if n % block_size != 0:
        raise InvalidParameterError(
            f"number of vertices ({n}) is not a multiple of "
            f"block_size ({block_size})"
        )
    mapping = [0] + [
        (j - 1) // block_size + 1 for j in range(1, n + 1)
    ]
    return _apply_mapping(graph, mapping, n // block_size)


def quotient_graph(
    graph: MultiGraph, blocks: Sequence[int], num_blocks: int
) -> MultiGraph:
    """Merge vertices according to an explicit block assignment.

    Parameters
    ----------
    graph:
        Source multigraph.
    blocks:
        ``blocks[j - 1]`` is the quotient vertex (in ``1..num_blocks``)
        that source vertex ``j`` maps to.
    num_blocks:
        Number of quotient vertices; every value in ``1..num_blocks``
        must be hit by at least one source vertex.
    """
    if num_blocks < 1:
        raise InvalidParameterError(
            f"num_blocks must be >= 1, got {num_blocks}"
        )
    if len(blocks) != graph.num_vertices:
        raise InvalidParameterError(
            f"blocks has length {len(blocks)}, expected "
            f"{graph.num_vertices}"
        )
    used = set()
    for j, block in enumerate(blocks, start=1):
        if not 1 <= block <= num_blocks:
            raise InvalidParameterError(
                f"vertex {j} mapped to block {block}, outside "
                f"[1, {num_blocks}]"
            )
        used.add(block)
    if len(used) != num_blocks:
        missing = sorted(set(range(1, num_blocks + 1)) - used)
        raise InvalidParameterError(
            f"blocks {missing} have no source vertices"
        )
    mapping = [0] + list(blocks)
    return _apply_mapping(graph, mapping, num_blocks)


def _apply_mapping(
    graph: MultiGraph, mapping: Sequence[int], num_blocks: int
) -> MultiGraph:
    """Rewrite every edge of ``graph`` through ``mapping``."""
    quotient = MultiGraph(num_blocks)
    for _, tail, head in graph.edges():
        quotient.add_edge(mapping[tail], mapping[head])
    return quotient

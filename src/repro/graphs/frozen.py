"""Immutable CSR snapshot of a finished :class:`~repro.graphs.base.MultiGraph`.

The evolving models *must* build through the mutable
:class:`~repro.graphs.base.MultiGraph` (vertices and edges arrive one at
a time), but everything downstream of construction — searching,
component analysis, BFS, degree statistics — only ever *reads* the
graph, and reads it many times: one generated topology typically serves
a whole batch of (algorithm, start, target, seed) search cells plus an
analysis pass.  :class:`FrozenGraph` is the read-optimised form: a
compressed-sparse-row (CSR) snapshot taken once, after which

* per-vertex incidence lists are contiguous slices (``incident_edges``
  returns a cached tuple — no per-call copy, unlike the mutable graph);
* the analysis hot paths (degree sequence/histogram, connected
  components, BFS distances) run as vectorised numpy kernels;
* the object is genuinely immutable, so hashing it is sound (see the
  freeze-then-hash contract on :meth:`MultiGraph.__hash__`).

Faithfulness is the contract: a snapshot preserves **edge ids, parallel
edges, insertion order of incidence slots, and the self-loop-counts-
twice degree convention** exactly, so every query answers bit-for-bit
what the source :class:`MultiGraph` would have answered
(``tests/test_frozen_graph.py`` pins this across all graph models).
Oracles and search algorithms therefore accept either backend.

numpy is optional: without it the CSR arrays live in stdlib
:mod:`array` buffers, the scalar API is unchanged, and the vectorised
kernels (:func:`vectorized_bfs_distances` and friends) simply report
"not available" so callers fall back to their generic loops.
"""

from __future__ import annotations

from array import array
from itertools import chain
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.errors import GraphConstructionError
from repro.graphs.base import MultiGraph

try:  # pragma: no cover - exercised implicitly by every test run
    import numpy as _np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - the container always has numpy
    _np = None
    HAVE_NUMPY = False

__all__ = [
    "FrozenGraph",
    "GraphBackend",
    "HAVE_NUMPY",
    "freeze",
    "vectorized_bfs_distances",
    "vectorized_connected_components",
    "vectorized_degree_histogram",
]


class FrozenGraph:
    """Read-only CSR snapshot of a multigraph.

    Construct with :meth:`from_multigraph` (or the
    :func:`freeze` / :meth:`MultiGraph.freeze` conveniences); the
    constructor itself is an implementation detail.

    The query API is a strict mirror of :class:`MultiGraph`'s — same
    method names, same return values, same exceptions — plus the
    guarantee of immutability: ``add_vertex`` / ``add_edge`` raise.

    Examples
    --------
    >>> g = MultiGraph(2)
    >>> _ = g.add_edge(2, 1)
    >>> fg = g.freeze()
    >>> fg.degree(1), fg.incident_edges(2)
    (1, (0,))
    """

    __slots__ = (
        "_n",
        "_endpoints",
        "_indegree",
        "_outdegree",
        "_offsets",
        "_slot_edges",
        "_slot_targets",
        "_num_loops",
        "_inc_cache",
        "_neighbor_cache",
        "_unique_cache",
        "_hash",
        "_pairs_cache",
    )

    def __init__(
        self,
        num_vertices: int,
        endpoints: List[Tuple[int, int]],
        indegree: List[int],
        outdegree: List[int],
        offsets,
        slot_edges,
        slot_targets,
        num_loops: int,
    ):
        self._n = num_vertices
        #: edge id -> (tail, head), a plain Python list: scalar access
        #: from the oracle request loop must not pay numpy boxing.
        self._endpoints = endpoints
        self._indegree = indegree
        self._outdegree = outdegree
        #: CSR offsets indexed by vertex: slots of v are
        #: ``offsets[v] .. offsets[v + 1]`` (offsets[0] == offsets[1] == 0
        #: because vertex ids are 1-based).
        self._offsets = offsets
        #: slot -> incident edge id (self-loops occupy two slots).
        self._slot_edges = slot_edges
        #: slot -> far endpoint of that slot's edge (v itself for loops).
        self._slot_targets = slot_targets
        self._num_loops = num_loops
        # Lazily filled per-vertex caches; index 0 unused.  Safe to
        # share across every search on the snapshot because the graph
        # can never change underneath them.
        self._inc_cache: List[Optional[Tuple[int, ...]]] = (
            [None] * (num_vertices + 1)
        )
        self._neighbor_cache: Dict[int, List[int]] = {}
        self._unique_cache: Dict[int, List[int]] = {}
        self._hash: Optional[int] = None
        # Lazily built (tails, heads) column arrays shared by every
        # prefix snapshot taken from this graph (see :meth:`prefix`).
        self._pairs_cache = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_multigraph(cls, graph: MultiGraph) -> "FrozenGraph":
        """Take a CSR snapshot of ``graph`` (the graph is not modified)."""
        if not isinstance(graph, MultiGraph):
            if isinstance(graph, FrozenGraph):
                return graph
            raise GraphConstructionError(
                "can only freeze a MultiGraph, got "
                f"{type(graph).__name__}"
            )
        n = graph.num_vertices
        # Private-field access is deliberate: the public accessors copy
        # per call, and freezing is exactly the moment to pay one bulk
        # copy instead of n small ones.
        endpoints = list(graph._endpoints)
        incident = graph._incident
        degrees = [len(incident[v]) for v in range(n + 1)]
        total_slots = sum(degrees)

        if HAVE_NUMPY:
            offsets = _np.zeros(n + 2, dtype=_np.int64)
            _np.cumsum(degrees, out=offsets[1:])
            slot_edges = _np.fromiter(
                chain.from_iterable(incident),
                dtype=_np.int64,
                count=total_slots,
            )
            if endpoints:
                pairs = _np.array(endpoints, dtype=_np.int64)
                tails, heads = pairs[:, 0], pairs[:, 1]
                num_loops = int((tails == heads).sum())
            else:
                tails = heads = _np.zeros(0, dtype=_np.int64)
                num_loops = 0
            # Far endpoint per slot: tail + head - owner (a self-loop's
            # owner is both endpoints, so the identity falls out).
            owners = _np.repeat(
                _np.arange(n + 1, dtype=_np.int64), degrees
            )
            if total_slots:
                slot_targets = (
                    tails[slot_edges] + heads[slot_edges] - owners
                )
            else:
                slot_targets = _np.zeros(0, dtype=_np.int64)
            pairs_cache = (tails, heads)
        else:
            pairs_cache = None
            offsets = array("q", [0] * (n + 2))
            for v in range(n + 1):
                offsets[v + 1] = offsets[v] + degrees[v]
            slot_edges = array("q")
            slot_targets = array("q")
            num_loops = 0
            for tail, head in endpoints:
                if tail == head:
                    num_loops += 1
            for v in range(n + 1):
                for eid in incident[v]:
                    tail, head = endpoints[eid]
                    slot_edges.append(eid)
                    slot_targets.append(tail + head - v)

        snapshot = cls(
            num_vertices=n,
            endpoints=endpoints,
            indegree=list(graph._indegree),
            outdegree=list(graph._outdegree),
            offsets=offsets,
            slot_edges=slot_edges,
            slot_targets=slot_targets,
            num_loops=num_loops,
        )
        # The freeze already materialised the endpoint columns; keep
        # them so a checkpoint grid's prefix() calls (see _pairs) skip
        # the repeat list-to-array conversion.
        snapshot._pairs_cache = pairs_cache
        return snapshot

    def add_vertex(self) -> int:
        """Snapshots are immutable; always raises."""
        raise GraphConstructionError(
            "FrozenGraph is immutable; mutate the MultiGraph and "
            "re-freeze"
        )

    def add_edge(self, tail: int, head: int) -> int:
        """Snapshots are immutable; always raises."""
        raise GraphConstructionError(
            "FrozenGraph is immutable; mutate the MultiGraph and "
            "re-freeze"
        )

    # ------------------------------------------------------------------
    # Queries (mirror of MultiGraph)
    # ------------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """Number of vertices (vertex identities are ``1 .. n``)."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of edges (edge ids are ``0 .. num_edges - 1``)."""
        return len(self._endpoints)

    def vertices(self) -> range:
        """The vertex identities, as the range ``1 .. n``."""
        return range(1, self._n + 1)

    def has_vertex(self, v: int) -> bool:
        """Whether ``v`` is a valid vertex identity."""
        return 1 <= v <= self._n

    def degree(self, v: int) -> int:
        """Undirected degree of ``v`` (self-loops count twice)."""
        self._check_vertex(v)
        return int(self._offsets[v + 1] - self._offsets[v])

    def in_degree(self, v: int) -> int:
        """Number of edges whose head is ``v`` (construction orientation)."""
        self._check_vertex(v)
        return self._indegree[v]

    def out_degree(self, v: int) -> int:
        """Number of edges whose tail is ``v`` (construction orientation)."""
        self._check_vertex(v)
        return self._outdegree[v]

    def incident_edges(self, v: int) -> Tuple[int, ...]:
        """Edge ids incident to ``v``, self-loops repeated, insertion order.

        Unlike the mutable backend, repeated calls return the *same*
        cached tuple object — the per-request copy this saves is one of
        the snapshot's main wins in oracle-driven search loops.
        """
        self._check_vertex(v)
        cached = self._inc_cache[v]
        if cached is None:
            lo = int(self._offsets[v])
            hi = int(self._offsets[v + 1])
            if HAVE_NUMPY:
                cached = tuple(self._slot_edges[lo:hi].tolist())
            else:
                cached = tuple(self._slot_edges[lo:hi])
            self._inc_cache[v] = cached
        return cached

    def edge_endpoints(self, eid: int) -> Tuple[int, int]:
        """The ``(tail, head)`` pair of edge ``eid``."""
        self._check_edge(eid)
        return self._endpoints[eid]

    def other_endpoint(self, eid: int, v: int) -> int:
        """The endpoint of ``eid`` other than ``v`` (``v`` for a self-loop)."""
        self._check_edge(eid)
        tail, head = self._endpoints[eid]
        if v == tail:
            return head
        if v == head:
            return tail
        raise GraphConstructionError(
            f"vertex {v} is not an endpoint of edge {eid} ({tail}, {head})"
        )

    def neighbors(self, v: int) -> List[int]:
        """Multiset of neighbors of ``v`` (one entry per incident edge slot).

        Slot order matches the mutable backend exactly: a self-loop
        contributes ``v`` twice, a parallel edge its far endpoint once
        per copy.  Returns a fresh list (callers may mutate it); the
        cached master copy stays private.
        """
        return list(self._slot_target_list(v))

    def _slot_target_list(self, v: int) -> List[int]:
        """The cached master far-endpoint list behind :meth:`neighbors`.

        Internal: shared, must not be mutated.  Hot loops (the flooding
        kernel) iterate it to skip the defensive copy ``neighbors``
        makes.
        """
        self._check_vertex(v)
        cached = self._neighbor_cache.get(v)
        if cached is None:
            lo = int(self._offsets[v])
            hi = int(self._offsets[v + 1])
            if HAVE_NUMPY:
                cached = self._slot_targets[lo:hi].tolist()
            else:
                cached = list(self._slot_targets[lo:hi])
            self._neighbor_cache[v] = cached
        return cached

    def unique_neighbors(self, v: int) -> List[int]:
        """Sorted distinct neighbors of ``v`` (self-loop contributes ``v``)."""
        cached = self._unique_cache.get(v)
        if cached is None:
            cached = sorted(set(self.neighbors(v)))
            self._unique_cache[v] = cached
        return list(cached)

    def edges(self) -> Iterator[Tuple[int, int, int]]:
        """Iterate ``(eid, tail, head)`` triples in insertion order."""
        for eid, (tail, head) in enumerate(self._endpoints):
            yield eid, tail, head

    def degree_sequence(self) -> List[int]:
        """Undirected degrees of all vertices, indexed ``0 .. n-1`` for ``1 .. n``."""
        if HAVE_NUMPY:
            return _np.diff(self._offsets[1:]).tolist()
        return [
            self._offsets[v + 1] - self._offsets[v]
            for v in range(1, self._n + 1)
        ]

    def num_self_loops(self) -> int:
        """Number of self-loop edges."""
        return self._num_loops

    def is_connected(self) -> bool:
        """Whether the undirected graph is connected (vacuously true if n <= 1)."""
        if self._n <= 1:
            return True
        distances = vectorized_bfs_distances(self, 1)
        if distances is not None:
            return all(d >= 0 for d in distances[1:])
        seen = [False] * (self._n + 1)
        stack = [1]
        seen[1] = True
        count = 1
        while stack:
            v = stack.pop()
            lo = int(self._offsets[v])
            hi = int(self._offsets[v + 1])
            for w in self._slot_targets[lo:hi]:
                w = int(w)
                if not seen[w]:
                    seen[w] = True
                    count += 1
                    stack.append(w)
        return count == self._n

    def thaw(self) -> MultiGraph:
        """An independent mutable copy with identical content and edge ids."""
        return MultiGraph.from_edges(self._n, list(self._endpoints))

    # ------------------------------------------------------------------
    # Prefix snapshots (growth-trajectory checkpoints)
    # ------------------------------------------------------------------

    def _pairs(self):
        """Cached full-length (tails, heads) columns (numpy path only).

        Built once per snapshot and reused by every :meth:`prefix`
        call, so a whole checkpoint grid pays the list-to-array
        conversion a single time.
        """
        if self._pairs_cache is None:
            if self._endpoints:
                pairs = _np.array(self._endpoints, dtype=_np.int64)
                self._pairs_cache = (pairs[:, 0], pairs[:, 1])
            else:
                empty = _np.zeros(0, dtype=_np.int64)
                self._pairs_cache = (empty, empty)
        return self._pairs_cache

    def prefix(self, num_vertices: int, num_edges: int) -> "FrozenGraph":
        """Snapshot of the source graph's *past state* at the given counts.

        The source multigraph is append-only, so the state in which it
        had ``num_vertices`` vertices and ``num_edges`` edges is the
        prefix of everything: the first ``num_edges`` endpoint pairs,
        and for each vertex the leading run of incidence slots whose
        edge id is below ``num_edges`` (incidence lists grow in edge-id
        order).  The result is therefore bit-identical — same edge ids,
        same incidence order, equal and hash-equal — to freezing an
        independent construction stopped at that point, which is the
        contract the growth-trajectory checkpoint engine is built on.

        Slicing reuses this snapshot's CSR buffers (and the cached
        endpoint columns) instead of re-walking a mutable graph, so a
        whole checkpoint grid costs one full freeze plus one masked
        copy per checkpoint.

        Raises :class:`~repro.errors.GraphConstructionError` if the
        requested prefix is not a state the graph passed through (an
        edge in the prefix touches a vertex beyond ``num_vertices``).
        """
        if not 0 <= num_vertices <= self._n:
            raise GraphConstructionError(
                f"prefix num_vertices {num_vertices} out of range "
                f"[0, {self._n}]"
            )
        if not 0 <= num_edges <= len(self._endpoints):
            raise GraphConstructionError(
                f"prefix num_edges {num_edges} out of range "
                f"[0, {len(self._endpoints)}]"
            )
        if num_vertices == self._n and num_edges == len(self._endpoints):
            return self
        endpoints = self._endpoints[:num_edges]

        if HAVE_NUMPY:
            tails, heads = self._pairs()
            tails = tails[:num_edges]
            heads = heads[:num_edges]
            if num_edges and int(
                max(tails.max(), heads.max())
            ) > num_vertices:
                raise GraphConstructionError(
                    f"prefix of {num_edges} edges touches vertices "
                    f"beyond {num_vertices}; not a past state"
                )
            indegree = _np.bincount(
                heads, minlength=num_vertices + 1
            ).tolist()
            outdegree = _np.bincount(
                tails, minlength=num_vertices + 1
            ).tolist()
            num_loops = int((tails == heads).sum())
            sub_offsets = self._offsets[: num_vertices + 2]
            end = int(sub_offsets[-1])
            mask = self._slot_edges[:end] < num_edges
            cum = _np.zeros(end + 1, dtype=_np.int64)
            _np.cumsum(mask, out=cum[1:])
            offsets = _np.zeros(num_vertices + 2, dtype=_np.int64)
            offsets[1:] = cum[sub_offsets[1:]]
            slot_edges = self._slot_edges[:end][mask]
            slot_targets = self._slot_targets[:end][mask]
        else:
            from bisect import bisect_left

            indegree = [0] * (num_vertices + 1)
            outdegree = [0] * (num_vertices + 1)
            num_loops = 0
            for tail, head in endpoints:
                if tail > num_vertices or head > num_vertices:
                    raise GraphConstructionError(
                        f"prefix of {num_edges} edges touches vertices "
                        f"beyond {num_vertices}; not a past state"
                    )
                indegree[head] += 1
                outdegree[tail] += 1
                if tail == head:
                    num_loops += 1
            offsets = array("q", [0] * (num_vertices + 2))
            slot_edges = array("q")
            slot_targets = array("q")
            for v in range(num_vertices + 1):
                lo = self._offsets[v]
                hi = self._offsets[v + 1]
                segment = self._slot_edges[lo:hi]
                kept = bisect_left(segment, num_edges)
                offsets[v + 1] = offsets[v] + kept
                slot_edges.extend(segment[:kept])
                slot_targets.extend(
                    self._slot_targets[lo:lo + kept]
                )

        return type(self)(
            num_vertices=num_vertices,
            endpoints=endpoints,
            indegree=indegree,
            outdegree=outdegree,
            offsets=offsets,
            slot_edges=slot_edges,
            slot_targets=slot_targets,
            num_loops=num_loops,
        )

    # ------------------------------------------------------------------
    # Dunder / internals
    # ------------------------------------------------------------------

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(n={self.num_vertices}, "
            f"m={self.num_edges})"
        )

    def __eq__(self, other: object) -> bool:
        """Equality as *labeled* multigraphs with ordered edge lists.

        A snapshot compares equal to the :class:`MultiGraph` it was
        frozen from (and to any other graph with the same content).
        """
        if isinstance(other, FrozenGraph):
            return (
                self._n == other._n
                and self._endpoints == other._endpoints
            )
        if isinstance(other, MultiGraph):
            return (
                self._n == other.num_vertices
                and self._endpoints == other._endpoints
            )
        return NotImplemented

    def __hash__(self) -> int:
        """Content hash; cached — immutability makes that sound.

        Matches :meth:`MultiGraph.__hash__`'s formula so that a graph
        and its snapshot (which compare equal) also hash equal.
        """
        if self._hash is None:
            self._hash = hash((self._n, tuple(self._endpoints)))
        return self._hash

    def _check_vertex(self, v: int) -> None:
        if not 1 <= v <= self._n:
            raise GraphConstructionError(
                f"vertex {v} out of range [1, {self._n}]"
            )

    def _check_edge(self, eid: int) -> None:
        if not 0 <= eid < len(self._endpoints):
            raise GraphConstructionError(
                f"edge id {eid} out of range [0, {len(self._endpoints) - 1}]"
            )


#: Either graph backend; public read-only APIs accept both.
GraphBackend = Union[MultiGraph, FrozenGraph]


def freeze(graph: GraphBackend) -> FrozenGraph:
    """Snapshot ``graph``; a no-op (same object) if already frozen."""
    if isinstance(graph, FrozenGraph):
        return graph
    return FrozenGraph.from_multigraph(graph)


# ----------------------------------------------------------------------
# Vectorised analysis kernels
# ----------------------------------------------------------------------
#
# Each kernel answers exactly what the generic pure-Python algorithm on
# the mutable backend answers (same values, same Python types, same
# ordering conventions), or returns None when it cannot apply (not a
# FrozenGraph, or numpy unavailable) so the caller falls back.


def vectorized_bfs_distances(
    graph: GraphBackend, source: int
) -> Optional[List[int]]:
    """Frontier-at-a-time BFS over the CSR arrays.

    Returns distances indexed by vertex (index 0 unused, -1 for
    unreached) — identical to the generic BFS, whose distances are
    unique — or ``None`` when the vectorised path is unavailable.
    """
    if not HAVE_NUMPY or not isinstance(graph, FrozenGraph):
        return None
    n = graph._n
    offsets = graph._offsets
    targets = graph._slot_targets
    distances = _np.full(n + 1, -1, dtype=_np.int64)
    distances[0] = -1
    distances[source] = 0
    frontier = _np.array([source], dtype=_np.int64)
    level = 0
    while frontier.size:
        starts = offsets[frontier]
        counts = offsets[frontier + 1] - starts
        total = int(counts.sum())
        if total == 0:
            break
        # Gather all slots of the frontier: for each frontier vertex i
        # the slots starts[i] .. starts[i]+counts[i].
        bases = _np.repeat(starts, counts)
        running = _np.arange(total, dtype=_np.int64)
        resets = _np.repeat(
            _np.cumsum(counts) - counts, counts
        )
        reached = targets[bases + running - resets]
        reached = reached[distances[reached] < 0]
        if reached.size == 0:
            break
        frontier = _np.unique(reached)
        level += 1
        distances[frontier] = level
    return distances.tolist()


def vectorized_connected_components(
    graph: GraphBackend,
) -> Optional[List[List[int]]]:
    """Label propagation with pointer jumping over the edge arrays.

    Matches the generic implementation's output exactly: components
    largest first (ties broken by smallest member, which is what the
    generic discovery-order + stable sort produces), each sorted
    ascending.  ``None`` when the vectorised path is unavailable.
    """
    if not HAVE_NUMPY or not isinstance(graph, FrozenGraph):
        return None
    n = graph._n
    if n == 0:
        return []
    labels = _np.arange(n + 1, dtype=_np.int64)
    if graph._endpoints:
        pairs = _np.array(graph._endpoints, dtype=_np.int64)
        tails, heads = pairs[:, 0], pairs[:, 1]
        while True:
            # Hook: pull each edge's endpoints down to the edge minimum.
            edge_min = _np.minimum(labels[tails], labels[heads])
            _np.minimum.at(labels, tails, edge_min)
            _np.minimum.at(labels, heads, edge_min)
            # Jump: compress label chains to their roots.
            while True:
                jumped = labels[labels]
                if _np.array_equal(jumped, labels):
                    break
                labels = jumped
            if _np.array_equal(labels[tails], labels[heads]):
                break
    member_labels = labels[1:]
    order = _np.argsort(member_labels, kind="stable")
    vertices = _np.arange(1, n + 1, dtype=_np.int64)[order]
    sorted_labels = member_labels[order]
    boundaries = _np.flatnonzero(_np.diff(sorted_labels)) + 1
    groups = _np.split(vertices, boundaries)
    components = [group.tolist() for group in groups]
    components.sort(key=lambda c: (-len(c), c[0]))
    return components


def vectorized_degree_histogram(
    graph: GraphBackend,
) -> Optional[Dict[int, int]]:
    """``degree -> count`` via bincount; ``None`` when unavailable."""
    if not HAVE_NUMPY or not isinstance(graph, FrozenGraph):
        return None
    degrees = _np.diff(graph._offsets[1:])
    counts = _np.bincount(degrees)
    return {
        int(degree): int(count)
        for degree, count in enumerate(counts)
        if count
    }

"""Mutable multigraph with stable edge identities.

All random-graph models in this library are *evolving* constructions:
during **construction**, vertices and edges are added one at a time
and never removed, and this class is that append-only build surface.
(Removal exists in the library, but lives a layer up: the dynamic
overlay backend :class:`~repro.graphs.delta.DeltaGraph` tombstones
vertices and edges over a finished snapshot without ever mutating it —
see :mod:`repro.graphs.delta` and :mod:`repro.graphs.churn`.)  The
search oracles additionally need **edge identities** — in the weak model
a request names a specific edge incident to a discovered vertex, so
parallel edges and self-loops must be distinguishable objects, not
collapsed adjacency entries.

:class:`MultiGraph` therefore stores edges as an append-only list of
``(tail, head)`` pairs indexed by a dense integer edge id, plus a
per-vertex incidence list of edge ids.  Conventions:

* vertices are the integers ``1 .. n`` (the paper labels vertices by
  insertion time, starting at 1);
* edges are directed *for construction* (``tail`` is the newer vertex
  that chose ``head``), but **searching always takes place in the
  corresponding undirected graph** (paper, Section 1) — incidence lists
  and degrees are undirected;
* a self-loop appears twice in its vertex's incidence list and
  contributes 2 to the undirected degree (standard multigraph
  convention, and what the merged Móri construction requires so that
  degree mass is conserved by merging).

Once construction is finished, hand the graph to the read-optimised
backend: :meth:`MultiGraph.freeze` takes an immutable CSR snapshot
(:class:`repro.graphs.frozen.FrozenGraph`) that answers every query
here bit-identically while serving whole batches of searches and the
vectorised analysis kernels — see :mod:`repro.graphs.frozen`.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterable, Iterator, List, Tuple

from repro.errors import GraphConstructionError

__all__ = ["MultiGraph"]


class MultiGraph:
    """Append-only multigraph over vertices ``1 .. n``.

    Parameters
    ----------
    num_vertices:
        Number of initial (isolated) vertices.

    Examples
    --------
    >>> g = MultiGraph(2)
    >>> eid = g.add_edge(2, 1)
    >>> g.degree(1), g.degree(2)
    (1, 1)
    >>> g.other_endpoint(eid, 2)
    1
    """

    __slots__ = ("_endpoints", "_incident", "_indegree", "_outdegree")

    def __init__(self, num_vertices: int = 0):
        if num_vertices < 0:
            raise GraphConstructionError(
                f"num_vertices must be >= 0, got {num_vertices}"
            )
        #: edge id -> (tail, head)
        self._endpoints: List[Tuple[int, int]] = []
        #: vertex -> list of incident edge ids (self-loops listed twice);
        #: index 0 is a dummy so vertex v lives at _incident[v].
        self._incident: List[List[int]] = [[] for _ in range(num_vertices + 1)]
        #: vertex -> number of edges whose head is this vertex.
        self._indegree: List[int] = [0] * (num_vertices + 1)
        #: vertex -> number of edges whose tail is this vertex.
        self._outdegree: List[int] = [0] * (num_vertices + 1)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_vertex(self) -> int:
        """Append a new isolated vertex and return its identity."""
        self._incident.append([])
        self._indegree.append(0)
        self._outdegree.append(0)
        return len(self._incident) - 1

    def add_edge(self, tail: int, head: int) -> int:
        """Append a directed edge ``tail -> head`` and return its edge id.

        Both endpoints must already exist.  Parallel edges and self-loops
        are allowed.
        """
        self._check_vertex(tail)
        self._check_vertex(head)
        eid = len(self._endpoints)
        self._endpoints.append((tail, head))
        self._incident[tail].append(eid)
        self._incident[head].append(eid)
        self._indegree[head] += 1
        self._outdegree[tail] += 1
        return eid

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """Number of vertices (vertex identities are ``1 .. num_vertices``)."""
        return len(self._incident) - 1

    @property
    def num_edges(self) -> int:
        """Number of edges (edge ids are ``0 .. num_edges - 1``)."""
        return len(self._endpoints)

    def vertices(self) -> range:
        """The vertex identities, as the range ``1 .. n``."""
        return range(1, self.num_vertices + 1)

    def has_vertex(self, v: int) -> bool:
        """Whether ``v`` is a valid vertex identity."""
        return 1 <= v <= self.num_vertices

    def degree(self, v: int) -> int:
        """Undirected degree of ``v`` (self-loops count twice)."""
        self._check_vertex(v)
        return len(self._incident[v])

    def in_degree(self, v: int) -> int:
        """Number of edges whose head is ``v`` (construction orientation)."""
        self._check_vertex(v)
        return self._indegree[v]

    def out_degree(self, v: int) -> int:
        """Number of edges whose tail is ``v`` (construction orientation)."""
        self._check_vertex(v)
        return self._outdegree[v]

    def incident_edges(self, v: int) -> Tuple[int, ...]:
        """Edge ids incident to ``v``, self-loops repeated, in insertion order."""
        self._check_vertex(v)
        return tuple(self._incident[v])

    def edge_endpoints(self, eid: int) -> Tuple[int, int]:
        """The ``(tail, head)`` pair of edge ``eid``."""
        self._check_edge(eid)
        return self._endpoints[eid]

    def other_endpoint(self, eid: int, v: int) -> int:
        """The endpoint of ``eid`` other than ``v`` (``v`` for a self-loop)."""
        tail, head = self.edge_endpoints(eid)
        if v == tail:
            return head
        if v == head:
            return tail
        raise GraphConstructionError(
            f"vertex {v} is not an endpoint of edge {eid} ({tail}, {head})"
        )

    def neighbors(self, v: int) -> List[int]:
        """Multiset of neighbors of ``v`` (one entry per incident edge slot).

        A self-loop contributes ``v`` twice; a parallel edge contributes
        its far endpoint once per copy.
        """
        self._check_vertex(v)
        seen_loops = 0
        result: List[int] = []
        for eid in self._incident[v]:
            tail, head = self._endpoints[eid]
            if tail == head:
                # Each loop occupies two incidence slots; emit v once per slot.
                result.append(v)
                seen_loops += 1
            else:
                result.append(head if tail == v else tail)
        return result

    def unique_neighbors(self, v: int) -> List[int]:
        """Sorted distinct neighbors of ``v`` (self-loop contributes ``v``)."""
        return sorted(set(self.neighbors(v)))

    def edges(self) -> Iterator[Tuple[int, int, int]]:
        """Iterate ``(eid, tail, head)`` triples in insertion order."""
        for eid, (tail, head) in enumerate(self._endpoints):
            yield eid, tail, head

    def degree_sequence(self) -> List[int]:
        """Undirected degrees of all vertices, indexed ``0 .. n-1`` for ``1 .. n``."""
        return [len(self._incident[v]) for v in self.vertices()]

    def num_self_loops(self) -> int:
        """Number of self-loop edges."""
        return sum(1 for tail, head in self._endpoints if tail == head)

    # ------------------------------------------------------------------
    # Structure checks
    # ------------------------------------------------------------------

    def is_connected(self) -> bool:
        """Whether the undirected graph is connected (vacuously true if n <= 1)."""
        n = self.num_vertices
        if n <= 1:
            return True
        seen = [False] * (n + 1)
        stack = [1]
        seen[1] = True
        count = 1
        while stack:
            v = stack.pop()
            for eid in self._incident[v]:
                tail, head = self._endpoints[eid]
                w = head if tail == v else tail
                if not seen[w]:
                    seen[w] = True
                    count += 1
                    stack.append(w)
        return count == n

    def copy(self) -> "MultiGraph":
        """An independent deep copy of this graph."""
        clone = MultiGraph(self.num_vertices)
        for tail, head in self._endpoints:
            clone.add_edge(tail, head)
        return clone

    def prefix(self, num_vertices: int, num_edges: int) -> "MultiGraph":
        """The graph as it was when it had the given vertex/edge counts.

        Because the graph is append-only — vertices, edges, *and* each
        vertex's incidence list only ever grow at the end — every
        earlier state is recoverable from the current one: it is the
        first ``num_vertices`` vertices together with the first
        ``num_edges`` edges (same edge ids, same incidence order).
        This is what makes one evolving realisation serve a whole
        checkpoint grid: the prefix is bit-identical to the graph an
        independent construction with the same seed would have produced
        when stopped at that point.

        Every edge in the prefix must have both endpoints among the
        first ``num_vertices`` vertices (true for any state the graph
        actually passed through); otherwise
        :class:`~repro.errors.GraphConstructionError` is raised.
        """
        if not 0 <= num_vertices <= self.num_vertices:
            raise GraphConstructionError(
                f"prefix num_vertices {num_vertices} out of range "
                f"[0, {self.num_vertices}]"
            )
        if not 0 <= num_edges <= self.num_edges:
            raise GraphConstructionError(
                f"prefix num_edges {num_edges} out of range "
                f"[0, {self.num_edges}]"
            )
        clone = MultiGraph(num_vertices)
        endpoints = self._endpoints[:num_edges]
        indegree = clone._indegree
        outdegree = clone._outdegree
        for tail, head in endpoints:
            if tail > num_vertices or head > num_vertices:
                raise GraphConstructionError(
                    f"prefix of {num_edges} edges touches vertices "
                    f"beyond {num_vertices}; not a past state"
                )
            indegree[head] += 1
            outdegree[tail] += 1
        clone._endpoints = endpoints
        incident = clone._incident
        for v in range(1, num_vertices + 1):
            slots = self._incident[v]
            # Incidence lists grow in edge-id order, so the slots that
            # existed at the prefix state are exactly the leading run
            # of ids below num_edges.
            incident[v] = slots[: bisect_left(slots, num_edges)]
        return clone

    # ------------------------------------------------------------------
    # Dunder / internals
    # ------------------------------------------------------------------

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(n={self.num_vertices}, "
            f"m={self.num_edges})"
        )

    def __eq__(self, other: object) -> bool:
        """Equality as *labeled* multigraphs with ordered edge lists."""
        if not isinstance(other, MultiGraph):
            return NotImplemented
        return (
            self.num_vertices == other.num_vertices
            and self._endpoints == other._endpoints
        )

    def __hash__(self) -> int:
        """Content hash of the *current* state.

        .. warning:: **Freeze-then-hash contract.**  This object is
           mutable, so the hash is only stable for as long as no vertex
           or edge is added: a graph placed in a dict or set and then
           grown will no longer be found under its old hash.  Hash a
           :class:`MultiGraph` only once construction is finished —
           or, better, take a :meth:`freeze` snapshot and hash that:
           :class:`~repro.graphs.frozen.FrozenGraph` is immutable,
           caches its hash, and compares (and hashes) equal to the
           graph it was frozen from.
        """
        return hash((self.num_vertices, tuple(self._endpoints)))

    def freeze(self) -> "FrozenGraph":
        """An immutable CSR snapshot of the current state.

        The snapshot answers every read query identically (same edge
        ids, same incidence order, same degree conventions) but is
        array-backed, safely hashable, and serves the vectorised
        analysis kernels; see :mod:`repro.graphs.frozen`.
        """
        from repro.graphs.frozen import FrozenGraph

        return FrozenGraph.from_multigraph(self)

    def _check_vertex(self, v: int) -> None:
        if not 1 <= v <= self.num_vertices:
            raise GraphConstructionError(
                f"vertex {v} out of range [1, {self.num_vertices}]"
            )

    def _check_edge(self, eid: int) -> None:
        if not 0 <= eid < len(self._endpoints):
            raise GraphConstructionError(
                f"edge id {eid} out of range [0, {len(self._endpoints) - 1}]"
            )

    # ------------------------------------------------------------------
    # Bulk constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_edges(
        cls, num_vertices: int, edges: Iterable[Tuple[int, int]]
    ) -> "MultiGraph":
        """Build a graph from an iterable of ``(tail, head)`` pairs."""
        graph = cls(num_vertices)
        for tail, head in edges:
            graph.add_edge(tail, head)
        return graph

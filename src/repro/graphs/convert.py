"""Conversion between :class:`repro.graphs.base.MultiGraph` and networkx.

networkx is an *optional* dependency (the core library is dependency
free); these helpers import it lazily and raise a clear error when it
is unavailable.  They exist so users can hand graphs generated here to
the wider scientific-Python ecosystem, and so the test suite can
cross-validate our BFS/diameter code against an independent
implementation.
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.graphs.base import MultiGraph

__all__ = ["to_networkx", "from_networkx"]


def _require_networkx():
    try:
        import networkx
    except ImportError as exc:  # pragma: no cover - env without networkx
        raise ReproError(
            "networkx is required for graph conversion; install the "
            "'analysis' extra: pip install repro[analysis]"
        ) from exc
    return networkx


def to_networkx(graph: MultiGraph):
    """Convert to ``networkx.MultiDiGraph`` (construction orientation).

    Edge keys are our stable edge ids, so round-tripping preserves edge
    identity.  Use ``.to_undirected()`` on the result for the search
    view of the graph.
    """
    networkx = _require_networkx()
    result = networkx.MultiDiGraph()
    result.add_nodes_from(graph.vertices())
    for eid, tail, head in graph.edges():
        result.add_edge(tail, head, key=eid)
    return result


def from_networkx(nx_graph) -> MultiGraph:
    """Convert a networkx (multi)graph with nodes ``1..n`` to a MultiGraph.

    Nodes must be exactly the integers ``1 .. n``; edge keys and data
    are ignored (our edge ids are assigned in iteration order).
    """
    _require_networkx()
    nodes = sorted(nx_graph.nodes())
    n = len(nodes)
    if nodes != list(range(1, n + 1)):
        raise ReproError(
            "networkx graph nodes must be exactly the integers 1..n; "
            f"got {nodes[:5]}{'...' if n > 5 else ''}"
        )
    graph = MultiGraph(n)
    for tail, head in nx_graph.edges():
        graph.add_edge(tail, head)
    return graph

"""Random-graph substrates for the non-searchability reproduction.

This subpackage implements, from scratch, every graph model the paper
uses or contrasts against:

* :mod:`repro.graphs.base` — the mutable multigraph all models build on;
* :mod:`repro.graphs.frozen` — the immutable CSR snapshot backend the
  search/analysis hot paths run on (freeze once, read many);
* :mod:`repro.graphs.mori` — the Móri random tree and its merged
  ``m``-out variant (the paper's Theorem 1 object);
* :mod:`repro.graphs.cooper_frieze` — the Cooper–Frieze general
  web-graph model (Theorem 2 object);
* :mod:`repro.graphs.barabasi_albert` — the classic BA model
  (total-degree preferential attachment; §3 contrast);
* :mod:`repro.graphs.power_law` / :mod:`repro.graphs.configuration` —
  pure random graphs with power-law degree sequences (Molloy–Reed), the
  substrate of the Adamic et al. comparison;
* :mod:`repro.graphs.kleinberg` — Kleinberg's navigable small-world
  lattice (the positive result the paper contrasts with);
* :mod:`repro.graphs.sampling` — weighted samplers shared by the
  evolving models;
* :mod:`repro.graphs.merge` — vertex-merging used by the ``m``-out
  construction;
* :mod:`repro.graphs.delta` — the dynamic overlay backend (tombstones
  + late joins over a frozen base) and its canonical content digest;
* :mod:`repro.graphs.churn` — deterministic, family-faithful peer
  churn driven on the overlay;
* :mod:`repro.graphs.shm` — shared-memory publication of frozen
  snapshots (publish once, attach by name from worker processes).
"""

from repro.graphs.base import MultiGraph
from repro.graphs.churn import ChurnProcess
from repro.graphs.delta import DeltaGraph, graph_digest
from repro.graphs.frozen import FrozenGraph, GraphBackend, freeze
from repro.graphs.mori import (
    MoriTree,
    merged_mori_graph,
    mori_edges_per_step_graph,
    mori_tree,
)
from repro.graphs.cooper_frieze import CooperFriezeParams, cooper_frieze_graph
from repro.graphs.barabasi_albert import barabasi_albert_graph
from repro.graphs.configuration import configuration_model_graph
from repro.graphs.power_law import power_law_degree_sequence
from repro.graphs.kleinberg import KleinbergGrid, kleinberg_grid
from repro.graphs.shm import (
    SharedGraphSegment,
    ShmFrozenGraph,
    attach_graph,
    publish_graph,
)

# GraphBackend (the Union alias of the two backends) is importable but
# deliberately not in __all__: it is a typing handle, not a callable.
__all__ = [
    "MultiGraph",
    "FrozenGraph",
    "freeze",
    "DeltaGraph",
    "ChurnProcess",
    "graph_digest",
    "MoriTree",
    "mori_tree",
    "merged_mori_graph",
    "mori_edges_per_step_graph",
    "CooperFriezeParams",
    "cooper_frieze_graph",
    "barabasi_albert_graph",
    "configuration_model_graph",
    "power_law_degree_sequence",
    "KleinbergGrid",
    "kleinberg_grid",
    "SharedGraphSegment",
    "ShmFrozenGraph",
    "publish_graph",
    "attach_graph",
]

"""Overlay view of a frozen graph under deletion and late joins.

The growth models build append-only graphs, but the peer-to-peer
networks the paper models lose peers constantly.  :class:`DeltaGraph`
is the bridge: a thin overlay over an immutable
:class:`~repro.graphs.frozen.FrozenGraph` base that records *tombstones*
(removed vertices and edges) and *join* vertices/edges appended after
the snapshot, while exposing the exact read API of the two static
backends — ``degrees``, ``incident_edges`` (same slot order), edge ids,
``edges()`` triples — so the oracles, every serial search algorithm,
and the generic analysis helpers run on it unchanged.

Identity conventions
--------------------
* Vertex ids are never reused.  ``num_vertices`` is the **id bound**
  (base vertices plus every join vertex, tombstoned ids included) so
  id-indexed buffers sized ``num_vertices + 1`` stay valid; the live
  population is ``num_live_vertices`` and :meth:`vertices` yields only
  live ids, in increasing order.
* Edge ids are never reused either: base edges keep their dense ids
  ``0 .. base_m - 1`` and join edges extend the sequence in arrival
  order.  ``num_edges`` counts *surviving* edges only (it feeds
  :func:`~repro.search.process.default_budget`).
* Incidence order is the base slot order for surviving base edges
  followed by join edges in arrival order; self-loops occupy two slots,
  exactly like both static backends.
* Any edge incident to a removed vertex is removed with it, so a
  surviving edge never touches a dead endpoint.

:meth:`resnapshot` compacts the overlay into a fresh
:class:`FrozenGraph`: live vertices relabeled order-preservingly to
``1 .. k`` and surviving edges re-idd densely in old-eid order — the
same convention as :func:`repro.graphs.components.induced_subgraph`, so
the result is equal, hash-equal, and digest-identical to building the
surviving graph directly.  When the overlay only tombstones a trailing
run of vertex and edge ids the compaction composes with the
buffer-reusing :meth:`FrozenGraph.prefix` instead of rebuilding.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.errors import GraphConstructionError
from repro.graphs.base import MultiGraph
from repro.graphs.frozen import HAVE_NUMPY, FrozenGraph, GraphBackend, freeze

if HAVE_NUMPY:
    import numpy as _np

__all__ = ["DeltaGraph", "graph_digest"]


def graph_digest(graph) -> str:
    """Canonical sha256 digest of a graph's labeled content.

    Hashes ``num_vertices`` followed by the ``(tail, head)`` pairs in
    edge-id order — the exact tuple :meth:`MultiGraph.__eq__` compares,
    so two graphs are digest-equal iff they compare equal.  Works on
    any backend exposing ``num_vertices`` and ``edges()``.
    """
    hasher = hashlib.sha256()
    hasher.update(f"{graph.num_vertices}\n".encode("ascii"))
    for _, tail, head in graph.edges():
        hasher.update(f"{tail} {head}\n".encode("ascii"))
    return hasher.hexdigest()


class DeltaGraph:
    """Mutable overlay (tombstones + joins) over a frozen base graph.

    The *base* is never modified; all churn is recorded in overlay
    structures sized by the amount of change, so a step of churn costs
    O(degree) instead of an O(n + m) rebuild.  Reads mirror the static
    backends (see the module docstring for the identity conventions).
    """

    def __init__(self, base: GraphBackend):
        self._base: FrozenGraph = freeze(base)
        self._base_n = self._base.num_vertices
        self._base_m = self._base.num_edges
        #: id bound: base vertices + every join vertex ever added.
        self._n = self._base_n
        self._dead_vertices: Set[int] = set()
        self._dead_edges: Set[int] = set()
        #: join edge index -> (tail, head); eid = base_m + index.
        self._join_endpoints: List[Tuple[int, int]] = []
        #: vertex -> join-edge ids in arrival order (loops listed twice).
        self._join_incident: Dict[int, List[int]] = {}
        # Degree deltas relative to the base (only touched vertices).
        self._deg_delta: Dict[int, int] = {}
        self._in_delta: Dict[int, int] = {}
        self._out_delta: Dict[int, int] = {}
        self._num_live = self._base_n
        self._num_edges = self._base_m
        self._num_loops = self._base.num_self_loops()
        # Per-vertex caches, dropped for the vertices a mutation touches.
        self._inc_cache: Dict[int, Tuple[int, ...]] = {}
        self._unique_cache: Dict[int, List[int]] = {}
        # Masked-CSR materialization for the ensemble engine; rebuilt
        # lazily whenever the overlay mutates (see _build_csr).
        self._csr: Optional[tuple] = None

    # ------------------------------------------------------------------
    # Read API (mirrors MultiGraph / FrozenGraph)
    # ------------------------------------------------------------------

    @property
    def base(self) -> FrozenGraph:
        """The immutable snapshot underneath the overlay."""
        return self._base

    @property
    def num_vertices(self) -> int:
        """The vertex **id bound** (tombstoned ids included).

        Buffers indexed by vertex id must be sized ``num_vertices + 1``;
        use :attr:`num_live_vertices` for the surviving population.
        """
        return self._n

    @property
    def num_live_vertices(self) -> int:
        """Number of surviving (non-tombstoned) vertices."""
        return self._num_live

    @property
    def num_edges(self) -> int:
        """Number of surviving edges (tombstoned edges excluded)."""
        return self._num_edges

    def vertices(self) -> List[int]:
        """The live vertex ids, in increasing order."""
        return [
            v
            for v in range(1, self._n + 1)
            if v not in self._dead_vertices
        ]

    def has_vertex(self, v: int) -> bool:
        """Whether ``v`` is a live vertex (tombstoned ids are not)."""
        return 1 <= v <= self._n and v not in self._dead_vertices

    def degree(self, v: int) -> int:
        """Undirected degree of ``v`` (self-loops count twice)."""
        self._check_vertex(v)
        base = self._base.degree(v) if v <= self._base_n else 0
        return base + self._deg_delta.get(v, 0)

    def in_degree(self, v: int) -> int:
        """Number of surviving edges whose head is ``v``."""
        self._check_vertex(v)
        base = self._base.in_degree(v) if v <= self._base_n else 0
        return base + self._in_delta.get(v, 0)

    def out_degree(self, v: int) -> int:
        """Number of surviving edges whose tail is ``v``."""
        self._check_vertex(v)
        base = self._base.out_degree(v) if v <= self._base_n else 0
        return base + self._out_delta.get(v, 0)

    def incident_edges(self, v: int) -> Tuple[int, ...]:
        """Surviving edge ids incident to ``v``, self-loops repeated.

        Order contract: surviving base edges in base slot order, then
        join edges in arrival order — a stable refinement of both
        static backends' insertion order.
        """
        self._check_vertex(v)
        cached = self._inc_cache.get(v)
        if cached is None:
            dead = self._dead_edges
            parts: List[int] = []
            if v <= self._base_n:
                parts.extend(
                    eid
                    for eid in self._base.incident_edges(v)
                    if eid not in dead
                )
            joined = self._join_incident.get(v)
            if joined:
                parts.extend(eid for eid in joined if eid not in dead)
            cached = tuple(parts)
            self._inc_cache[v] = cached
        return cached

    def edge_endpoints(self, eid: int) -> Tuple[int, int]:
        """The ``(tail, head)`` pair of surviving edge ``eid``."""
        self._check_edge(eid)
        if eid < self._base_m:
            return self._base.edge_endpoints(eid)
        return self._join_endpoints[eid - self._base_m]

    def other_endpoint(self, eid: int, v: int) -> int:
        """The endpoint of ``eid`` other than ``v`` (``v`` for a loop)."""
        tail, head = self.edge_endpoints(eid)
        if v == tail:
            return head
        if v == head:
            return tail
        raise GraphConstructionError(
            f"vertex {v} is not an endpoint of edge {eid} ({tail}, {head})"
        )

    def neighbors(self, v: int) -> List[int]:
        """Multiset of live neighbors (one entry per incident slot)."""
        return [
            self.other_endpoint(eid, v) for eid in self.incident_edges(v)
        ]

    def unique_neighbors(self, v: int) -> List[int]:
        """Sorted distinct neighbors of ``v`` (a loop contributes ``v``)."""
        cached = self._unique_cache.get(v)
        if cached is None:
            cached = sorted(set(self.neighbors(v)))
            self._unique_cache[v] = cached
        return list(cached)

    def edges(self) -> Iterator[Tuple[int, int, int]]:
        """Iterate surviving ``(eid, tail, head)`` triples in eid order."""
        dead = self._dead_edges
        for eid, (tail, head) in enumerate(self._base._endpoints):
            if eid not in dead:
                yield eid, tail, head
        for index, (tail, head) in enumerate(self._join_endpoints):
            eid = self._base_m + index
            if eid not in dead:
                yield eid, tail, head

    def degree_sequence(self) -> List[int]:
        """Degrees of the live vertices, in increasing vertex-id order."""
        return [self.degree(v) for v in self.vertices()]

    def num_self_loops(self) -> int:
        """Number of surviving self-loop edges."""
        return self._num_loops

    def is_connected(self) -> bool:
        """Whether the surviving graph is connected (vacuous if <= 1 live)."""
        if self._num_live <= 1:
            return True
        root = next(
            v
            for v in range(1, self._n + 1)
            if v not in self._dead_vertices
        )
        seen = [False] * (self._n + 1)
        seen[root] = True
        stack = [root]
        count = 1
        while stack:
            u = stack.pop()
            for eid in self.incident_edges(u):
                w = self.other_endpoint(eid, u)
                if not seen[w]:
                    seen[w] = True
                    count += 1
                    stack.append(w)
        return count == self._num_live

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(live={self._num_live}/{self._n}, "
            f"m={self._num_edges})"
        )

    # ------------------------------------------------------------------
    # Overlay mutations
    # ------------------------------------------------------------------

    def add_vertex(self) -> int:
        """Append a join vertex; returns its (never reused) id."""
        self._n += 1
        self._num_live += 1
        self._csr = None
        return self._n

    def add_edge(self, tail: int, head: int) -> int:
        """Append a join edge between live vertices; returns its eid."""
        self._check_vertex(tail)
        self._check_vertex(head)
        eid = self._base_m + len(self._join_endpoints)
        self._join_endpoints.append((tail, head))
        self._join_incident.setdefault(tail, []).append(eid)
        if head == tail:
            self._join_incident[tail].append(eid)
            self._deg_delta[tail] = self._deg_delta.get(tail, 0) + 2
            self._num_loops += 1
        else:
            self._join_incident.setdefault(head, []).append(eid)
            self._deg_delta[tail] = self._deg_delta.get(tail, 0) + 1
            self._deg_delta[head] = self._deg_delta.get(head, 0) + 1
        self._out_delta[tail] = self._out_delta.get(tail, 0) + 1
        self._in_delta[head] = self._in_delta.get(head, 0) + 1
        self._num_edges += 1
        self._invalidate(tail, head)
        return eid

    def remove_edge(self, eid: int) -> None:
        """Tombstone a surviving edge."""
        self._check_edge(eid)
        tail, head = self.edge_endpoints(eid)
        self._dead_edges.add(eid)
        if head == tail:
            self._deg_delta[tail] = self._deg_delta.get(tail, 0) - 2
            self._num_loops -= 1
        else:
            self._deg_delta[tail] = self._deg_delta.get(tail, 0) - 1
            self._deg_delta[head] = self._deg_delta.get(head, 0) - 1
        self._out_delta[tail] = self._out_delta.get(tail, 0) - 1
        self._in_delta[head] = self._in_delta.get(head, 0) - 1
        self._num_edges -= 1
        self._invalidate(tail, head)

    def remove_vertex(self, v: int) -> Tuple[int, ...]:
        """Tombstone a live vertex and every surviving incident edge.

        Returns the removed edge ids (each once, loops included once),
        in incidence order.
        """
        self._check_vertex(v)
        removed: List[int] = []
        for eid in self.incident_edges(v):
            if eid not in self._dead_edges:
                self.remove_edge(eid)
                removed.append(eid)
        self._dead_vertices.add(v)
        self._num_live -= 1
        self._invalidate(v)
        return tuple(removed)

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------

    def is_trivial(self) -> bool:
        """Whether the overlay records no change over the base."""
        return (
            not self._dead_vertices
            and not self._dead_edges
            and not self._join_endpoints
        )

    def relabeling(self) -> Dict[int, int]:
        """The order-preserving live-id -> compact-id map of resnapshot."""
        return {
            old: new
            for new, old in enumerate(self.vertices(), start=1)
        }

    def resnapshot(self) -> FrozenGraph:
        """Compact the overlay into a fresh :class:`FrozenGraph`.

        Live vertices are relabeled order-preservingly to ``1 .. k``
        and surviving edges re-idd densely in old-eid order — the
        :func:`~repro.graphs.components.induced_subgraph` convention —
        so the result is equal, hash-equal, and
        :func:`graph_digest`-identical to freezing the directly-built
        surviving graph.  A trivial overlay returns the base snapshot
        itself; a pure trailing truncation (no joins, tombstones
        confined to the highest vertex and edge ids) composes with the
        buffer-reusing :meth:`FrozenGraph.prefix` instead of
        rebuilding.
        """
        if self.is_trivial():
            return self._base
        live_n = self._num_live
        live_m = self._num_edges
        if (
            not self._join_endpoints
            and all(v > live_n for v in self._dead_vertices)
            and all(eid >= live_m for eid in self._dead_edges)
        ):
            return self._base.prefix(live_n, live_m)
        relabel = self.relabeling()
        compact = MultiGraph(live_n)
        for _, tail, head in self.edges():
            compact.add_edge(relabel[tail], relabel[head])
        return compact.freeze()

    # ------------------------------------------------------------------
    # Masked-CSR view (the ensemble engine's array seam)
    # ------------------------------------------------------------------
    #
    # The walker-ensemble kernel reads `_offsets`, `_slot_edges` and
    # `_slot_targets` off its graph (see search/ensemble.py's _Cell).
    # Exposing the same attributes here — offsets indexed by the full
    # id bound with empty rows for tombstoned vertices, slot edge ids
    # in overlay (non-dense) numbering, slot targets the far endpoints
    # in incidence order — lets the kernel run on the overlay without
    # relabeling, so its costs, flags and oracle traces match the
    # serial algorithms' eids exactly.

    def _build_csr(self) -> tuple:
        cached = self._csr
        if cached is not None:
            return cached
        n = self._n
        counts = [0] * (n + 2)
        for v in range(1, n + 1):
            if v not in self._dead_vertices:
                counts[v + 1] = self.degree(v)
        offsets = [0] * (n + 2)
        running = 0
        for v in range(n + 2):
            running += counts[v]
            offsets[v] = running
        slots = offsets[n + 1]
        slot_edges = [0] * slots
        slot_targets = [0] * slots
        for v in range(1, n + 1):
            if v in self._dead_vertices:
                continue
            cursor = offsets[v]
            for eid in self.incident_edges(v):
                slot_edges[cursor] = eid
                slot_targets[cursor] = self.other_endpoint(eid, v)
                cursor += 1
        if HAVE_NUMPY:
            cached = (
                _np.asarray(offsets, dtype=_np.int64),
                _np.asarray(slot_edges, dtype=_np.int64),
                _np.asarray(slot_targets, dtype=_np.int64),
            )
        else:
            cached = (offsets, slot_edges, slot_targets)
        self._csr = cached
        return cached

    @property
    def _offsets(self):
        return self._build_csr()[0]

    @property
    def _slot_edges(self):
        return self._build_csr()[1]

    @property
    def _slot_targets(self):
        return self._build_csr()[2]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _invalidate(self, *vertices: int) -> None:
        for v in vertices:
            self._inc_cache.pop(v, None)
            self._unique_cache.pop(v, None)
        self._csr = None

    def _check_vertex(self, v: int) -> None:
        if not 1 <= v <= self._n:
            raise GraphConstructionError(
                f"vertex {v} out of range [1, {self._n}]"
            )
        if v in self._dead_vertices:
            raise GraphConstructionError(
                f"vertex {v} has been removed from the overlay"
            )

    def _check_edge(self, eid: int) -> None:
        bound = self._base_m + len(self._join_endpoints)
        if not 0 <= eid < bound:
            raise GraphConstructionError(
                f"edge id {eid} out of range [0, {bound - 1}]"
            )
        if eid in self._dead_edges:
            raise GraphConstructionError(
                f"edge {eid} has been removed from the overlay"
            )

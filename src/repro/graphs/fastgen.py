"""Batched graph generation straight into CSR buffers.

PR 4 vectorized the *search* side of every Monte-Carlo cell; this
module vectorizes the *generation* side.  The serial builders
(:func:`repro.graphs.mori.mori_tree` and friends) remain the
equivalence oracle — everything here reproduces their output
**bit-identically**, by consuming the underlying Mersenne-Twister
stream in exactly the serial draw order:

* every draw the serial builders make (``rng.random()``,
  ``rng.randint``, ``EndpointUrn.sample``) bottoms out in 32-bit
  MT19937 output words.  ``random()`` consumes two words ``w0, w1``
  and yields ``((w0 >> 5) * 2**26 + (w1 >> 6)) * 2**-53``;
  ``randrange(b)`` consumes words ``w``, taking ``w >> (32 - k)``
  (``k = b.bit_length()``) and rejecting values ``>= b``;
* :class:`_WordStream` pulls those words out in bulk (one
  ``getrandbits(32 * count)`` call yields ``count`` words in draw
  order) and, once a kernel knows how many words the serial builder
  would have consumed, repositions the generator to that exact point —
  so interleaving fast and serial builds on a shared ``Random`` stays
  faithful too;
* a small scalar scan replays only the *data-dependent* part of each
  step (which branch the mixture coin took, how many rejection
  redraws the bounded draw needed); the floating-point coin compare
  uses the same IEEE operations in the same order as the serial code,
  so it cannot diverge even at rounding boundaries.  Everything else —
  attachment masses, urn resolution, relabeling, degree counting, CSR
  assembly — is vectorised numpy;
* preferential draws return *urn token indices*; the token values
  (edge heads) are resolved after the scan by pointer doubling over
  the "token i was a copy of token j < i" graph, in O(log n) gathers.

The kernels emit ``(tails, heads)`` endpoint columns and
:func:`frozen_from_pairs` assembles a :class:`FrozenGraph` directly —
skipping the MultiGraph intermediate entirely.  A stable argsort of the
interleaved ``(tail0, head0, tail1, head1, ...)`` owner array
reproduces each vertex's incidence-slot order exactly, because
:meth:`MultiGraph.add_edge` appends the edge id to the tail's incidence
list and then the head's (a self-loop's two slots are consecutive).

The Cooper-Frieze model is the exception to full vectorisation: the
number of words each step consumes depends on sampled *values* (the
per-step edge-count draw), so the stream cannot be laid out ahead of
the values.  :func:`fast_cooper_frieze_frozen` instead replays the
serial draw sequence with flat-list bookkeeping (no MultiGraph, no urn
objects, no step records) and emits CSR directly — bit-identical by
construction, just with the constant factor cut down.

numpy is required: without it every kernel raises
:class:`~repro.errors.EngineUnavailableError`, mirroring the walker
ensemble engine, and callers fall back to the serial builders.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.errors import (
    EngineUnavailableError,
    GraphConstructionError,
    InvalidParameterError,
)
from repro.graphs.cooper_frieze import CooperFriezeParams
from repro.graphs.frozen import FrozenGraph
from repro.graphs.sampling import discrete_distribution_sampler
from repro.rng import RandomLike, make_rng

try:  # pragma: no cover - exercised implicitly by every test run
    import numpy as _np

    HAVE_FASTGEN = True
except ImportError:  # pragma: no cover - the container always has numpy
    _np = None
    HAVE_FASTGEN = False

__all__ = [
    "HAVE_FASTGEN",
    "FASTGEN_MODELS",
    "require_fastgen_engine",
    "frozen_from_pairs",
    "fast_mori_parents",
    "fast_mori_tree_frozen",
    "fast_merged_mori_frozen",
    "fast_mori_edges_per_step_frozen",
    "fast_barabasi_albert_frozen",
    "fast_cooper_frieze_frozen",
]

#: Model names (family_spec vocabulary) with a vectorized kernel.
FASTGEN_MODELS = ("mori", "mori-edges-per-step", "ba", "cooper-frieze")

#: ``rng.random()``'s final scale factor, an exact power of two.
_RECIP53 = 1.0 / 9007199254740992.0

#: Steps per scan chunk; word demand is prefetched per chunk.
_CHUNK = 16384


def require_fastgen_engine() -> None:
    """Raise :class:`EngineUnavailableError` unless numpy is importable."""
    if not HAVE_FASTGEN:
        raise EngineUnavailableError(
            "the vectorized generator requires numpy, which is not "
            "available; use generator='serial' or install numpy"
        )


class _WordStream:
    """The generator's MT19937 words, bulk-extracted in draw order.

    ``Random.getrandbits(32 * count)`` assembles ``count`` generator
    words into an integer least-significant-word first, so the
    little-endian byte serialisation recovers them in exactly the
    order sequential scalar draws would have consumed them.  After a
    scan, :meth:`rewind` repositions the source generator to just past
    the last consumed word — the state it would hold after the serial
    build — so callers may keep drawing from it.

    Alongside the raw words the stream maintains ``coins``:
    ``coins[j]`` is what ``rng.random()`` would return if its two
    words were ``words[j], words[j + 1]`` — precomputed vectorised
    with the same IEEE operations as CPython's scalar formula
    ``((w0 >> 5) * 2**26 + (w1 >> 6)) * 2**-53`` (every intermediate
    is exact: the scaled sum is an integer below 2**53 and the final
    factor is a power of two), so the scan loop pays one list index
    per coin instead of redoing the bit arithmetic.
    """

    def __init__(self, rng):
        self._rng = rng
        self._state = rng.getstate()
        self._array = _np.zeros(0, dtype=_np.uint32)
        self.words = []
        self.coins = []

    def extend_to(self, total: int) -> None:
        """Grow ``self.words`` / ``self.coins`` to ``total`` entries."""
        delta = total - len(self.words)
        if delta <= 0:
            return
        # Grow geometrically so repeated small tail extensions (rare:
        # the kernels prefetch the expected demand up front) cannot go
        # quadratic in array re-concatenation.
        delta = max(delta, 4096, len(self.words))
        raw = self._rng.getrandbits(32 * delta)
        data = raw.to_bytes(4 * delta, "little")
        fresh = _np.frombuffer(data, dtype="<u4")
        self.words.extend(fresh.tolist())
        # Recompute coins from one word before the seam so the pair
        # straddling old and new words is covered.
        lo = max(len(self._array) - 1, 0)
        self._array = _np.concatenate((self._array, fresh))
        pairs = self._array[lo:]
        coins = (
            (pairs[:-1] >> 5).astype(_np.float64) * 67108864.0
            + (pairs[1:] >> 6).astype(_np.float64)
        ) * _RECIP53
        del self.coins[lo:]
        self.coins.extend(coins.tolist())

    def rewind(self, consumed: int) -> None:
        """Leave the generator exactly ``consumed`` words past the start."""
        self._rng.setstate(self._state)
        if consumed:
            self._rng.getrandbits(32 * consumed)


def _shifts_for(bounds):
    """``32 - bit_length(b)`` per bound: the getrandbits(k) shift.

    ``frexp`` exponents equal ``bit_length`` for positive integers
    (exact for every bound below 2**53).
    """
    return (32 - _np.frexp(bounds.astype(_np.float64))[1]).tolist()


def _coin_mixture_scan(stream, p, first_pref_bound, uniform_bounds):
    """Replay the Mori-style mixture steps of the serial builders.

    Each step ``i`` replays::

        if rng.random() * total_mass < preferential_mass:
            r = rng.randrange(first_pref_bound + i)   # urn token index
        else:
            r = rng.randrange(uniform_bounds[i])      # vertex 1 + r

    where ``preferential_mass = p * (first_pref_bound + i)`` (one unit
    of mass per urn token, and the urn gains exactly one token per
    step in every Mori variant) and ``total_mass`` adds ``(1 - p) *
    uniform_bounds[i]`` — the same IEEE expressions, evaluated in the
    same order, as the serial code.  Returns one encoded choice per
    step: token index ``r`` for preferential draws, ``-(1 + r)`` for
    uniform draws of vertex ``1 + r``; and the number of words
    consumed.
    """
    count = len(uniform_bounds)
    pref_bounds = first_pref_bound + _np.arange(count, dtype=_np.int64)
    pref_mass = p * pref_bounds.astype(_np.float64)
    total_mass = (
        pref_mass + (1.0 - p) * uniform_bounds.astype(_np.float64)
    )
    tm_list = total_mass.tolist()
    pm_list = pref_mass.tolist()
    bu_list = uniform_bounds.tolist()
    shu_list = _shifts_for(uniform_bounds)

    choice = []
    append = choice.append
    # One upfront prefetch covering the expected demand: two coin
    # words plus E[attempts] ~= 1/ln 2 rejection-sampling words per
    # step; the per-chunk extension below is a rare tail backstop.
    stream.extend_to(count * 7 // 2 + 64)
    words = stream.words
    coins = stream.coins
    pos = 0
    start = 0
    while start < count:
        stop = min(start + _CHUNK, count)
        stream.extend_to(pos + (stop - start) * 4 + 64)
        # The preferential bound grows by one per step; its shift
        # drops by one whenever the bound reaches a power of two.
        b_p = first_pref_bound + start
        sh_p = 32 - b_p.bit_length()
        next_power = 1 << b_p.bit_length()
        saved_pos, saved_len = pos, len(choice)
        try:
            for tm, pm, b_u, sh_u in zip(
                tm_list[start:stop], pm_list[start:stop],
                bu_list[start:stop], shu_list[start:stop],
            ):
                if coins[pos] * tm < pm:
                    r = words[pos + 2] >> sh_p
                    pos += 3
                    while r >= b_p:
                        r = words[pos] >> sh_p
                        pos += 1
                    append(r)
                else:
                    r = words[pos + 2] >> sh_u
                    pos += 3
                    while r >= b_u:
                        r = words[pos] >> sh_u
                        pos += 1
                    append(-1 - r)
                b_p += 1
                if b_p == next_power:
                    sh_p -= 1
                    next_power += next_power
        except IndexError:
            del choice[saved_len:]
            pos = saved_pos
            stream.extend_to(len(words) + (stop - start) * 4 + 64)
            continue
        start = stop
    return choice, pos


def _uniform_scan(stream, bounds):
    """Replay bare ``rng.randrange(bounds[i])`` draws (no coin)."""
    count = len(bounds)
    b_list = bounds.tolist()
    sh_list = _shifts_for(bounds)
    out = []
    append = out.append
    # E[attempts] ~= 1/ln 2 words per draw; prefetch 1.5 plus slack.
    stream.extend_to(count * 3 // 2 + 64)
    words = stream.words
    pos = 0
    start = 0
    while start < count:
        stop = min(start + _CHUNK, count)
        stream.extend_to(pos + (stop - start) * 2 + 64)
        saved_pos, saved_len = pos, len(out)
        try:
            for b, sh in zip(b_list[start:stop], sh_list[start:stop]):
                r = words[pos] >> sh
                pos += 1
                while r >= b:
                    r = words[pos] >> sh
                    pos += 1
                append(r)
        except IndexError:
            del out[saved_len:]
            pos = saved_pos
            stream.extend_to(len(words) + (stop - start) * 2 + 64)
            continue
        start = stop
    return out, pos


def _resolve_values(values, pointers):
    """Pointer-double ``pointers`` to anchors; return ``values[root]``.

    ``pointers[i] < i`` for every non-anchor slot (an urn token is
    always a copy of an *earlier* token), so the chains strictly
    decrease and ``ptr = ptr[ptr]`` reaches the fixpoint in
    ``O(log n)`` rounds of O(n) gathers.
    """
    while True:
        jumped = pointers[pointers]
        if _np.array_equal(jumped, pointers):
            return values[pointers]
        pointers = jumped


def frozen_from_pairs(num_vertices, tails, heads) -> FrozenGraph:
    """Assemble a :class:`FrozenGraph` from 1-based endpoint columns.

    Bit-identical to ``freeze(MultiGraph.from_edges(num_vertices,
    pairs))``: ``add_edge`` appends each edge id to the tail's
    incidence list and then the head's, so a *stable* sort of the
    interleaved owner array ``(tail0, head0, tail1, head1, ...)``
    reproduces every vertex's slot order, self-loops (two consecutive
    slots) included.
    """
    require_fastgen_engine()
    tails = _np.ascontiguousarray(tails, dtype=_np.int64)
    heads = _np.ascontiguousarray(heads, dtype=_np.int64)
    num_edges = len(tails)

    owner = _np.empty(2 * num_edges, dtype=_np.int64)
    owner[0::2] = tails
    owner[1::2] = heads
    other = _np.empty(2 * num_edges, dtype=_np.int64)
    other[0::2] = heads
    other[1::2] = tails
    order = _np.argsort(owner, kind="stable")
    slot_edges = _np.repeat(
        _np.arange(num_edges, dtype=_np.int64), 2
    )[order]
    slot_targets = other[order]

    degrees = _np.bincount(owner, minlength=num_vertices + 1)
    offsets = _np.zeros(num_vertices + 2, dtype=_np.int64)
    _np.cumsum(degrees, out=offsets[1:])
    indegree = _np.bincount(heads, minlength=num_vertices + 1)
    outdegree = _np.bincount(tails, minlength=num_vertices + 1)

    snapshot = FrozenGraph(
        num_vertices=num_vertices,
        endpoints=list(zip(tails.tolist(), heads.tolist())),
        indegree=indegree.tolist(),
        outdegree=outdegree.tolist(),
        offsets=offsets,
        slot_edges=slot_edges,
        slot_targets=slot_targets,
        num_loops=int(_np.count_nonzero(tails == heads)),
    )
    snapshot._pairs_cache = (tails, heads)
    return snapshot


# ----------------------------------------------------------------------
# Mori tree and its two higher-out-degree variants
# ----------------------------------------------------------------------


def _validate_mori(n: int, p: float, what: str) -> None:
    if n < 2:
        raise InvalidParameterError(f"{what} needs n >= 2, got {n}")
    if not 0.0 <= p <= 1.0:
        raise InvalidParameterError(
            f"attachment parameter p must lie in [0, 1], got {p}"
        )


def fast_mori_parents(n: int, p: float, seed: RandomLike = None):
    """The Mori tree's parent vector, batched.

    Returns an int64 array ``parents`` of length ``n + 1`` with
    ``parents[k]`` the father of vertex ``k`` (entries 0 and 1 are 0),
    elementwise equal to ``mori_tree(n, p, seed).parents``.  The
    generator behind ``seed`` is left in the same state the serial
    build would leave it.
    """
    _validate_mori(n, p, "Mori tree")
    require_fastgen_engine()
    rng = make_rng(seed)
    parents = _np.zeros(n + 1, dtype=_np.int64)
    parents[2] = 1
    if n >= 3:
        # Step i (time t = i + 3): urn holds t - 2 tokens, t - 1
        # vertices exist — the bounds double as the mass integers.
        steps = _np.arange(n - 2, dtype=_np.int64)
        stream = _WordStream(rng)
        choice, consumed = _coin_mixture_scan(stream, p, 1, steps + 2)
        stream.rewind(consumed)

        # Urn slot s holds the head of edge s (the parent of vertex
        # s + 2); slot 0 anchors at vertex 1.  A preferential step's
        # token index points at a strictly earlier slot; a uniform
        # step anchors its own slot at the drawn vertex.
        encoded = _np.array(choice, dtype=_np.int64)
        slots = steps + 1
        values = _np.zeros(n - 1, dtype=_np.int64)
        values[0] = 1
        pointers = _np.arange(n - 1, dtype=_np.int64)
        uniform = encoded < 0
        values[slots[uniform]] = -encoded[uniform]
        pointers[slots[~uniform]] = encoded[~uniform]
        parents[2:] = _resolve_values(values, pointers)
    return parents


def fast_mori_tree_frozen(
    n: int, p: float, seed: RandomLike = None
) -> FrozenGraph:
    """Frozen snapshot equal to ``freeze(mori_tree(n, p, seed).graph)``."""
    parents = fast_mori_parents(n, p, seed)
    tails = _np.arange(2, n + 1, dtype=_np.int64)
    return frozen_from_pairs(n, tails, parents[2:])


def fast_merged_mori_frozen(
    n: int, m: int, p: float, seed: RandomLike = None
) -> FrozenGraph:
    """Frozen merged m-out Mori graph, batched.

    Equal to ``freeze(merged_mori_graph(n, m, p, seed).graph)``: the
    tree is built on ``n * m`` vertices and tree vertex ``j`` relabels
    to merged vertex ``(j - 1) // m + 1``.
    """
    if n < 2:
        raise InvalidParameterError(
            f"merged Mori graph needs n >= 2, got {n}"
        )
    if m < 1:
        raise InvalidParameterError(
            f"merge arity m must be >= 1, got {m}"
        )
    parents = fast_mori_parents(n * m, p, seed)
    tree_tails = _np.arange(2, n * m + 1, dtype=_np.int64)
    tails = (tree_tails - 1) // m + 1
    heads = (parents[2:] - 1) // m + 1
    return frozen_from_pairs(n, tails, heads)


def fast_mori_edges_per_step_frozen(
    n: int, m: int, p: float, seed: RandomLike = None
) -> FrozenGraph:
    """Frozen edges-per-step Mori variant, batched.

    Equal to ``freeze(mori_edges_per_step_graph(n, m, p, seed))``.
    Per-edge granularity: the urn grows by one token per edge (so the
    preferential bound of edge ``e`` is ``e`` itself) while the
    uniform bound steps once per *vertex*.
    """
    _validate_mori(n, p, "edges-per-step Mori graph")
    if m < 1:
        raise InvalidParameterError(f"m must be >= 1, got {m}")
    require_fastgen_engine()
    rng = make_rng(seed)

    drawn = (n - 2) * m  # edges drawn after the initial bundle
    num_edges = m + drawn
    tails = _np.empty(num_edges, dtype=_np.int64)
    tails[:m] = 2
    heads = _np.empty(num_edges, dtype=_np.int64)
    heads[:m] = 1
    if drawn:
        edge_ids = _np.arange(m, num_edges, dtype=_np.int64)
        tails[m:] = 3 + (edge_ids - m) // m
        stream = _WordStream(rng)
        choice, consumed = _coin_mixture_scan(
            stream, p, m, tails[m:] - 1
        )
        stream.rewind(consumed)

        # Urn slot e holds the head of edge e; the m initial slots
        # anchor at vertex 1.
        encoded = _np.array(choice, dtype=_np.int64)
        values = _np.zeros(num_edges, dtype=_np.int64)
        values[:m] = 1
        pointers = _np.arange(num_edges, dtype=_np.int64)
        uniform = encoded < 0
        values[edge_ids[uniform]] = -encoded[uniform]
        pointers[edge_ids[~uniform]] = encoded[~uniform]
        heads = _resolve_values(values, pointers)
    return frozen_from_pairs(n, tails, heads)


def fast_barabasi_albert_frozen(
    n: int, m: int = 1, seed: RandomLike = None
) -> FrozenGraph:
    """Frozen Barabasi-Albert multigraph, batched.

    Equal to ``freeze(barabasi_albert_graph(n, m, seed))``.  The urn
    gains two tokens per drawn edge (target then tail) on top of the
    initial self-loop's two, so the bound of draw ``e`` is
    ``2 + 2 * e`` and odd-numbered tokens are known tails.
    """
    if n < 2:
        raise InvalidParameterError(f"BA graph needs n >= 2, got {n}")
    if m < 1:
        raise InvalidParameterError(f"BA graph needs m >= 1, got {m}")
    require_fastgen_engine()
    rng = make_rng(seed)

    drawn = (n - 1) * m
    draw_ids = _np.arange(drawn, dtype=_np.int64)
    stream = _WordStream(rng)
    picks, consumed = _uniform_scan(stream, 2 + 2 * draw_ids)
    stream.rewind(consumed)

    drawn_tails = 2 + draw_ids // m
    # Token slots: 0 and 1 anchor at vertex 1 (the seed self-loop);
    # slot 2 + 2e is draw e's target (a pointer into earlier slots);
    # slot 3 + 2e is draw e's tail (a known anchor).
    values = _np.zeros(2 + 2 * drawn, dtype=_np.int64)
    values[0] = values[1] = 1
    values[3::2] = drawn_tails
    pointers = _np.arange(2 + 2 * drawn, dtype=_np.int64)
    pointers[2::2] = _np.array(picks, dtype=_np.int64)
    drawn_heads = _resolve_values(values, pointers)[2::2]

    tails = _np.concatenate(
        (_np.array([1], dtype=_np.int64), drawn_tails)
    )
    heads = _np.concatenate(
        (_np.array([1], dtype=_np.int64), drawn_heads)
    )
    return frozen_from_pairs(n, tails, heads)


# ----------------------------------------------------------------------
# Cooper-Frieze
# ----------------------------------------------------------------------


def fast_cooper_frieze_frozen(
    n: int,
    params: Optional[CooperFriezeParams] = None,
    seed: RandomLike = None,
    max_steps: Optional[int] = None,
    checkpoints: Optional[Sequence[int]] = None,
) -> Tuple[FrozenGraph, Optional[Dict[int, int]]]:
    """Frozen Cooper-Frieze graph via the lean replay path.

    Returns ``(snapshot, checkpoint_edge_counts)`` with the snapshot
    equal to ``freeze(cooper_frieze_graph(n, params, seed).graph)``
    and the marks equal to the serial builder's
    ``checkpoint_edge_counts`` (``None`` without ``checkpoints``).

    The word stream here cannot be laid out ahead of the sampled
    values (each step's edge-count draw decides how many draws
    follow), so this path keeps the serial draw sequence — the same
    ``rng`` methods in the same order, hence bit-identical by
    construction — and strips everything else: endpoints and urn
    tokens are flat lists, and the CSR snapshot is assembled directly.
    """
    if n < 2:
        raise InvalidParameterError(
            f"Cooper-Frieze graph needs n >= 2, got {n}"
        )
    if params is None:
        params = CooperFriezeParams()
    pending = sorted(set(checkpoints)) if checkpoints else []
    if pending and (pending[0] < 2 or pending[-1] > n):
        raise InvalidParameterError(
            f"checkpoints must lie in [2, {n}], got {pending}"
        )
    require_fastgen_engine()
    rng = make_rng(seed)
    if max_steps is None:
        max_steps = int(20 * (n - 1) / params.alpha) + 100

    new_count_sampler = discrete_distribution_sampler(
        params.new_edge_distribution
    )
    old_count_sampler = discrete_distribution_sampler(
        params.old_edge_distribution
    )
    alpha = params.alpha
    beta = params.beta
    gamma = params.gamma
    delta = params.delta
    by_indegree = params.preferential_by == "indegree"
    random = rng.random
    randint = rng.randint
    randrange = rng.randrange

    tails = [1]
    heads = [1]
    tokens = [1] if by_indegree else [1, 1]
    num_vertices = 1
    num_steps = 0
    marks: Dict[int, int] = {}
    while num_vertices < n:
        num_steps += 1
        if num_steps > max_steps:
            raise GraphConstructionError(
                f"evolution exceeded {max_steps} steps before "
                f"reaching {n} vertices (alpha={alpha})"
            )
        if random() < alpha:
            existing = num_vertices
            num_vertices += 1
            vertex = num_vertices
            count = new_count_sampler.sample(rng) + 1
            terminal_uniform = beta
        else:
            existing = num_vertices
            if random() < delta:
                vertex = randint(1, existing)
            else:
                vertex = tokens[randrange(len(tokens))]
            count = old_count_sampler.sample(rng) + 1
            terminal_uniform = gamma
        for _ in range(count):
            if random() < terminal_uniform:
                head = randint(1, existing)
            else:
                head = tokens[randrange(len(tokens))]
            tails.append(vertex)
            heads.append(head)
            if by_indegree:
                tokens.append(head)
            else:
                tokens.append(vertex)
                tokens.append(head)
        while pending and num_vertices >= pending[0]:
            marks[pending.pop(0)] = len(tails)

    snapshot = frozen_from_pairs(
        n,
        _np.array(tails, dtype=_np.int64),
        _np.array(heads, dtype=_np.int64),
    )
    return snapshot, (marks if checkpoints else None)

"""Kleinberg's navigable small-world lattice.

The positive result the paper contrasts with ([Kle00]): an ``s x s``
two-dimensional torus where every vertex has its four lattice neighbors
plus ``q`` long-range contacts, the contact of ``u`` being ``v`` with
probability proportional to ``dist(u, v)^{-r}`` (lattice L1 distance,
torus metric).  Greedy routing with distance knowledge needs
``O(log^2 n)`` steps at the critical exponent ``r = 2`` and polynomial
time for every other ``r`` — experiment E8 regenerates this crossover,
against which the scale-free models' ``Ω(√n)`` floor stands out.

The torus (rather than bordered grid) variant keeps the distance
distribution vertex-transitive, so one alias sampler over displacement
vectors serves every vertex: O(n) setup, O(1) per long-range link.

Note the degree distribution here is concentrated (all degrees equal
``4 + q`` plus incoming contacts, Poisson-like) — the paper's point that
Kleinberg's model is *not* scale-free is directly measurable in
experiment E6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import InvalidParameterError
from repro.graphs.base import MultiGraph
from repro.graphs.sampling import AliasSampler
from repro.rng import RandomLike, make_rng

__all__ = ["KleinbergGrid", "kleinberg_grid"]


@dataclass(frozen=True)
class KleinbergGrid:
    """A realised Kleinberg small-world torus.

    Attributes
    ----------
    side:
        Lattice side length ``s``; the graph has ``s * s`` vertices.
    r:
        Long-range clustering exponent.
    q:
        Number of long-range contacts per vertex.
    graph:
        The undirected multigraph view used by the search layer; the
        first ``2 * s * s`` edges are the lattice edges, the rest are
        long-range contacts in vertex order.
    """

    side: int
    r: float
    q: int
    graph: MultiGraph

    @property
    def n(self) -> int:
        """Number of vertices."""
        return self.side * self.side

    def coordinates(self, v: int) -> Tuple[int, int]:
        """The ``(row, column)`` of vertex ``v`` (vertices are 1-based)."""
        if not 1 <= v <= self.n:
            raise InvalidParameterError(
                f"vertex {v} out of range [1, {self.n}]"
            )
        return divmod(v - 1, self.side)

    def vertex_at(self, row: int, column: int) -> int:
        """The vertex at ``(row, column)``, coordinates taken mod ``side``."""
        return (row % self.side) * self.side + (column % self.side) + 1

    def distance(self, u: int, v: int) -> int:
        """Torus L1 (Manhattan) distance between two vertices.

        This is the *global* knowledge Kleinberg's greedy algorithm is
        allowed: lattice coordinates are part of vertex identity.
        """
        ru, cu = self.coordinates(u)
        rv, cv = self.coordinates(v)
        dr = abs(ru - rv)
        dc = abs(cu - cv)
        return min(dr, self.side - dr) + min(dc, self.side - dc)


def _displacement_sampler(side: int, r: float) -> AliasSampler:
    """Alias sampler over non-zero torus displacements, weight ``d^-r``."""
    weights: List[float] = []
    for dr in range(side):
        for dc in range(side):
            if dr == 0 and dc == 0:
                weights.append(0.0)
                continue
            dist = min(dr, side - dr) + min(dc, side - dc)
            weights.append(float(dist) ** (-r) if r > 0 else 1.0)
    return AliasSampler(weights)


def kleinberg_grid(
    side: int,
    r: float = 2.0,
    q: int = 1,
    seed: RandomLike = None,
) -> KleinbergGrid:
    """Sample a Kleinberg small-world torus.

    Parameters
    ----------
    side:
        Lattice side ``s >= 2``; yields ``s^2`` vertices.
    r:
        Clustering exponent, ``r >= 0``; ``r = 2`` is the navigable
        critical value in two dimensions.
    q:
        Long-range contacts per vertex, ``q >= 0``.
    seed:
        Seed or generator.

    Returns
    -------
    KleinbergGrid
    """
    if side < 2:
        raise InvalidParameterError(f"side must be >= 2, got {side}")
    if r < 0:
        raise InvalidParameterError(f"r must be >= 0, got {r}")
    if q < 0:
        raise InvalidParameterError(f"q must be >= 0, got {q}")
    rng = make_rng(seed)

    n = side * side
    graph = MultiGraph(n)

    # Lattice edges: right and down from every vertex (torus wrap).
    for row in range(side):
        for column in range(side):
            v = row * side + column + 1
            right = row * side + (column + 1) % side + 1
            down = ((row + 1) % side) * side + column + 1
            graph.add_edge(v, right)
            graph.add_edge(v, down)

    if q > 0:
        sampler = _displacement_sampler(side, r)
        for v in range(1, n + 1):
            row, column = divmod(v - 1, side)
            for _ in range(q):
                offset = sampler.sample(rng)
                dr, dc = divmod(offset, side)
                target = (
                    ((row + dr) % side) * side
                    + (column + dc) % side
                    + 1
                )
                graph.add_edge(v, target)

    return KleinbergGrid(side=side, r=r, q=q, graph=graph)

"""The long-lived search daemon behind ``repro serve``.

Stdlib only: a :class:`http.server.ThreadingHTTPServer` front end over
a :class:`concurrent.futures.ProcessPoolExecutor` of search workers.
The load-once/serve-many shape:

1. the catalog of :class:`~repro.service.core.GraphEntry` is built (or
   loaded from a corpus) in the daemon process;
2. every snapshot is published into shared memory
   (:func:`repro.graphs.shm.publish_graph`) — one copy per graph,
   system-wide;
3. the worker pool starts with
   :func:`~repro.service.core.service_worker_init` as initializer and
   is *warmed before any server thread exists* (worker processes fork
   from a single-threaded parent — forking a threaded process is how
   stdlib pools deadlock);
4. HTTP threads validate queries and hand them to the **batched
   dispatch layer** (:class:`~repro.service.dispatch.BatchDispatcher`):
   concurrent queries for the same graph coalesce over a short window
   into one worker call that answers the whole batch via
   ``_execute_cells`` — ensemble engine when numpy is available,
   serial otherwise — and the answers fan back out to the waiting
   threads.  A hot-cell :class:`~repro.service.dispatch.AnswerCache`
   sits in front: repeated queries are replay-addressable cells, so a
   hit skips the pool entirely (optionally write-through/read-through
   against a PR 7 trial store, so cached answers persist as ordinary
   versioned trial records).

Robustness: every query future carries a deadline (timeout -> 503
with a structured body), the dispatch queue is bounded (full -> 429
shed instead of thread pile-up), and a worker death fails only the
in-flight batch — the daemon swaps in a fresh pool and keeps serving.

Lifecycle: :meth:`SearchService.stop` is idempotent and run from
``finally`` blocks and SIGTERM handlers alike — HTTP server down,
dispatcher drained (queued queries fail with 503, never hang), pool
down, every shared segment closed *and unlinked* so nothing outlives
the daemon in ``/dev/shm``.

Routes
------
``GET /healthz``
    liveness: ``{"status": "ok", "graphs": N}``.
``GET /graphs``
    the catalog: one descriptor per entry (id, family, n, seed,
    target, start, shm segment name).
``GET /stats``
    the serving counters: per-route request counts and latency
    histogram (p50/p90/p99), batch-size distribution, cache
    hits/misses, shed/timeout counts, in-flight depth.
``POST /search``
    one query ``{"graph", "algorithm", "run_index", "start"?,
    "target"?}`` -> one serialized SearchResult, bit-identical to the
    batch path's cell whether it was answered per-query, coalesced,
    or from cache.
``POST /reload``
    corpus hot-reload: re-scan the corpus directory and publish any
    graphs that appeared since start; ``{"added": [...], "total": N}``.
"""

from __future__ import annotations

import json
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional

from repro.errors import ExperimentError
from repro.graphs.frozen import HAVE_NUMPY
from repro.graphs.shm import publish_graph
from repro.service.core import (
    GraphEntry,
    QueryError,
    answer_spec,
    execute_service_batch,
    load_corpus_entries,
    query_cell,
    service_worker_init,
    validate_query,
    worker_manifest,
)
from repro.service.dispatch import AnswerCache, BatchDispatcher
from repro.service.stats import ServiceStats

__all__ = ["SearchService"]


def _noop() -> None:
    """Warm-up task: forces a worker process to actually spawn."""
    return None


class SearchService:
    """One serving daemon: catalog + shared segments + pool + HTTP.

    Parameters
    ----------
    entries:
        The graph catalog to serve (see
        :func:`~repro.service.core.build_grid_entries` /
        :func:`~repro.service.core.load_corpus_entries`).
    portfolio:
        The served portfolio name; queries name algorithms inside it.
    workers:
        Search worker processes.
    host / port:
        Bind address; ``port=0`` picks a free port (read it back from
        :attr:`port` after :meth:`start`).
    corpus_dir:
        When set, ``POST /reload`` re-scans this corpus directory and
        publishes newly appeared snapshots without a restart.
    batch_window:
        Query-coalescing window in seconds (default 5 ms).  ``0``
        disables coalescing: every query is its own pool call (the
        PR 9 per-query path).
    batch_max:
        Flush a graph's queue early once it holds this many queries.
    max_queue:
        Bound on queued-but-undispatched queries; beyond it new
        queries shed with 429.
    query_timeout:
        Seconds an HTTP thread waits for its answer before returning
        a structured 503.
    cache_size:
        Hot-cell answer-cache capacity (entries); ``0`` disables.
    cache_store:
        Optional :class:`~repro.runner.store.TrialStore` the cache
        writes through to (and reads through from): served answers
        persist as replay-addressable trial records.
    engine:
        Cell execution engine for batches; default auto — ensemble
        when numpy is available, serial otherwise.
    stats_interval:
        Seconds between operator log lines (``0`` disables).
    """

    def __init__(
        self,
        entries: List[GraphEntry],
        *,
        portfolio: str = "adamic",
        workers: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        corpus_dir: Optional[str] = None,
        batch_window: float = 0.005,
        batch_max: int = 64,
        max_queue: int = 1024,
        query_timeout: float = 30.0,
        cache_size: int = 2048,
        cache_store: Any = None,
        engine: Optional[str] = None,
        stats_interval: float = 0.0,
        nodelay: bool = True,
    ):
        if not entries:
            raise ExperimentError("a service needs at least one graph")
        if workers < 1:
            raise ExperimentError(
                f"workers must be >= 1, got {workers}"
            )
        if engine is None:
            engine = "ensemble" if HAVE_NUMPY else "serial"
        elif engine not in ("serial", "ensemble"):
            raise ExperimentError(
                f"unknown service engine {engine!r}; "
                "valid: serial, ensemble"
            )
        if query_timeout <= 0:
            raise ExperimentError(
                f"query_timeout must be > 0, got {query_timeout}"
            )
        self.entries: Dict[str, GraphEntry] = {
            entry.graph_id: entry for entry in entries
        }
        self.portfolio = portfolio
        self.workers = workers
        self.host = host
        self.port = port
        self.corpus_dir = corpus_dir
        self.batch_window = max(0.0, batch_window)
        self.batch_max = batch_max
        self.max_queue = max_queue
        self.query_timeout = query_timeout
        self.engine = engine
        # nodelay=False restores the PR 9 wire behavior (Nagle on, so
        # the two-send HTTP reply stalls behind delayed ACK) — kept
        # solely so the benchmark can reconstruct that baseline.
        self.nodelay = nodelay
        self.stats = ServiceStats()
        self.cache = AnswerCache(cache_size)
        self.cache_store = cache_store
        self._store_lock = threading.Lock()
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_lock = threading.Lock()
        self._dispatcher: Optional[BatchDispatcher] = None
        self._server: Optional[ThreadingHTTPServer] = None
        self._server_thread: Optional[threading.Thread] = None
        self._stats_interval = stats_interval
        self._stats_stop = threading.Event()
        self._stats_thread: Optional[threading.Thread] = None
        self._reload_lock = threading.Lock()
        self._stopped = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Publish, spawn, warm, dispatch, bind, serve — in that order.

        The pool is created and warmed before any thread exists
        (workers fork from a single-threaded parent); the dispatcher
        and stats threads start next; the socket binds last, so a bind
        failure (``EADDRINUSE``) still tears every segment down via
        the ``except`` path — no leak on the double-start error.
        """
        try:
            for entry in self.entries.values():
                if entry.segment is None:
                    entry.segment = publish_graph(entry.snapshot)
                    entry.shm_name = entry.segment.name
            # Pool before any thread: workers fork from a
            # single-threaded parent.
            self._pool = self._spawn_pool(warm=True)
            if self.batch_window > 0:
                # Split the pool across graphs: each graph may keep
                # enough batches in flight to cover its share of the
                # workers, but no more — extra in-flight batches would
                # only fragment the backlog inside the pool's queue.
                inflight = max(
                    1, self.workers // max(1, len(self.entries))
                )
                self._dispatcher = BatchDispatcher(
                    self._submit_batch,
                    window=self.batch_window,
                    batch_max=self.batch_max,
                    max_pending=self.max_queue,
                    inflight_per_graph=inflight,
                    stats=self.stats,
                    on_batch_error=self._note_batch_error,
                )
            if self._stats_interval > 0:
                self._stats_thread = threading.Thread(
                    target=self._stats_loop,
                    name="repro-serve-stats",
                    daemon=True,
                )
                self._stats_thread.start()
            handler = _Handler if self.nodelay else _LegacyWireHandler
            self._server = _Server(
                (self.host, self.port), handler
            )
            self._server.daemon_threads = True
            self._server.service = self  # type: ignore[attr-defined]
            self.port = self._server.server_address[1]
            self._server_thread = threading.Thread(
                target=self._server.serve_forever,
                name="repro-serve-http",
                daemon=True,
            )
            self._server_thread.start()
        except BaseException:
            self.stop()
            raise

    def stop(self) -> None:
        """Tear everything down; safe to call twice or half-started.

        Order matters: the HTTP server stops accepting first, then
        the dispatcher fails every queued query with 503 (so no
        handler thread is left waiting on a future nobody will
        resolve), then the pool drains, then the segments unlink.
        """
        if self._stopped:
            return
        self._stopped = True
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._server_thread is not None:
            self._server_thread.join(timeout=5)
            self._server_thread = None
        if self._dispatcher is not None:
            self._dispatcher.close()
            self._dispatcher = None
        # Handler threads are daemons; give the ones whose queries
        # just resolved (503 on close, or a final pool answer) a
        # bounded moment to flush their responses before the process
        # can exit under them.
        deadline = time.monotonic() + 2.0
        while (
            self.stats.in_flight > 0
            and time.monotonic() < deadline
        ):
            time.sleep(0.01)
        self._stats_stop.set()
        if self._stats_thread is not None:
            self._stats_thread.join(timeout=5)
            self._stats_thread = None
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        for entry in self.entries.values():
            if entry.segment is not None:
                entry.segment.close()
                entry.segment.unlink()
                entry.segment = None

    def __enter__(self) -> "SearchService":
        self.start()
        return self

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    def _manifest(self) -> str:
        return worker_manifest(
            list(self.entries.values()), self.portfolio
        )

    def _spawn_pool(self, *, warm: bool) -> ProcessPoolExecutor:
        pool = ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=service_worker_init,
            initargs=(self._manifest(),),
        )
        if warm:
            for future in [
                pool.submit(_noop) for _ in range(self.workers)
            ]:
                future.result()
        return pool

    def _stats_loop(self) -> None:
        while not self._stats_stop.wait(self._stats_interval):
            print(self.stats.log_line(), flush=True)

    # ------------------------------------------------------------------
    # Pool dispatch and recovery (called from HTTP/dispatcher threads)
    # ------------------------------------------------------------------

    def _submit_batch(self, graph_id: str, cells: List[Dict[str, Any]]):
        """One worker call for a (graph, cells) batch; self-healing.

        A broken pool (a worker died) is replaced once, and the batch
        retried on the fresh pool *only if its submission itself
        failed* — a batch that died mid-execution is reported to its
        queries, not silently re-run.
        """
        for attempt in (0, 1):
            pool = self._pool
            if pool is None or self._stopped:
                raise QueryError(503, "service is shutting down")
            try:
                return pool.submit(
                    execute_service_batch,
                    graph_id, cells, self.engine,
                )
            except (BrokenProcessPool, RuntimeError) as error:
                self._respawn_pool(pool)
                if attempt:
                    raise QueryError(
                        503,
                        "worker pool unavailable: "
                        f"{type(error).__name__}: {error}",
                    ) from error
        raise AssertionError("unreachable")  # pragma: no cover

    def _note_batch_error(self, error: BaseException) -> None:
        """Dispatcher hook: a batch future failed.

        Worker death surfaces as :class:`BrokenProcessPool`; the pool
        object is permanently broken, so swap in a fresh one — the
        failed batch's queries already got their 503, every later
        batch lands on live workers.
        """
        if isinstance(error, BrokenProcessPool):
            pool = self._pool
            if pool is not None:
                self._respawn_pool(pool)

    def _respawn_pool(self, broken: ProcessPoolExecutor) -> None:
        """Replace ``broken`` if it is still the active pool."""
        with self._pool_lock:
            if self._stopped or self._pool is not broken:
                return
            self._pool = self._spawn_pool(warm=False)
        broken.shutdown(wait=False)

    # ------------------------------------------------------------------
    # Request handling (called from HTTP threads)
    # ------------------------------------------------------------------

    def handle_search(self, payload: Any) -> Dict[str, Any]:
        graph_id, algorithm, run_index, start, target = validate_query(
            payload, self.entries, self.portfolio
        )
        key = (graph_id, algorithm, run_index, start, target)
        caching = self.cache.capacity > 0 or self.cache_store is not None
        if caching:
            answer = self.cache.get(key) if self.cache.capacity > 0 else None
            if answer is None:
                answer = self._store_read(
                    graph_id, algorithm, run_index, start, target
                )
                if answer is not None:
                    self.cache.put(key, answer)
            if answer is not None:
                self.stats.cache_hit()
                return answer
            self.stats.cache_miss()
        cell = query_cell(algorithm, run_index, start, target)
        dispatcher = self._dispatcher
        if dispatcher is not None:
            future = dispatcher.submit(graph_id, cell)
        else:
            # Per-query dispatch (batch_window=0): one pool call per
            # request, the PR 9 path.
            self.stats.record_batch(1)
            try:
                batch = self._submit_batch(graph_id, [cell])
            except QueryError:
                self.stats.record_batch_failure()
                raise
            future = _Unbatch(batch)
        try:
            answer = future.result(timeout=self.query_timeout)
        except QueryError:
            raise
        except FutureTimeoutError:
            self.stats.record_timeout()
            raise QueryError(
                503,
                "query timed out after "
                f"{self.query_timeout:g}s in dispatch/execution",
                timeout_s=self.query_timeout,
            ) from None
        except BrokenProcessPool as error:
            # Per-query path: the worker died under this very call.
            self.stats.record_batch_failure()
            pool = self._pool
            if pool is not None:
                self._respawn_pool(pool)
            raise QueryError(
                503,
                f"worker process died executing the query: {error}",
            ) from error
        self.cache.put(key, answer)
        self._store_write(
            graph_id, algorithm, run_index, start, target, answer
        )
        return answer

    def _store_read(
        self, graph_id, algorithm, run_index, start, target
    ) -> Optional[Dict[str, Any]]:
        if self.cache_store is None:
            return None
        from repro.runner.store import MISS

        spec = answer_spec(
            self.entries[graph_id], self.portfolio,
            algorithm, run_index, start, target,
        )
        with self._store_lock:
            value = self.cache_store.get(spec)
        return None if value is MISS else value

    def _store_write(
        self, graph_id, algorithm, run_index, start, target, answer
    ) -> None:
        if self.cache_store is None:
            return
        spec = answer_spec(
            self.entries[graph_id], self.portfolio,
            algorithm, run_index, start, target,
        )
        with self._store_lock:
            self.cache_store.put(spec, answer)

    def handle_graphs(self) -> List[Dict[str, Any]]:
        return [
            entry.describe()
            for _, entry in sorted(self.entries.items())
        ]

    def handle_stats(self) -> Dict[str, Any]:
        snapshot = self.stats.snapshot(cache_info=self.cache.info())
        snapshot["graphs"] = len(self.entries)
        snapshot["workers"] = self.workers
        snapshot["engine"] = self.engine
        snapshot["batch_window_ms"] = self.batch_window * 1000.0
        snapshot["batch_max"] = self.batch_max
        dispatcher = self._dispatcher
        snapshot["queue_depth"] = (
            dispatcher.pending if dispatcher is not None else 0
        )
        return snapshot

    def handle_reload(self) -> Dict[str, Any]:
        """Publish corpus entries that appeared since the last scan.

        Existing graphs keep their segments; a pool initializer cannot
        be re-run in live workers, so when anything new appears the
        daemon swaps in a fresh pool whose initializer carries the
        extended manifest (in-flight queries drain on the old pool
        first).  The dispatcher survives the swap untouched — it
        resolves the active pool per batch.  With no corpus directory
        the call is a no-op reporting the current catalog size.
        """
        with self._reload_lock:
            if self.corpus_dir is None:
                return {"added": [], "total": len(self.entries)}
            added = []
            for entry in load_corpus_entries(self.corpus_dir):
                if entry.graph_id in self.entries:
                    continue
                entry.segment = publish_graph(entry.snapshot)
                entry.shm_name = entry.segment.name
                self.entries[entry.graph_id] = entry
                added.append(entry.graph_id)
            if added:
                # Swap in a pool whose workers know the new graphs;
                # in-flight queries finish on the old pool first.
                with self._pool_lock:
                    old_pool = self._pool
                    self._pool = self._spawn_pool(warm=False)
                if old_pool is not None:
                    old_pool.shutdown(wait=True)
            return {"added": added, "total": len(self.entries)}


class _Unbatch:
    """A single-cell view of a batch future (per-query dispatch)."""

    __slots__ = ("_batch",)

    def __init__(self, batch):
        self._batch = batch

    def result(self, timeout: Optional[float] = None):
        return self._batch.result(timeout=timeout)[0]


class _Server(ThreadingHTTPServer):
    """The daemon's HTTP front end.

    socketserver's default listen backlog is 5; a burst of
    load-generator connections overflows it and the kernel resets the
    excess SYNs.  128 rides out any sane client fleet without resets.
    """

    request_queue_size = 128


class _Handler(BaseHTTPRequestHandler):
    """Thin JSON-over-HTTP face of :class:`SearchService`."""

    protocol_version = "HTTP/1.1"
    # The reply is two small sends (header block, then body); without
    # TCP_NODELAY the second stalls behind Nagle + delayed ACK for up
    # to ~40ms — which would put a floor under the cache hit path.
    disable_nagle_algorithm = True

    # Quiet by default; the daemon's stdout is the operator surface.
    def log_message(self, format, *args):  # noqa: A002
        pass

    @property
    def _service(self) -> SearchService:
        return self.server.service  # type: ignore[attr-defined]

    def _reply(self, status: int, payload: Any) -> None:
        body = json.dumps(payload).encode("utf-8")
        try:
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError, OSError):
            # The client hung up mid-response; this connection is
            # dead, the daemon is fine.
            self.close_connection = True

    def _drain_body(self) -> bytes:
        """Consume the request body (keep-alive correctness).

        Every POST body must be read off the socket even when the
        route ignores it — leftover bytes would be parsed as the start
        of the *next* request line on this connection.
        """
        length = int(self.headers.get("Content-Length") or 0)
        return self.rfile.read(length) if length else b""

    def _read_json(self) -> Any:
        raw = self._drain_body()
        if not raw:
            raise QueryError(400, "empty request body")
        try:
            return json.loads(raw)
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise QueryError(
                400, f"request body is not valid JSON: {error}"
            ) from error

    def _route(self, route: str, handler) -> None:
        """Run one route handler with stats + error accounting."""
        service = self._service
        service.stats.enter()
        begin = time.perf_counter()
        error = False
        try:
            try:
                self._reply(200, handler())
            except QueryError as query_error:
                error = True
                self._reply(query_error.status, {
                    "error": str(query_error),
                    "status": query_error.status,
                    **query_error.extra,
                })
            except (BrokenPipeError, ConnectionResetError):
                error = True
                self.close_connection = True
            except Exception as exc:  # pragma: no cover - last resort
                error = True
                self._reply(500, {
                    "error": f"{type(exc).__name__}: {exc}",
                    "status": 500,
                })
        finally:
            service.stats.leave()
            service.stats.record_request(
                route, time.perf_counter() - begin, error=error
            )

    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        if self.path == "/healthz":
            self._route("healthz", lambda: {
                "status": "ok",
                "graphs": len(self._service.entries),
            })
        elif self.path == "/graphs":
            self._route("graphs", self._service.handle_graphs)
        elif self.path == "/stats":
            self._route("stats", self._service.handle_stats)
        else:
            self._reply(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        if self.path == "/search":
            self._route(
                "search",
                lambda: self._service.handle_search(
                    self._read_json()
                ),
            )
        elif self.path == "/reload":
            self._drain_body()
            self._route("reload", self._service.handle_reload)
        else:
            self._drain_body()
            self._reply(
                404, {"error": f"unknown path {self.path!r}"}
            )


class _LegacyWireHandler(_Handler):
    """The PR 9 wire behavior: Nagle left on.

    The reply's two small sends then serialize behind delayed ACK
    (~40 ms per request on loopback).  Exists only so the serving
    benchmark can measure the batched dispatch layer against the PR 9
    per-query path as it actually shipped; never the default.
    """

    disable_nagle_algorithm = False

"""The long-lived search daemon behind ``repro serve``.

Stdlib only: a :class:`http.server.ThreadingHTTPServer` front end over
a :class:`concurrent.futures.ProcessPoolExecutor` of search workers.
The load-once/serve-many shape:

1. the catalog of :class:`~repro.service.core.GraphEntry` is built (or
   loaded from a corpus) in the daemon process;
2. every snapshot is published into shared memory
   (:func:`repro.graphs.shm.publish_graph`) — one copy per graph,
   system-wide;
3. the worker pool starts with
   :func:`~repro.service.core.service_worker_init` as initializer and
   is *warmed before any server thread exists* (worker processes fork
   from a single-threaded parent — forking a threaded process is how
   stdlib pools deadlock);
4. HTTP threads validate queries, submit them to the pool, and stream
   the JSON answers back; client disconnects mid-response are
   swallowed per-connection, never fatal.

Lifecycle: :meth:`SearchService.stop` is idempotent and run from
``finally`` blocks and SIGTERM handlers alike — HTTP server down,
pool down, every shared segment closed *and unlinked* so nothing
outlives the daemon in ``/dev/shm``.

Routes
------
``GET /healthz``
    liveness: ``{"status": "ok", "graphs": N}``.
``GET /graphs``
    the catalog: one descriptor per entry (id, family, n, seed,
    target, start, shm segment name).
``POST /search``
    one query ``{"graph", "algorithm", "run_index", "start"?,
    "target"?}`` -> one serialized SearchResult, bit-identical to the
    batch path's cell.
``POST /reload``
    corpus hot-reload: re-scan the corpus directory and publish any
    graphs that appeared since start; ``{"added": [...], "total": N}``.
"""

from __future__ import annotations

import json
import threading
from concurrent.futures import ProcessPoolExecutor
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional

from repro.errors import ExperimentError
from repro.graphs.shm import publish_graph
from repro.service.core import (
    GraphEntry,
    QueryError,
    execute_service_query,
    load_corpus_entries,
    service_worker_init,
    validate_query,
    worker_manifest,
)

__all__ = ["SearchService"]


def _noop() -> None:
    """Warm-up task: forces a worker process to actually spawn."""
    return None


class SearchService:
    """One serving daemon: catalog + shared segments + pool + HTTP.

    Parameters
    ----------
    entries:
        The graph catalog to serve (see
        :func:`~repro.service.core.build_grid_entries` /
        :func:`~repro.service.core.load_corpus_entries`).
    portfolio:
        The served portfolio name; queries name algorithms inside it.
    workers:
        Search worker processes.
    host / port:
        Bind address; ``port=0`` picks a free port (read it back from
        :attr:`port` after :meth:`start`).
    corpus_dir:
        When set, ``POST /reload`` re-scans this corpus directory and
        publishes newly appeared snapshots without a restart.
    """

    def __init__(
        self,
        entries: List[GraphEntry],
        *,
        portfolio: str = "adamic",
        workers: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        corpus_dir: Optional[str] = None,
    ):
        if not entries:
            raise ExperimentError("a service needs at least one graph")
        if workers < 1:
            raise ExperimentError(
                f"workers must be >= 1, got {workers}"
            )
        self.entries: Dict[str, GraphEntry] = {
            entry.graph_id: entry for entry in entries
        }
        self.portfolio = portfolio
        self.workers = workers
        self.host = host
        self.port = port
        self.corpus_dir = corpus_dir
        self._pool: Optional[ProcessPoolExecutor] = None
        self._server: Optional[ThreadingHTTPServer] = None
        self._server_thread: Optional[threading.Thread] = None
        self._reload_lock = threading.Lock()
        self._stopped = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Publish, spawn, warm, bind, serve — in that order.

        The socket binds *before* the expensive pool warm-up would
        matter for double-start detection, but after publication so a
        bind failure (``EADDRINUSE``) still tears every segment down
        via the ``except`` path — no leak on the double-start error.
        """
        try:
            for entry in self.entries.values():
                if entry.segment is None:
                    entry.segment = publish_graph(entry.snapshot)
                    entry.shm_name = entry.segment.name
            # Pool before server threads: workers fork from a
            # single-threaded parent.
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=service_worker_init,
                initargs=(self._manifest(),),
            )
            warmups = [
                self._pool.submit(_noop) for _ in range(self.workers)
            ]
            for future in warmups:
                future.result()
            self._server = ThreadingHTTPServer(
                (self.host, self.port), _Handler
            )
            self._server.daemon_threads = True
            self._server.service = self  # type: ignore[attr-defined]
            self.port = self._server.server_address[1]
            self._server_thread = threading.Thread(
                target=self._server.serve_forever,
                name="repro-serve-http",
                daemon=True,
            )
            self._server_thread.start()
        except BaseException:
            self.stop()
            raise

    def stop(self) -> None:
        """Tear everything down; safe to call twice or half-started."""
        if self._stopped:
            return
        self._stopped = True
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._server_thread is not None:
            self._server_thread.join(timeout=5)
            self._server_thread = None
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        for entry in self.entries.values():
            if entry.segment is not None:
                entry.segment.close()
                entry.segment.unlink()
                entry.segment = None

    def __enter__(self) -> "SearchService":
        self.start()
        return self

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    def _manifest(self) -> str:
        return worker_manifest(
            list(self.entries.values()), self.portfolio
        )

    # ------------------------------------------------------------------
    # Request handling (called from HTTP threads)
    # ------------------------------------------------------------------

    def handle_search(self, payload: Any) -> Dict[str, Any]:
        graph_id, algorithm, run_index, start, target = validate_query(
            payload, self.entries, self.portfolio
        )
        pool = self._pool
        if pool is None:
            raise QueryError(503, "service is shutting down")
        future = pool.submit(
            execute_service_query,
            graph_id, algorithm, run_index, start, target,
        )
        return future.result()

    def handle_graphs(self) -> List[Dict[str, Any]]:
        return [
            entry.describe()
            for _, entry in sorted(self.entries.items())
        ]

    def handle_reload(self) -> Dict[str, Any]:
        """Publish corpus entries that appeared since the last scan.

        Existing graphs keep their segments; a pool initializer cannot
        be re-run in live workers, so when anything new appears the
        daemon swaps in a fresh pool whose initializer carries the
        extended manifest (in-flight queries drain on the old pool
        first).  With no corpus directory the call is a no-op
        reporting the current catalog size.
        """
        with self._reload_lock:
            if self.corpus_dir is None:
                return {"added": [], "total": len(self.entries)}
            added = []
            for entry in load_corpus_entries(self.corpus_dir):
                if entry.graph_id in self.entries:
                    continue
                entry.segment = publish_graph(entry.snapshot)
                entry.shm_name = entry.segment.name
                self.entries[entry.graph_id] = entry
                added.append(entry.graph_id)
            if added:
                # Swap in a pool whose workers know the new graphs;
                # in-flight queries finish on the old pool first.
                old_pool = self._pool
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers,
                    initializer=service_worker_init,
                    initargs=(self._manifest(),),
                )
                if old_pool is not None:
                    old_pool.shutdown(wait=True)
            return {"added": added, "total": len(self.entries)}


class _Handler(BaseHTTPRequestHandler):
    """Thin JSON-over-HTTP face of :class:`SearchService`."""

    protocol_version = "HTTP/1.1"

    # Quiet by default; the daemon's stdout is the operator surface.
    def log_message(self, format, *args):  # noqa: A002
        pass

    @property
    def _service(self) -> SearchService:
        return self.server.service  # type: ignore[attr-defined]

    def _reply(self, status: int, payload: Any) -> None:
        body = json.dumps(payload).encode("utf-8")
        try:
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError, OSError):
            # The client hung up mid-response; this connection is
            # dead, the daemon is fine.
            self.close_connection = True

    def _drain_body(self) -> bytes:
        """Consume the request body (keep-alive correctness).

        Every POST body must be read off the socket even when the
        route ignores it — leftover bytes would be parsed as the start
        of the *next* request line on this connection.
        """
        length = int(self.headers.get("Content-Length") or 0)
        return self.rfile.read(length) if length else b""

    def _read_json(self) -> Any:
        raw = self._drain_body()
        if not raw:
            raise QueryError(400, "empty request body")
        try:
            return json.loads(raw)
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise QueryError(
                400, f"request body is not valid JSON: {error}"
            ) from error

    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        if self.path == "/healthz":
            self._reply(200, {
                "status": "ok",
                "graphs": len(self._service.entries),
            })
        elif self.path == "/graphs":
            self._reply(200, self._service.handle_graphs())
        else:
            self._reply(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        try:
            if self.path == "/search":
                payload = self._read_json()
                self._reply(200, self._service.handle_search(payload))
            elif self.path == "/reload":
                self._drain_body()
                self._reply(200, self._service.handle_reload())
            else:
                self._drain_body()
                self._reply(
                    404, {"error": f"unknown path {self.path!r}"}
                )
        except QueryError as error:
            self._reply(error.status, {"error": str(error)})
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True
        except Exception as error:  # pragma: no cover - last resort
            self._reply(500, {
                "error": f"{type(error).__name__}: {error}"
            })

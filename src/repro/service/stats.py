"""Service observability: latency histograms and serving counters.

One histogram implementation serves every latency number the system
reports: the daemon's ``GET /stats`` route, the ``--stats-interval``
log line, and the load generator's summary all funnel through
:class:`LatencyHistogram`, so a percentile printed by ``loadgen`` and
one printed by the daemon are the same estimator over the same bucket
layout — comparable by construction, never two codepaths drifting.

The histogram is fixed-size (geometric buckets from 0.1 ms to ~2
minutes, ~12%% resolution) so recording a sample is O(1) and the
daemon's memory footprint is constant no matter how many queries it
serves — the property a per-request ``list.append`` would lose at
million-user volumes.

:class:`ServiceStats` aggregates the daemon-side view: per-route
request/error counts and latency, the dispatcher's batch-size
distribution, answer-cache hits/misses, shed (429) and timeout (503)
counts, and the in-flight gauge.  Everything is guarded by one lock
and snapshots to a plain JSON-able dict.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Any, Dict, Optional

__all__ = ["LatencyHistogram", "ServiceStats"]

#: Lowest bucket upper bound, seconds.  Anything faster lands in
#: bucket 0 — sub-0.1ms resolution is measurement noise over HTTP.
_FLOOR = 1e-4
#: Geometric growth per bucket: ~12% relative resolution.
_GROWTH = 1.25
#: 64 buckets: _FLOOR * _GROWTH**63 ≈ 124 s, past any sane timeout.
_BUCKETS = 64
_LOG_GROWTH = math.log(_GROWTH)


def _bucket_index(seconds: float) -> int:
    if seconds <= _FLOOR:
        return 0
    index = int(math.log(seconds / _FLOOR) / _LOG_GROWTH) + 1
    return min(index, _BUCKETS - 1)


def _bucket_bound(index: int) -> float:
    """Upper bound of bucket ``index``, seconds."""
    return _FLOOR * _GROWTH ** index


class LatencyHistogram:
    """Fixed-size geometric latency histogram (thread-safe).

    ``record`` is O(1); ``percentile`` is a nearest-rank scan over the
    64 buckets returning the matched bucket's upper bound (clamped to
    the exact observed max), so reported percentiles are conservative
    to within one bucket (~12%) — plenty for p50/p90/p99 serving
    dashboards and for relative A/B comparisons like the bench gates.
    """

    def __init__(self) -> None:
        self._counts = [0] * _BUCKETS
        self._count = 0
        self._sum = 0.0
        self._max = 0.0
        self._lock = threading.Lock()

    def record(self, seconds: float) -> None:
        seconds = max(0.0, float(seconds))
        with self._lock:
            self._counts[_bucket_index(seconds)] += 1
            self._count += 1
            self._sum += seconds
            if seconds > self._max:
                self._max = seconds

    @property
    def count(self) -> int:
        return self._count

    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile in seconds (0 when empty)."""
        with self._lock:
            if not self._count:
                return 0.0
            rank = max(1, math.ceil(q * self._count))
            seen = 0
            for index, bucket in enumerate(self._counts):
                seen += bucket
                if seen >= rank:
                    return min(_bucket_bound(index), self._max)
            return self._max  # pragma: no cover - rank <= count

    def snapshot(self) -> Dict[str, Any]:
        """``{"count", "mean_ms", "p50_ms", "p90_ms", "p99_ms",
        "max_ms"}`` — the shape every latency report shares."""
        return {
            "count": self._count,
            "mean_ms": round(self.mean() * 1000.0, 3),
            "p50_ms": round(self.percentile(0.50) * 1000.0, 3),
            "p90_ms": round(self.percentile(0.90) * 1000.0, 3),
            "p99_ms": round(self.percentile(0.99) * 1000.0, 3),
            "max_ms": round(self._max * 1000.0, 3),
        }


class ServiceStats:
    """The daemon's aggregate serving counters (thread-safe).

    Routes are tracked by name (``"search"``, ``"graphs"``, ...);
    only routes that actually served a request appear in snapshots.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._started = time.monotonic()
        self._route_counts: Dict[str, int] = {}
        self._route_errors: Dict[str, int] = {}
        self._route_latency: Dict[str, LatencyHistogram] = {}
        self._batch_sizes: Dict[int, int] = {}
        self._batch_queries = 0
        self._batch_failures = 0
        self._cache_hits = 0
        self._cache_misses = 0
        self._shed = 0
        self._timeouts = 0
        self._in_flight = 0

    # -- request accounting -------------------------------------------

    def record_request(
        self, route: str, seconds: float, *, error: bool = False
    ) -> None:
        with self._lock:
            self._route_counts[route] = (
                self._route_counts.get(route, 0) + 1
            )
            if error:
                self._route_errors[route] = (
                    self._route_errors.get(route, 0) + 1
                )
            histogram = self._route_latency.get(route)
            if histogram is None:
                histogram = LatencyHistogram()
                self._route_latency[route] = histogram
        histogram.record(seconds)

    def enter(self) -> None:
        with self._lock:
            self._in_flight += 1

    def leave(self) -> None:
        with self._lock:
            self._in_flight -= 1

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    # -- dispatcher accounting ----------------------------------------

    def record_batch(self, size: int) -> None:
        with self._lock:
            self._batch_sizes[size] = self._batch_sizes.get(size, 0) + 1
            self._batch_queries += size

    def record_batch_failure(self) -> None:
        with self._lock:
            self._batch_failures += 1

    # -- cache / shedding ---------------------------------------------

    def cache_hit(self) -> None:
        with self._lock:
            self._cache_hits += 1

    def cache_miss(self) -> None:
        with self._lock:
            self._cache_misses += 1

    def record_shed(self) -> None:
        with self._lock:
            self._shed += 1

    def record_timeout(self) -> None:
        with self._lock:
            self._timeouts += 1

    # -- reporting -----------------------------------------------------

    def snapshot(
        self, *, cache_info: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        """One JSON-able view of everything (the ``/stats`` body)."""
        with self._lock:
            batches = sum(self._batch_sizes.values())
            routes = {
                route: {
                    "count": self._route_counts[route],
                    "errors": self._route_errors.get(route, 0),
                    **self._route_latency[route].snapshot(),
                }
                for route in sorted(self._route_counts)
            }
            payload: Dict[str, Any] = {
                "uptime_s": round(
                    time.monotonic() - self._started, 3
                ),
                "in_flight": self._in_flight,
                "routes": routes,
                "batches": {
                    "count": batches,
                    "queries": self._batch_queries,
                    "failed": self._batch_failures,
                    "mean_size": round(
                        self._batch_queries / batches, 3
                    ) if batches else 0.0,
                    "size_distribution": {
                        str(size): self._batch_sizes[size]
                        for size in sorted(self._batch_sizes)
                    },
                },
                "cache": {
                    "hits": self._cache_hits,
                    "misses": self._cache_misses,
                    **(cache_info or {}),
                },
                "shed": self._shed,
                "timeouts": self._timeouts,
            }
        return payload

    def log_line(self) -> str:
        """The one-line operator summary ``--stats-interval`` prints."""
        snap = self.snapshot()
        search = snap["routes"].get("search", {})
        batches = snap["batches"]
        cache = snap["cache"]
        return (
            f"stats: served={search.get('count', 0)} "
            f"p50={search.get('p50_ms', 0.0):.1f}ms "
            f"p99={search.get('p99_ms', 0.0):.1f}ms "
            f"in_flight={snap['in_flight']} "
            f"batches={batches['count']} "
            f"mean_batch={batches['mean_size']:.1f} "
            f"cache={cache['hits']}/{cache['hits'] + cache['misses']} "
            f"shed={snap['shed']} timeouts={snap['timeouts']}"
        )

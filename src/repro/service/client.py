"""Stdlib client and load generator for the search daemon.

:class:`ServiceClient` is one keep-alive connection speaking the
daemon's JSON routes; :func:`run_load` drives N concurrent clients
over a fixed query list and reports latency percentiles and sustained
throughput — the serving-performance numbers the P2P resource-
discovery literature reports (and ``BENCH_PR9.json`` records).

Responses come back *in query order* regardless of which client
thread carried which query, so a load run doubles as a determinism
check against the batch path.

Two arrival models (the distinction the serving literature insists
on):

* **closed-loop** (default): each client issues its next query the
  moment the previous answer lands.  Concurrency is capped at
  ``clients``, so the measured qps is throttled by latency — which
  systematically *under-reports* coalescing gains (a fast server just
  makes the loop spin faster, it never sees deep queues).
* **open-loop** (``arrival=<qps>``): query *i* is due at
  ``i/qps`` seconds regardless of how the previous one fared.  When
  the daemon falls behind, queries queue up — exactly the regime
  batching is for.

Latency percentiles come from the same
:class:`~repro.service.stats.LatencyHistogram` the daemon's
``/stats`` route uses, so client-side and server-side numbers share
one estimator.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ExperimentError
from repro.service.stats import LatencyHistogram

__all__ = ["ServiceClient", "ServiceHTTPError", "run_load"]


class ServiceHTTPError(ExperimentError):
    """A non-2xx daemon response; carries the HTTP status."""

    def __init__(self, status: int, message: str):
        self.status = status
        super().__init__(f"HTTP {status}: {message}")


class ServiceClient:
    """One persistent connection to a running search daemon."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def _request(
        self, method: str, path: str, payload: Any = None
    ) -> Any:
        body = (
            None if payload is None
            else json.dumps(payload).encode("utf-8")
        )
        headers = (
            {} if body is None
            else {"Content-Type": "application/json"}
        )
        # One reconnect on a dropped keep-alive: the daemon may have
        # recycled the connection between requests.
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                raw = response.read()
                break
            except (http.client.HTTPException, ConnectionError,
                    BrokenPipeError, OSError):
                self.close()
                if attempt:
                    raise
        try:
            decoded = json.loads(raw) if raw else None
        except json.JSONDecodeError as error:
            raise ExperimentError(
                f"daemon returned non-JSON for {path}: {raw[:200]!r}"
            ) from error
        if response.status >= 400:
            message = (
                decoded.get("error", "")
                if isinstance(decoded, dict) else str(decoded)
            )
            raise ServiceHTTPError(response.status, message)
        return decoded

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def graphs(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/graphs")

    def stats(self) -> Dict[str, Any]:
        return self._request("GET", "/stats")

    def reload(self) -> Dict[str, Any]:
        return self._request("POST", "/reload", payload={})

    def search(
        self,
        graph: str,
        algorithm: str,
        run_index: int = 0,
        *,
        start: Optional[int] = None,
        target: Optional[int] = None,
    ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "graph": graph,
            "algorithm": algorithm,
            "run_index": run_index,
        }
        if start is not None:
            payload["start"] = start
        if target is not None:
            payload["target"] = target
        return self._request("POST", "/search", payload=payload)


def run_load(
    host: str,
    port: int,
    queries: List[Dict[str, Any]],
    *,
    clients: int = 4,
    timeout: float = 60.0,
    arrival: Optional[float] = None,
    duration: Optional[float] = None,
) -> Tuple[List[Any], Dict[str, float]]:
    """Drive ``queries`` through ``clients`` concurrent connections.

    A shared counter hands out query indices, so each client thread
    (one keep-alive connection apiece) pulls the next pending query as
    soon as it is free.  Returns ``(responses, stats)`` with responses
    in *query order* and stats in seconds/qps: ``{"p50_ms", "p90_ms",
    "p99_ms", "mean_ms", "qps", "wall_s", "queries", "clients"}``.

    ``arrival`` switches to open-loop mode: query *i* is released no
    earlier than ``i/arrival`` seconds into the run (queries due in
    the past fire immediately, so a lagging daemon faces the backlog
    an open-loop generator is supposed to expose).  ``duration`` runs
    for a wall-clock budget instead of a fixed count: the query list
    is cycled modulo its length until the budget expires.
    """
    if clients < 1:
        raise ExperimentError(f"clients must be >= 1, got {clients}")
    if not queries:
        raise ExperimentError("run_load needs at least one query")
    if arrival is not None and arrival <= 0:
        raise ExperimentError(
            f"arrival rate must be > 0 qps, got {arrival}"
        )
    if duration is None:
        clients = min(clients, len(queries))
    histogram = LatencyHistogram()
    responses: Dict[int, Any] = {}
    errors: List[BaseException] = []
    lock = threading.Lock()
    state = {"next": 0}
    wall_begin = time.perf_counter()
    deadline = (
        wall_begin + duration if duration is not None else None
    )

    def worker() -> None:
        client = ServiceClient(host, port, timeout=timeout)
        try:
            while True:
                with lock:
                    index = state["next"]
                    if duration is None and index >= len(queries):
                        return
                    state["next"] = index + 1
                if arrival is not None:
                    due = wall_begin + index / arrival
                    if deadline is not None:
                        due = min(due, deadline)
                    delay = due - time.perf_counter()
                    if delay > 0:
                        time.sleep(delay)
                if (
                    deadline is not None
                    and time.perf_counter() >= deadline
                ):
                    return
                query = queries[index % len(queries)]
                begin = time.perf_counter()
                answer = client.search(**query)
                histogram.record(time.perf_counter() - begin)
                with lock:
                    responses[index] = answer
        except BaseException as error:  # noqa: BLE001 - reraised below
            errors.append(error)
        finally:
            client.close()

    threads = [
        threading.Thread(target=worker, daemon=True)
        for _ in range(clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - wall_begin
    if errors:
        raise errors[0]
    ordered = [responses[index] for index in sorted(responses)]
    latency = histogram.snapshot()
    stats = {
        "queries": len(ordered),
        "clients": clients,
        "wall_s": wall,
        "qps": len(ordered) / wall if wall > 0 else 0.0,
        "mean_ms": latency["mean_ms"],
        "p50_ms": latency["p50_ms"],
        "p90_ms": latency["p90_ms"],
        "p99_ms": latency["p99_ms"],
    }
    if arrival is not None:
        stats["offered_qps"] = arrival
    return ordered, stats

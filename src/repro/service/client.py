"""Stdlib client and load generator for the search daemon.

:class:`ServiceClient` is one keep-alive connection speaking the
daemon's JSON routes; :func:`run_load` drives N concurrent clients
over a fixed query list and reports latency percentiles and sustained
throughput — the serving-performance numbers the P2P resource-
discovery literature reports (and ``BENCH_PR9.json`` records).

Responses come back *in query order* regardless of which client
thread carried which query, so a load run doubles as a determinism
check against the batch path.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ExperimentError

__all__ = ["ServiceClient", "ServiceHTTPError", "run_load"]


class ServiceHTTPError(ExperimentError):
    """A non-2xx daemon response; carries the HTTP status."""

    def __init__(self, status: int, message: str):
        self.status = status
        super().__init__(f"HTTP {status}: {message}")


class ServiceClient:
    """One persistent connection to a running search daemon."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def _request(
        self, method: str, path: str, payload: Any = None
    ) -> Any:
        body = (
            None if payload is None
            else json.dumps(payload).encode("utf-8")
        )
        headers = (
            {} if body is None
            else {"Content-Type": "application/json"}
        )
        # One reconnect on a dropped keep-alive: the daemon may have
        # recycled the connection between requests.
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                raw = response.read()
                break
            except (http.client.HTTPException, ConnectionError,
                    BrokenPipeError, OSError):
                self.close()
                if attempt:
                    raise
        try:
            decoded = json.loads(raw) if raw else None
        except json.JSONDecodeError as error:
            raise ExperimentError(
                f"daemon returned non-JSON for {path}: {raw[:200]!r}"
            ) from error
        if response.status >= 400:
            message = (
                decoded.get("error", "")
                if isinstance(decoded, dict) else str(decoded)
            )
            raise ServiceHTTPError(response.status, message)
        return decoded

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def graphs(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/graphs")

    def reload(self) -> Dict[str, Any]:
        return self._request("POST", "/reload", payload={})

    def search(
        self,
        graph: str,
        algorithm: str,
        run_index: int = 0,
        *,
        start: Optional[int] = None,
        target: Optional[int] = None,
    ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "graph": graph,
            "algorithm": algorithm,
            "run_index": run_index,
        }
        if start is not None:
            payload["start"] = start
        if target is not None:
            payload["target"] = target
        return self._request("POST", "/search", payload=payload)


def _percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list."""
    if not sorted_values:
        return 0.0
    rank = max(
        0,
        min(
            len(sorted_values) - 1,
            int(round(q * (len(sorted_values) - 1))),
        ),
    )
    return sorted_values[rank]


def run_load(
    host: str,
    port: int,
    queries: List[Dict[str, Any]],
    *,
    clients: int = 4,
    timeout: float = 60.0,
) -> Tuple[List[Any], Dict[str, float]]:
    """Drive ``queries`` through ``clients`` concurrent connections.

    Queries are handed out round-robin; each client thread owns one
    keep-alive connection.  Returns ``(responses, stats)`` with
    responses in *query order* and stats in seconds/qps:
    ``{"p50_ms", "p99_ms", "mean_ms", "qps", "wall_s", "queries",
    "clients"}``.
    """
    if clients < 1:
        raise ExperimentError(f"clients must be >= 1, got {clients}")
    clients = min(clients, max(1, len(queries)))
    responses: List[Any] = [None] * len(queries)
    latencies: List[List[float]] = [[] for _ in range(clients)]
    errors: List[BaseException] = []

    def worker(which: int) -> None:
        client = ServiceClient(host, port, timeout=timeout)
        try:
            for index in range(which, len(queries), clients):
                begin = time.perf_counter()
                responses[index] = client.search(**queries[index])
                latencies[which].append(
                    time.perf_counter() - begin
                )
        except BaseException as error:  # noqa: BLE001 - reraised below
            errors.append(error)
        finally:
            client.close()

    threads = [
        threading.Thread(target=worker, args=(which,), daemon=True)
        for which in range(clients)
    ]
    wall_begin = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - wall_begin
    if errors:
        raise errors[0]
    flat = sorted(
        latency for bucket in latencies for latency in bucket
    )
    stats = {
        "queries": len(queries),
        "clients": clients,
        "wall_s": wall,
        "qps": len(queries) / wall if wall > 0 else 0.0,
        "mean_ms": (sum(flat) / len(flat) * 1000.0) if flat else 0.0,
        "p50_ms": _percentile(flat, 0.50) * 1000.0,
        "p99_ms": _percentile(flat, 0.99) * 1000.0,
    }
    return responses, stats

"""Load-generator CLI: hammer a running daemon, print the numbers.

Usage::

    python -m repro.service.loadgen --port 8642 \
        --queries 200 --clients 4 [--algorithm random-walk]

Discovers the served catalog via ``GET /graphs``, builds a
deterministic round-robin query stream over (graph, algorithm,
run_index), runs it through :func:`repro.service.client.run_load`,
and prints one JSON summary line (p50/p99 latency, sustained qps) to
stdout — the shape ``BENCH_PR9.json`` embeds.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional

from repro.service.client import ServiceClient, run_load
from repro.service.core import MAX_RUN_INDEX, portfolio_algorithms

__all__ = ["build_queries", "main"]


def build_queries(
    graphs: List[Dict[str, Any]],
    algorithms: List[str],
    count: int,
) -> List[Dict[str, Any]]:
    """A deterministic round-robin stream over the served catalog."""
    queries = []
    for index in range(count):
        graph = graphs[index % len(graphs)]
        algorithm = algorithms[index % len(algorithms)]
        queries.append({
            "graph": graph["id"],
            "algorithm": algorithm,
            "run_index": (
                index // (len(graphs) * len(algorithms))
            ) % (MAX_RUN_INDEX + 1),
        })
    return queries


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.loadgen",
        description="generate query load against a repro serve daemon",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument(
        "--queries", type=int, default=100,
        help="total queries to issue (default 100)",
    )
    parser.add_argument(
        "--clients", type=int, default=4,
        help="concurrent client connections (default 4)",
    )
    parser.add_argument(
        "--portfolio", default="adamic",
        help="portfolio whose algorithms to cycle (default adamic)",
    )
    parser.add_argument(
        "--algorithm", action="append", default=None,
        help="restrict to specific algorithm(s); repeatable",
    )
    args = parser.parse_args(argv)

    with ServiceClient(args.host, args.port) as probe:
        graphs = probe.graphs()
    if not graphs:
        print("error: the daemon serves no graphs", file=sys.stderr)
        return 1
    algorithms = (
        args.algorithm
        if args.algorithm
        else list(portfolio_algorithms(args.portfolio))
    )
    queries = build_queries(graphs, algorithms, args.queries)
    responses, stats = run_load(
        args.host, args.port, queries, clients=args.clients
    )
    found = sum(
        1 for response in responses
        if isinstance(response, dict) and response.get("found")
    )
    print(json.dumps({
        "queries": int(stats["queries"]),
        "clients": int(stats["clients"]),
        "found": found,
        "qps": round(stats["qps"], 2),
        "p50_ms": round(stats["p50_ms"], 3),
        "p99_ms": round(stats["p99_ms"], 3),
        "mean_ms": round(stats["mean_ms"], 3),
    }))
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI face
    sys.exit(main())

"""Load-generator CLI: hammer a running daemon, print the numbers.

Usage::

    python -m repro.service.loadgen --port 8642 \
        --queries 200 --clients 4 [--algorithm random-walk] \
        [--arrival open:150] [--duration 10]

Discovers the served catalog via ``GET /graphs``, builds a
deterministic round-robin query stream over (graph, algorithm,
run_index), runs it through :func:`repro.service.client.run_load`,
and prints one JSON summary line (p50/p90/p99 latency, sustained qps)
to stdout — the shape the bench artifacts embed.

``--arrival open:<qps>`` switches from the default closed loop to an
open-loop schedule (query *i* due at ``i/qps`` seconds — the mode
that actually exposes coalescing wins, because a closed loop never
builds a queue); ``--duration <s>`` runs for a wall-clock budget,
cycling the query list, instead of a fixed count.  Percentiles come
from the same histogram code as the daemon's ``/stats`` route.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional

from repro.service.client import ServiceClient, run_load
from repro.service.core import MAX_RUN_INDEX, portfolio_algorithms

__all__ = ["build_queries", "main", "parse_arrival"]


def parse_arrival(text: Optional[str]) -> Optional[float]:
    """``"open:<qps>"`` -> qps; ``None``/``"closed"`` -> None."""
    if text is None or text == "closed":
        return None
    if text.startswith("open:"):
        try:
            qps = float(text[len("open:"):])
        except ValueError:
            qps = 0.0
        if qps > 0:
            return qps
    raise SystemExit(
        f"error: --arrival must be 'closed' or 'open:<qps>' "
        f"with qps > 0, got {text!r}"
    )


def build_queries(
    graphs: List[Dict[str, Any]],
    algorithms: List[str],
    count: int,
) -> List[Dict[str, Any]]:
    """A deterministic round-robin stream over the served catalog."""
    queries = []
    for index in range(count):
        graph = graphs[index % len(graphs)]
        algorithm = algorithms[index % len(algorithms)]
        queries.append({
            "graph": graph["id"],
            "algorithm": algorithm,
            "run_index": (
                index // (len(graphs) * len(algorithms))
            ) % (MAX_RUN_INDEX + 1),
        })
    return queries


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.loadgen",
        description="generate query load against a repro serve daemon",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument(
        "--queries", type=int, default=100,
        help="total queries to issue (default 100)",
    )
    parser.add_argument(
        "--clients", type=int, default=4,
        help="concurrent client connections (default 4)",
    )
    parser.add_argument(
        "--portfolio", default="adamic",
        help="portfolio whose algorithms to cycle (default adamic)",
    )
    parser.add_argument(
        "--algorithm", action="append", default=None,
        help="restrict to specific algorithm(s); repeatable",
    )
    parser.add_argument(
        "--arrival", default=None,
        help="'closed' (default) or 'open:<qps>' open-loop schedule",
    )
    parser.add_argument(
        "--duration", type=float, default=None,
        help="run for this many seconds, cycling the query list, "
        "instead of a fixed count",
    )
    args = parser.parse_args(argv)
    arrival = parse_arrival(args.arrival)
    if args.duration is not None and args.duration <= 0:
        print("error: --duration must be > 0", file=sys.stderr)
        return 1

    with ServiceClient(args.host, args.port) as probe:
        graphs = probe.graphs()
    if not graphs:
        print("error: the daemon serves no graphs", file=sys.stderr)
        return 1
    algorithms = (
        args.algorithm
        if args.algorithm
        else list(portfolio_algorithms(args.portfolio))
    )
    queries = build_queries(graphs, algorithms, args.queries)
    responses, stats = run_load(
        args.host, args.port, queries,
        clients=args.clients,
        arrival=arrival,
        duration=args.duration,
    )
    found = sum(
        1 for response in responses
        if isinstance(response, dict) and response.get("found")
    )
    summary = {
        "queries": int(stats["queries"]),
        "clients": int(stats["clients"]),
        "found": found,
        "qps": round(stats["qps"], 2),
        "p50_ms": round(stats["p50_ms"], 3),
        "p90_ms": round(stats["p90_ms"], 3),
        "p99_ms": round(stats["p99_ms"], 3),
        "mean_ms": round(stats["mean_ms"], 3),
    }
    if "offered_qps" in stats:
        summary["offered_qps"] = stats["offered_qps"]
    print(json.dumps(summary))
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI face
    sys.exit(main())

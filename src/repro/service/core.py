"""Service core: graph catalog, query validation, worker execution.

Everything here is importable from worker processes (top-level
functions only) and free of daemon state.  The daemon layer
(:mod:`repro.service.daemon`) owns sockets and lifecycles; this module
owns the *meaning* of a query:

* a :class:`GraphEntry` pins one served snapshot to the exact
  ``(family, size, seed)`` key the batch path uses, plus the derived
  theorem target and default start — so a served answer and a
  :func:`~repro.core.trials.batched_search_trial` answer for the same
  cell are the same function application;
* :func:`validate_query` maps malformed input to 400 and unknown
  graph/algorithm ids to 404 before anything reaches a worker;
* :func:`execute_service_query` runs inside a pool worker: it attaches
  the entry's shared-memory segment once (cached per process) and
  answers through :func:`~repro.core.trials._execute_cells` with
  ``seed = graph seed`` — the same ``run_substream`` fan-out as every
  batch loop.

The two benchmark trial functions at the bottom are the PR's measured
pair: :func:`shm_search_trial` (attach-by-name, the new path) versus
:func:`payload_search_trial` (the whole CSR pickled into every spec,
the old cost model), both funneling into ``_execute_cells`` so their
outputs are bit-identical by construction.
"""

from __future__ import annotations

import json
from array import array
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.trials import (
    _execute_cells,
    build_family,
    build_graph_snapshot,
    choose_start,
    family_spec,
    portfolio_factories,
)
from repro.errors import ExperimentError
from repro.graphs.frozen import FrozenGraph, HAVE_NUMPY
from repro.graphs.shm import attach_graph

if HAVE_NUMPY:
    import numpy as _np
else:  # pragma: no cover - the container always has numpy
    _np = None

__all__ = [
    "GraphEntry",
    "QueryError",
    "answer_spec",
    "build_grid_entries",
    "entry_from_snapshot",
    "execute_service_batch",
    "execute_service_query",
    "graph_payload",
    "load_corpus_entries",
    "payload_search_trial",
    "portfolio_algorithms",
    "query_cell",
    "service_answer_trial",
    "service_worker_init",
    "shm_search_trial",
    "snapshot_from_payload",
    "validate_query",
]

#: Run indices feed a 16-bit substream field (see
#: :func:`repro.rng.run_substream`); anything larger is rejected at
#: the door instead of erroring inside a worker.
MAX_RUN_INDEX = (1 << 16) - 1


#: Portfolio name -> tuple of its algorithm names, cached because
#: validation runs per query on the daemon's request threads.
_PORTFOLIO_NAMES: Dict[str, Tuple[str, ...]] = {}


def portfolio_algorithms(portfolio: str) -> Tuple[str, ...]:
    """The algorithm names a portfolio serves (stable order)."""
    names = _PORTFOLIO_NAMES.get(portfolio)
    if names is None:
        names = tuple(portfolio_factories(portfolio))
        _PORTFOLIO_NAMES[portfolio] = names
    return names


class QueryError(ExperimentError):
    """A rejected query; carries the HTTP status the daemon returns.

    ``400`` for malformed requests (bad JSON, missing/ill-typed
    fields, out-of-range vertices), ``404`` for well-formed requests
    naming an unknown graph or algorithm id, ``429`` when the dispatch
    queue sheds load, ``503`` for timeouts and shutdown.  ``extra``
    keys are merged into the JSON error body so machine clients get a
    structured reason (``timeout_s``, ``queue_depth``, ...) alongside
    the message.
    """

    def __init__(self, status: int, message: str, **extra: Any):
        self.status = status
        self.extra = extra
        super().__init__(message)


@dataclass
class GraphEntry:
    """One served snapshot and its batch-path identity.

    ``target`` and ``start`` are resolved once at load time with the
    exact calls ``batched_search_trial`` makes per invocation
    (``theorem_target`` then ``choose_start`` under the default rule),
    so serving skips the per-query resolution without changing it.
    """

    graph_id: str
    family: Dict[str, Any]
    size: int
    seed: int
    snapshot: FrozenGraph
    target: int
    start: int
    shm_name: Optional[str] = None
    segment: Any = field(default=None, repr=False)

    def describe(self) -> Dict[str, Any]:
        """The JSON descriptor ``GET /graphs`` returns per entry."""
        return {
            "id": self.graph_id,
            "family": dict(self.family),
            "n": self.size,
            "seed": self.seed,
            "num_edges": self.snapshot.num_edges,
            "target": self.target,
            "start": self.start,
            "shm": self.shm_name,
        }


def entry_from_snapshot(
    spec: Dict[str, Any],
    size: int,
    seed: int,
    snapshot: FrozenGraph,
) -> GraphEntry:
    """Wrap an already-built snapshot in its catalog entry."""
    family_obj = build_family(spec)
    target = family_obj.theorem_target(snapshot)
    start = choose_start(family_obj, snapshot, target, "default", seed)
    graph_id = f"{spec.get('model', 'adhoc')}-n{size}-s{seed}"
    return GraphEntry(
        graph_id=graph_id,
        family=dict(spec),
        size=size,
        seed=seed,
        snapshot=snapshot,
        target=target,
        start=start,
    )


def build_grid_entries(
    family_obj,
    sizes,
    seeds,
    *,
    generator: str = "serial",
) -> List[GraphEntry]:
    """Build the catalog for a ``(family, sizes, seeds)`` grid.

    Each graph is built through :func:`build_graph_snapshot` with the
    grid seed — the very call the batch trial makes — so the served
    topology is the batch topology, not merely an equivalent one.
    """
    spec = family_spec(family_obj)
    entries = []
    for size in sizes:
        for seed in seeds:
            snapshot = build_graph_snapshot(
                family_obj, size, seed, "frozen", generator
            )
            entries.append(
                entry_from_snapshot(spec, size, seed, snapshot)
            )
    return entries


def load_corpus_entries(corpus_dir: str) -> List[GraphEntry]:
    """The catalog of every readable entry of an on-disk corpus.

    Unreadable or schema-mismatched entries are skipped (the corpus
    CLI's ``verify`` is the integrity judge, not the serving path).
    Requires numpy (the corpus engine does).
    """
    from repro.graphs.corpus import CORPUS_SCHEMA, GraphCorpus

    corpus = GraphCorpus(corpus_dir)
    entries = []
    for _, manifest in corpus.entries():
        if manifest.get("schema") != CORPUS_SCHEMA:
            continue
        spec = manifest.get("params")
        if not isinstance(spec, dict):
            continue
        size, seed = manifest["n"], manifest["seed"]
        snapshot = corpus.get(spec, size, seed)
        if snapshot is None:
            continue
        entries.append(entry_from_snapshot(spec, size, seed, snapshot))
    entries.sort(key=lambda entry: entry.graph_id)
    return entries


# ----------------------------------------------------------------------
# Query validation (daemon side)
# ----------------------------------------------------------------------


def validate_query(
    payload: Any,
    entries: Dict[str, GraphEntry],
    portfolio: str,
) -> Tuple[str, str, int, Optional[int], Optional[int]]:
    """Normalize one query or raise :class:`QueryError`.

    Returns ``(graph_id, algorithm, run_index, start, target)`` with
    ``start``/``target`` as ``None`` when the query defers to the
    entry's defaults.
    """
    if not isinstance(payload, dict):
        raise QueryError(400, "query body must be a JSON object")
    graph_id = payload.get("graph")
    if not isinstance(graph_id, str):
        raise QueryError(400, "missing or non-string 'graph' id")
    entry = entries.get(graph_id)
    if entry is None:
        raise QueryError(
            404,
            f"unknown graph id {graph_id!r}; serving: "
            f"{', '.join(sorted(entries)) or '(none)'}",
        )
    algorithm = payload.get("algorithm")
    if not isinstance(algorithm, str):
        raise QueryError(400, "missing or non-string 'algorithm'")
    valid = portfolio_algorithms(portfolio)
    if algorithm not in valid:
        raise QueryError(
            404,
            f"algorithm {algorithm!r} is not in the served "
            f"portfolio {portfolio!r}; valid: "
            f"{', '.join(sorted(valid))}",
        )
    run_index = payload.get("run_index", 0)
    if (
        not isinstance(run_index, int)
        or isinstance(run_index, bool)
        or not 0 <= run_index <= MAX_RUN_INDEX
    ):
        raise QueryError(
            400,
            f"'run_index' must be an integer in [0, {MAX_RUN_INDEX}]",
        )
    overrides = []
    for name in ("start", "target"):
        value = payload.get(name)
        if value is None:
            overrides.append(None)
            continue
        if not isinstance(value, int) or isinstance(value, bool):
            raise QueryError(400, f"'{name}' must be an integer")
        if not 1 <= value <= entry.size:
            raise QueryError(
                400,
                f"'{name}'={value} out of range for graph "
                f"{graph_id!r} (1..{entry.size})",
            )
        overrides.append(value)
    unknown = set(payload) - {
        "graph", "algorithm", "run_index", "start", "target"
    }
    if unknown:
        raise QueryError(
            400, f"unknown query fields: {', '.join(sorted(unknown))}"
        )
    return graph_id, algorithm, run_index, overrides[0], overrides[1]


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

#: Per-worker state: the serving manifest (set by the pool
#: initializer) and the lazily attached shared graphs, keyed by id.
_WORKER_STATE: Dict[str, Any] = {"manifest": {}, "graphs": {}}


def service_worker_init(manifest_json: str) -> None:
    """Pool initializer: install the serving manifest in this worker.

    ``manifest_json`` maps graph id to ``{"shm", "seed", "target",
    "start", "portfolio"}`` — everything a worker needs to answer any
    query without ever unpickling a graph.
    """
    _WORKER_STATE["manifest"] = json.loads(manifest_json)
    _WORKER_STATE["graphs"] = {}


def _worker_graph(graph_id: str, shm_name: str) -> FrozenGraph:
    graph = _WORKER_STATE["graphs"].get(graph_id)
    if graph is None:
        graph = attach_graph(shm_name)
        _WORKER_STATE["graphs"][graph_id] = graph
    return graph


def execute_service_batch(
    graph_id: str,
    cells: List[Dict[str, Any]],
    engine: str = "serial",
) -> List[Dict[str, Any]]:
    """Answer a coalesced batch of validated queries in one worker call.

    The seed handed to ``_execute_cells`` is the graph's *build* seed
    and each cell carries its query's ``run_index`` — exactly how
    ``batched_search_trial`` seeds the same cells, which is the whole
    determinism contract: per-cell RNG substreams depend only on
    ``(seed, algorithm, run_index)``, never on how queries were
    grouped, so a coalesced answer equals the per-query answer bit for
    bit.  Under ``engine="ensemble"`` the batch's same-``(algorithm,
    start, target)`` cells advance through the lock-step kernel in one
    call (serial fallback cells run unchanged inside the same
    ``_execute_cells`` invocation).
    """
    info = _WORKER_STATE["manifest"][graph_id]
    graph = _worker_graph(graph_id, info["shm"])
    factories = portfolio_factories(info["portfolio"])
    return _execute_cells(
        graph,
        factories,
        cells,
        default_start=info["start"],
        default_target=info["target"],
        budget=None,
        neighbor_success=False,
        seed=info["seed"],
        engine=engine,
    )


def execute_service_query(
    graph_id: str,
    algorithm: str,
    run_index: int,
    start: Optional[int],
    target: Optional[int],
) -> Dict[str, Any]:
    """Answer one validated query inside a pool worker.

    The single-cell form of :func:`execute_service_batch` — kept as
    the per-query dispatch target (``batch_window=0``) and for
    callers of the PR 9 surface.
    """
    cell = query_cell(algorithm, run_index, start, target)
    return execute_service_batch(graph_id, [cell])[0]


def query_cell(
    algorithm: str,
    run_index: int,
    start: Optional[int],
    target: Optional[int],
) -> Dict[str, Any]:
    """The ``_execute_cells`` cell dict of one validated query."""
    cell: Dict[str, Any] = {
        "algorithm": algorithm, "run_index": run_index,
    }
    if start is not None:
        cell["start"] = start
    if target is not None:
        cell["target"] = target
    return cell


def worker_manifest(entries: List[GraphEntry], portfolio: str) -> str:
    """The JSON manifest :func:`service_worker_init` consumes."""
    return json.dumps({
        entry.graph_id: {
            "shm": entry.shm_name,
            "seed": entry.seed,
            "target": entry.target,
            "start": entry.start,
            "portfolio": portfolio,
        }
        for entry in entries
    })


# ----------------------------------------------------------------------
# Cached answers as replay-addressable trials
# ----------------------------------------------------------------------


def service_answer_trial(
    *,
    family: Dict[str, Any],
    size: int,
    portfolio: str,
    algorithm: str,
    run_index: int = 0,
    start: Optional[int] = None,
    target: Optional[int] = None,
    seed: int = 0,
) -> Dict[str, Any]:
    """Recompute one served answer from scratch (the cache's oracle).

    This is the trial function behind the answer cache's TrialStore
    write-through: a cached answer persists as a normal versioned
    trial record whose replay rebuilds the graph and re-runs the cell
    through :func:`~repro.core.trials.batched_search_trial` — so a
    store written by a serving daemon is interchangeable with one
    written by a batch run, and ``repro store`` tooling (stat,
    migrate, compact) applies unchanged.
    """
    from repro.core.trials import batched_search_trial

    return batched_search_trial(
        family=family,
        size=size,
        portfolio=portfolio,
        cells=[query_cell(algorithm, run_index, start, target)],
        seed=seed,
    )[0]


def answer_spec(
    entry: GraphEntry,
    portfolio: str,
    algorithm: str,
    run_index: int,
    start: Optional[int],
    target: Optional[int],
):
    """The :class:`~repro.runner.trial.TrialSpec` of one served cell.

    Keyed exactly like :func:`service_answer_trial` replays it, so a
    store hit is the bit-identical answer by the versioned-record
    contract (stale fingerprints read as MISS).
    """
    from repro.runner.trial import TrialSpec, trial_ref

    params: Dict[str, Any] = {
        "family": dict(entry.family),
        "size": entry.size,
        "portfolio": portfolio,
        "algorithm": algorithm,
        "run_index": run_index,
    }
    if start is not None:
        params["start"] = start
    if target is not None:
        params["target"] = target
    return TrialSpec(
        experiment_id="service",
        trial=trial_ref(service_answer_trial),
        params=params,
        seed=entry.seed,
    )


# ----------------------------------------------------------------------
# Benchmark trial functions (the measured pair)
# ----------------------------------------------------------------------

#: Attached segments cached per worker process for the bench trial —
#: the analog of ``_WORKER_STATE["graphs"]`` keyed by segment name.
_ATTACH_CACHE: Dict[str, FrozenGraph] = {}


def attach_shared_graph(name: str) -> FrozenGraph:
    """Attach (or reuse) the published segment ``name``.

    Usable as a ``run_trials`` initializer target and from trial
    bodies; one attach per worker process regardless of trial count.
    """
    graph = _ATTACH_CACHE.get(name)
    if graph is None:
        graph = attach_graph(name)
        _ATTACH_CACHE[name] = graph
    return graph


def shm_search_trial(
    *,
    shm: str,
    portfolio: str,
    cells: List[Dict[str, Any]],
    start: int,
    target: int,
    budget: Optional[int] = None,
    neighbor_success: bool = False,
    seed: int = 0,
) -> List[Dict[str, Any]]:
    """Search cells against a shared-memory snapshot, by name.

    The spec carries only the segment *name* — the CSR buffers cross
    the process boundary zero times.  ``seed`` is the graph's build
    seed, so results match :func:`payload_search_trial` (and the batch
    path) bit for bit.
    """
    graph = attach_shared_graph(shm)
    factories = portfolio_factories(portfolio)
    return _execute_cells(
        graph,
        factories,
        cells,
        default_start=start,
        default_target=target,
        budget=budget,
        neighbor_success=neighbor_success,
        seed=seed,
    )


def graph_payload(snapshot: FrozenGraph) -> Dict[str, Any]:
    """A snapshot as a JSON-serializable dict (the baseline's cargo).

    This is what 'pickle the graph into every spec' costs: the full
    CSR — endpoint columns, offsets, slots, degrees — rides along
    with each :class:`~repro.runner.trial.TrialSpec`.
    """
    tails = [tail for tail, _ in snapshot._endpoints]
    heads = [head for _, head in snapshot._endpoints]
    return {
        "n": snapshot.num_vertices,
        "num_loops": snapshot.num_self_loops(),
        "tails": tails,
        "heads": heads,
        "offsets": list(snapshot._offsets),
        "slot_edges": list(snapshot._slot_edges),
        "slot_targets": list(snapshot._slot_targets),
        "indegree": list(snapshot._indegree),
        "outdegree": list(snapshot._outdegree),
    }


def snapshot_from_payload(payload: Dict[str, Any]) -> FrozenGraph:
    """Inverse of :func:`graph_payload`."""
    if HAVE_NUMPY:
        def column(name):
            return _np.asarray(payload[name], dtype="<i8")
    else:
        def column(name):
            return array("q", payload[name])
    return FrozenGraph(
        num_vertices=payload["n"],
        endpoints=list(zip(payload["tails"], payload["heads"])),
        indegree=list(payload["indegree"]),
        outdegree=list(payload["outdegree"]),
        offsets=column("offsets"),
        slot_edges=column("slot_edges"),
        slot_targets=column("slot_targets"),
        num_loops=payload["num_loops"],
    )


def payload_search_trial(
    *,
    graph: Dict[str, Any],
    portfolio: str,
    cells: List[Dict[str, Any]],
    start: int,
    target: int,
    budget: Optional[int] = None,
    neighbor_success: bool = False,
    seed: int = 0,
) -> List[Dict[str, Any]]:
    """The baseline arm: the CSR shipped inside the spec, per trial."""
    snapshot = snapshot_from_payload(graph)
    factories = portfolio_factories(portfolio)
    return _execute_cells(
        snapshot,
        factories,
        cells,
        default_start=start,
        default_target=target,
        budget=budget,
        neighbor_success=neighbor_success,
        seed=seed,
    )

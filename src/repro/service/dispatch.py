"""Query coalescing and answer caching for the search daemon.

The PR 9 daemon paid one pool round-trip — one pickle, one IPC hop,
one serially executed cell — per HTTP request.  This module amortizes
that cost two ways:

* :class:`BatchDispatcher` — HTTP threads enqueue validated queries
  into a per-graph coalescing queue and block on a future; a single
  dispatcher thread drains the queues every *batch window* (or as soon
  as any queue reaches *batch max*) and submits each graph's batch as
  **one** worker call, holding each graph to one in-flight batch so a
  backlog coalesces in the queue instead of fragmenting into the
  pool's internal backlog.  The worker answers the whole batch through
  ``_execute_cells`` on its already-attached shared-memory snapshot —
  with the ensemble engine, the batch's same-``(algorithm, start,
  target)`` cells advance in one lock-step kernel call — then the
  dispatcher fans the per-query answers back to the waiting threads.
  Queries regroup freely because every cell's RNG substream depends
  only on ``(graph seed, algorithm, run_index)``: coalesced answers
  are bit-identical to per-query answers by the same contract that
  pins the batch path.

* :class:`AnswerCache` — served answers are replay-addressable cells
  (same determinism contract), so a repeated query is a dictionary
  lookup, not a pool trip.  A bounded LRU over ``(graph, algorithm,
  run_index, start, target)`` keys, with hit/miss accounting delegated
  to :class:`~repro.service.stats.ServiceStats`.

Load shedding is the dispatcher's third job: the pending-query pool is
bounded, and a submit over the bound raises a 429-carrying
:class:`~repro.service.core.QueryError` immediately instead of letting
HTTP threads pile up behind a queue that cannot drain in time.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent.futures import Future
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.service.core import QueryError
from repro.service.stats import ServiceStats

__all__ = ["AnswerCache", "BatchDispatcher"]


class AnswerCache:
    """Bounded LRU of served answers (thread-safe).

    ``capacity <= 0`` disables storage — ``get`` always misses and
    ``put`` drops — so callers never need a second code path.
    """

    def __init__(self, capacity: int):
        self.capacity = capacity
        self._data: "OrderedDict[Tuple, Any]" = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: Tuple) -> Optional[Dict[str, Any]]:
        with self._lock:
            value = self._data.get(key)
            if value is not None:
                self._data.move_to_end(key)
            return value

    def put(self, key: Tuple, value: Dict[str, Any]) -> None:
        if self.capacity <= 0:
            return
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)

    def info(self) -> Dict[str, int]:
        return {"size": len(self._data), "capacity": self.capacity}


class _Pending:
    """One enqueued query: its cell and the future its thread awaits."""

    __slots__ = ("cell", "future")

    def __init__(self, cell: Dict[str, Any]):
        self.cell = cell
        self.future: "Future[Dict[str, Any]]" = Future()


class BatchDispatcher:
    """Per-graph query coalescing onto single worker calls.

    Parameters
    ----------
    submit_batch:
        ``submit_batch(graph_id, cells) -> Future`` returning the list
        of answer dicts in cell order.  Raising
        :class:`~repro.service.core.QueryError` fails just the batch
        being dispatched.  Any exception the returned future resolves
        to likewise fails only that batch's queries.
    window:
        Coalescing window in **seconds**, measured from the moment the
        dispatcher sees a query while idle.  Longer windows build
        bigger batches (better amortization) at the cost of adding up
        to ``window`` to every miss-path p50.
    batch_max:
        Flush a graph's queue immediately once it holds this many
        queries — the window is a deadline, not a mandatory delay.
    max_pending:
        Bound on queries enqueued-but-not-dispatched across all
        graphs; beyond it :meth:`submit` sheds with a 429.
    inflight_per_graph:
        Batches a single graph may have executing at once (default
        1).  This is the backpressure that makes coalescing work
        under load: while a graph's batch runs, new queries for it
        keep accumulating in its queue instead of trickling into the
        pool's internal backlog as window-sized fragments — the queue
        drains in ``batch_max`` chunks exactly as fast as the workers
        actually finish.
    stats:
        Batch-size distribution and failure accounting sink.
    on_batch_error:
        Called with the exception when a dispatched batch future
        fails (the daemon uses it to respawn a broken pool).
    """

    def __init__(
        self,
        submit_batch: Callable[[str, List[Dict[str, Any]]], Any],
        *,
        window: float = 0.005,
        batch_max: int = 64,
        max_pending: int = 1024,
        inflight_per_graph: int = 1,
        stats: Optional[ServiceStats] = None,
        on_batch_error: Optional[Callable[[BaseException], None]] = None,
    ):
        if batch_max < 1:
            raise ValueError(f"batch_max must be >= 1, got {batch_max}")
        if max_pending < 1:
            raise ValueError(
                f"max_pending must be >= 1, got {max_pending}"
            )
        if inflight_per_graph < 1:
            raise ValueError(
                "inflight_per_graph must be >= 1, got "
                f"{inflight_per_graph}"
            )
        self._submit_batch = submit_batch
        self._window = max(0.0, window)
        self._batch_max = batch_max
        self._max_pending = max_pending
        self._inflight = inflight_per_graph
        self._stats = stats
        self._on_batch_error = on_batch_error
        self._cond = threading.Condition()
        self._queues: Dict[str, List[_Pending]] = {}
        self._busy: Dict[str, int] = {}
        self._total = 0
        self._closed = False
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-dispatch", daemon=True
        )
        self._thread.start()

    # -- HTTP-thread side ----------------------------------------------

    @property
    def pending(self) -> int:
        return self._total

    def submit(
        self, graph_id: str, cell: Dict[str, Any]
    ) -> "Future[Dict[str, Any]]":
        """Enqueue one validated query; returns the answer future.

        Raises ``QueryError(503)`` after :meth:`close` and
        ``QueryError(429)`` when the pending bound is hit.
        """
        item = _Pending(cell)
        with self._cond:
            if self._closed:
                raise QueryError(503, "service is shutting down")
            if self._total >= self._max_pending:
                if self._stats is not None:
                    self._stats.record_shed()
                raise QueryError(
                    429,
                    f"dispatch queue full ({self._total} pending); "
                    "retry later",
                    queue_depth=self._total,
                )
            self._queues.setdefault(graph_id, []).append(item)
            self._total += 1
            self._cond.notify_all()
        return item.future

    def close(self) -> None:
        """Stop dispatching; fail every still-queued query with 503.

        Idempotent.  Batches already handed to ``submit_batch`` keep
        running — their futures resolve whenever the pool finishes.
        """
        with self._cond:
            if self._closed:
                return
            self._closed = True
            drained = [
                item
                for queue in self._queues.values()
                for item in queue
            ]
            self._queues.clear()
            self._total = 0
            self._cond.notify_all()
        error = QueryError(503, "service is shutting down")
        for item in drained:
            if not item.future.done():
                item.future.set_exception(error)
        self._thread.join(timeout=5)

    # -- dispatcher thread ---------------------------------------------

    def _eligible(self, graph_id: str) -> bool:
        """May ``graph_id`` dispatch another batch right now?"""
        return self._busy.get(graph_id, 0) < self._inflight

    def _dispatchable(self) -> bool:
        return any(
            queue and self._eligible(graph_id)
            for graph_id, queue in self._queues.items()
        )

    def _flush_ready(self) -> bool:
        """An eligible queue already holds a full batch."""
        return any(
            len(queue) >= self._batch_max and self._eligible(graph_id)
            for graph_id, queue in self._queues.items()
        )

    def _run(self) -> None:
        while True:
            with self._cond:
                # Idle until some graph has queued queries AND head-
                # room to execute them; a graph whose batch is still
                # running keeps accumulating (that backpressure is
                # what builds real batches under sustained load).
                while not self._closed and not self._dispatchable():
                    self._cond.wait()
                if self._closed:
                    return
                # The window opens when dispatchable work appears;
                # a full eligible batch cuts it short.
                deadline = time.monotonic() + self._window
                while (
                    not self._closed
                    and self._dispatchable()
                    and not self._flush_ready()
                ):
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._cond.wait(remaining)
                if self._closed:
                    return
                batches = []
                for graph_id, queue in list(self._queues.items()):
                    if not self._eligible(graph_id):
                        continue
                    take = queue[: self._batch_max]
                    rest = queue[self._batch_max:]
                    if rest:
                        self._queues[graph_id] = rest
                    else:
                        del self._queues[graph_id]
                    self._total -= len(take)
                    if take:
                        self._busy[graph_id] = (
                            self._busy.get(graph_id, 0) + 1
                        )
                        batches.append((graph_id, take))
            for graph_id, group in batches:
                self._dispatch(graph_id, group)

    def _dispatch(self, graph_id: str, group: List[_Pending]) -> None:
        if self._stats is not None:
            self._stats.record_batch(len(group))
        cells = [item.cell for item in group]
        try:
            batch_future = self._submit_batch(graph_id, cells)
        except BaseException as error:  # noqa: BLE001 - fanned out
            self._release(graph_id)
            self._fail_group(group, error)
            return
        batch_future.add_done_callback(
            lambda done, group=group: self._finish(
                graph_id, group, done
            )
        )

    def _release(self, graph_id: str) -> None:
        """One of ``graph_id``'s batches finished; wake the drain."""
        with self._cond:
            count = self._busy.get(graph_id, 0) - 1
            if count > 0:
                self._busy[graph_id] = count
            else:
                self._busy.pop(graph_id, None)
            self._cond.notify_all()

    def _finish(self, graph_id: str, group: List[_Pending], done) -> None:
        self._release(graph_id)
        self._fan_out(group, done)

    def _fan_out(self, group: List[_Pending], done) -> None:
        try:
            values = done.result()
        except BaseException as error:  # noqa: BLE001 - fanned out
            self._fail_group(group, error)
            return
        for item, value in zip(group, values):
            if not item.future.done():
                item.future.set_result(value)

    def _fail_group(
        self, group: List[_Pending], error: BaseException
    ) -> None:
        """One batch failed: fail exactly its queries, nothing else."""
        if self._stats is not None:
            self._stats.record_batch_failure()
        if self._on_batch_error is not None:
            try:
                self._on_batch_error(error)
            except Exception:  # pragma: no cover - advisory hook
                pass
        if isinstance(error, QueryError):
            failure = error
        else:
            failure = QueryError(
                503,
                "batch execution failed: "
                f"{type(error).__name__}: {error}",
            )
        for item in group:
            if not item.future.done():
                item.future.set_exception(failure)

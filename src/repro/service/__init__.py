"""Search-as-a-service over published FrozenGraph snapshots.

The paper's claim — growth-built power-law networks are not searchable
by local algorithms — is ultimately about *serving lookups to live
peers*, not about offline tables.  This subpackage is that serving
story:

* :mod:`repro.service.core` — graph catalog (family grid or on-disk
  corpus), query validation, and the worker-side execution path that
  attaches shared-memory snapshots and answers one cell through the
  exact batch seed derivation;
* :mod:`repro.service.daemon` — the long-lived ``repro serve`` HTTP
  daemon (stdlib ``http.server`` + a process pool over shared-memory
  graphs) with graceful shm lifecycle;
* :mod:`repro.service.dispatch` — the batched dispatch layer: a
  per-graph coalescing queue draining onto single ensemble-engine
  worker calls, plus the hot-cell LRU answer cache;
* :mod:`repro.service.stats` — the shared latency histogram and the
  daemon's serving counters (``/stats``);
* :mod:`repro.service.client` — a tiny stdlib client and a concurrent
  load generator (closed- or open-loop) measuring latency percentiles
  and sustained qps;
* :mod:`repro.service.loadgen` — the load generator's CLI face.

The determinism contract: a query ``(graph, algorithm, run_index,
start?, target?)`` answers with the byte-identical result dict the
batch path (:func:`repro.core.trials.batched_search_trial`) produces
for the same cell on the same ``(family, size, seed)`` graph — same
``run_substream`` seed derivation, same default start/target
resolution, same budget.
"""

from repro.service.core import (
    GraphEntry,
    QueryError,
    build_grid_entries,
    entry_from_snapshot,
    load_corpus_entries,
    shm_search_trial,
    validate_query,
)
from repro.service.daemon import SearchService
from repro.service.dispatch import AnswerCache, BatchDispatcher
from repro.service.stats import LatencyHistogram, ServiceStats
from repro.service.client import ServiceClient, run_load

__all__ = [
    "AnswerCache",
    "BatchDispatcher",
    "GraphEntry",
    "LatencyHistogram",
    "QueryError",
    "SearchService",
    "ServiceClient",
    "ServiceStats",
    "build_grid_entries",
    "entry_from_snapshot",
    "load_corpus_entries",
    "run_load",
    "shm_search_trial",
    "validate_query",
]

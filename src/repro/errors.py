"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised intentionally by this library derive from
:class:`ReproError`, so callers can write a single ``except ReproError``
around any library call without accidentally swallowing genuine bugs
(``TypeError``, ``KeyError`` from our own code, ...).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphConstructionError",
    "InvalidParameterError",
    "OracleProtocolError",
    "SearchError",
    "AnalysisError",
    "ExperimentError",
    "EngineUnavailableError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class InvalidParameterError(ReproError, ValueError):
    """A model or algorithm parameter is outside its valid range.

    Also a :class:`ValueError` so that generic parameter-validation
    call sites behave idiomatically.
    """


class GraphConstructionError(ReproError):
    """A random-graph construction could not be carried out."""


class OracleProtocolError(ReproError):
    """A search process violated the weak/strong oracle protocol.

    Raised, for example, when a weak-model request names an edge that is
    not incident to an already-discovered vertex: the oracle refuses to
    answer rather than leak information the model does not grant.
    """


class SearchError(ReproError):
    """A search algorithm reached an internally inconsistent state."""


class AnalysisError(ReproError):
    """A statistical analysis could not be performed on the given data."""


class ExperimentError(ReproError):
    """An experiment specification is inconsistent or a run failed."""


class EngineUnavailableError(ExperimentError):
    """A requested execution engine cannot run in this environment.

    Raised when ``engine='ensemble'`` is selected but numpy is not
    installed: the vectorized walker-ensemble kernel has no stdlib
    rendering (unlike the graph backends, whose fallback is the mutable
    path itself), so the caller must fall back to ``engine='serial'``
    explicitly rather than silently getting different performance."""
